"""Setup shim enabling editable installs without the ``wheel`` package."""

from setuptools import setup

setup()
