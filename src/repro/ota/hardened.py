"""Fault-tolerant OTA session: resume, verify-before-boot, watchdog.

The baseline :class:`~repro.ota.updater.OtaUpdater` assumes the world
cooperates: transfers either complete or abort, installs always take,
nodes never lose power.  On a light pole none of that holds, and a node
you cannot recover over the air is a truck roll.  This module is the
hardened pipeline the chaos suite beats on:

* **Resumable transfers** - every delivered fragment is staged to flash
  and its sequence number checkpointed in the metadata log
  (:class:`~repro.ota.bank.CheckpointLog`), so a node that browns out
  resumes from its last acknowledged fragment instead of starting over
  (``ota.resume``), and never re-receives a fragment it already ACKed.
* **Verified dual-bank install** - images land in the inactive bank of a
  :class:`~repro.ota.bank.FirmwareBanks` layout with read-back retry;
  the boot path CRC-verifies before switching and rolls back to the
  golden image on mismatch (``ota.rollback``).
* **Watchdog** - a :class:`~repro.mcu.watchdog.Watchdog` armed around
  decompression/install turns an injected MCU hang into a
  ``watchdog.reset`` plus a typed :class:`WatchdogTimeoutError` the AP
  can retry, instead of a silently dead node.

Fault injection is strictly opt-in: with ``faults=None`` and
``policy=None`` nothing here runs on the default code paths and the
parity goldens are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import (
    BrownoutInterrupt,
    CompressionError,
    OtaError,
    WatchdogTimeoutError,
)
from repro.fpga.config import NODE_FPGA, FpgaConfigurator
from repro.mcu.msp432 import NODE_MCU, Msp432
from repro.mcu.scheduler import EventScheduler
from repro.mcu.watchdog import Watchdog
from repro.ota.bank import FirmwareBanks, BootResult
from repro.ota.blocks import (
    BLOCK_BYTES,
    parse_wire_image,
    reassemble,
    split_and_compress,
    total_compressed_bytes,
)
from repro.ota.mac import (
    DATA_PAYLOAD_BYTES,
    NODE_RADIO,
    EndOfUpdate,
    OtaLink,
    ProgrammingRequest,
    ReadyMessage,
    RetryPolicy,
    crc32,
    fragment_image,
    run_stop_and_wait,
    transfer_report_from_timeline,
)
from repro.ota.updater import (
    DECOMPRESS_BANDWIDTH_BPS,
    NODE_FLASH,
    UpdateReport,
    node_energy_from_timeline,
)
from repro.power import profiles
from repro.sim import (
    CONTROL_RX,
    CONTROL_TX,
    FLASH_BUSY,
    FPGA_CONFIG,
    MCU_DECOMPRESS,
    OTA_RESUME,
    Timeline,
)
from repro.faults.plan import NodeFaults

STAGING_PROGRAM_ATTEMPTS = 6
"""Program/verify rounds per staged fragment before declaring the
staging area bad and failing the session."""

DEFAULT_WATCHDOG_TIMEOUT_S = 5.0
"""Generous next to the 450 ms worst-case decompression: a deadline this
far past any legitimate dwell only ever catches real hangs."""

# Terminal per-node outcome classes for campaign reporting.
OUTCOME_SUCCEEDED = "succeeded"
OUTCOME_RESUMED = "resumed"
OUTCOME_ROLLED_BACK = "rolled_back"
OUTCOME_ABANDONED = "abandoned"


@dataclass(frozen=True)
class HardenedUpdateReport(UpdateReport):
    """An :class:`UpdateReport` plus the robustness bookkeeping.

    Attributes:
        boot: what the node ended up running.
        resumes: transfers continued from a flash checkpoint.
        watchdog_resets: hangs the watchdog cleared this session.
    """

    boot: BootResult | None = None
    resumes: int = 0
    watchdog_resets: int = 0

    @property
    def applied(self) -> bool:
        """Whether the node is actually running the new image."""
        return self.boot is not None and self.boot.bank != "golden"

    @property
    def rolled_back(self) -> bool:
        """Whether verification failed and the node fell back to golden."""
        return self.boot is not None and self.boot.rolled_back


class HardenedOtaSession:
    """One node's fault-tolerant programming session.

    Args:
        image: the raw firmware image to deliver.
        link: backbone link conditions.
        banks: the node's dual-bank flash (persists across attempts, so
            staged data and checkpoints survive a failed session).
        image_id: campaign firmware identifier (scopes checkpoints).
        is_fpga_image: FPGA images end with a quad-SPI reconfigure.
        policy: retransmission discipline (default: the historical
            fixed-timeout behaviour).
        faults: the node's fault injector, or ``None`` for a clean run.
        payload_bytes: fragment payload size.
        block_bytes: compression block size.
        watchdog_timeout_s: hang-detection deadline around install.
    """

    def __init__(self, image: bytes, link: OtaLink, banks: FirmwareBanks,
                 image_id: int = 1, is_fpga_image: bool = True,
                 policy: RetryPolicy | None = None,
                 faults: NodeFaults | None = None,
                 payload_bytes: int = DATA_PAYLOAD_BYTES,
                 block_bytes: int = BLOCK_BYTES,
                 watchdog_timeout_s: float = DEFAULT_WATCHDOG_TIMEOUT_S,
                 mcu: Msp432 | None = None) -> None:
        if not image:
            raise OtaError("cannot deliver an empty image")
        self.image = image
        self.link = link
        self.banks = banks
        self.image_id = image_id
        self.is_fpga_image = is_fpga_image
        self.policy = policy
        self.faults = faults
        self.payload_bytes = payload_bytes
        self.block_bytes = block_bytes
        self.watchdog_timeout_s = watchdog_timeout_s
        self.mcu = mcu if mcu is not None else Msp432()
        self.configurator = FpgaConfigurator()

    # -- phases ------------------------------------------------------------

    def _transfer(self, fragments, rng: np.random.Generator,
                  timeline: Timeline) -> int:
        """Deliver outstanding fragments, riding out brownouts.

        Returns the number of checkpoint resumes performed.

        Raises:
            OtaError: a fragment exhausted its retries or the session
                deadline expired.
        """
        banks = self.banks
        staging = banks.layout.staging_offset
        resumes = 0
        next_seq = banks.resume_point(self.image_id)
        if next_seq == 0:
            total_bytes = sum(len(f.payload) for f in fragments)
            banks.flash.erase_range(staging, total_bytes)
        elif next_seq < len(fragments):
            timeline.record(OTA_RESUME, NODE_RADIO,
                            label=f"resume from seq={next_seq} "
                                  "(prior session checkpoint)")
            resumes += 1

        def stage_and_checkpoint(fragment) -> None:
            # Verify the local write before checkpointing: a fragment is
            # only ever recorded as delivered once it is durably staged,
            # so a resume point never covers bytes the flash dropped.
            # Re-programming the same data is legal NOR (it only clears
            # bits), so a failed or stuck page gets fresh tries.
            address = staging + fragment.sequence * self.payload_bytes
            for _ in range(STAGING_PROGRAM_ATTEMPTS):
                banks.flash.program(address, fragment.payload)
                if banks.flash.read(address, len(fragment.payload)) \
                        == fragment.payload:
                    break
            else:
                raise OtaError(
                    f"fragment {fragment.sequence} failed staging "
                    f"verification {STAGING_PROGRAM_ATTEMPTS} times")
            banks.checkpoint(self.image_id, fragment.sequence + 1)

        while next_seq < len(fragments):
            try:
                lost = run_stop_and_wait(
                    fragments[next_seq:], rng, timeline,
                    lambda now_s, fragment, attempt: self.link,
                    policy=self.policy, faults=self.faults,
                    on_delivered=stage_and_checkpoint)
            except BrownoutInterrupt:
                # RAM is gone; the flash log is the only truth left.
                next_seq = banks.resume_point(self.image_id)
                timeline.record(OTA_RESUME, NODE_RADIO,
                                label=f"resume from seq={next_seq} "
                                      "after brownout")
                resumes += 1
                continue
            if lost is not None:
                raise OtaError(
                    f"transfer aborted at fragment {lost.sequence}")
            break
        return resumes

    def _install(self, wire_bytes: int, timeline: Timeline) -> tuple[str, int]:
        """Read back the staged image, decompress, verify and install.

        Returns the target bank and the watchdog reset count.

        Raises:
            WatchdogTimeoutError: an injected hang tripped the watchdog.
            OtaError: the staged data failed decompression or the
                recovered image does not match (checkpoints are cleared
                so the next attempt re-transfers from scratch).
        """
        banks = self.banks
        scheduler = EventScheduler(timeline)
        watchdog = Watchdog(scheduler, self.watchdog_timeout_s,
                            name="node install watchdog")
        watchdog.start()
        if self.faults is not None and self.faults.hangs_now():
            # The MCU stops making progress; only the deadline fires.
            scheduler.run_until(watchdog.deadline_s)
            watchdog.stop()
            raise WatchdogTimeoutError(
                f"install hang; watchdog reset after "
                f"{self.watchdog_timeout_s:g} s")
        staged = banks.flash.read(banks.layout.staging_offset, wire_bytes)
        try:
            blocks = parse_wire_image(staged)
            recovered = reassemble(blocks, sram=self.mcu.sram)
        except CompressionError as exc:
            banks.checkpoints.clear()
            raise OtaError(
                f"staged image failed decompression: {exc}") from exc
        watchdog.kick()
        if recovered != self.image:
            banks.checkpoints.clear()
            raise OtaError(
                "decompressed image does not match the original; "
                "checkpoints cleared for a fresh transfer")
        timeline.record(
            MCU_DECOMPRESS, NODE_MCU,
            label=f"{len(blocks)} blocks, {len(recovered)} bytes",
            duration_s=len(recovered) * 8 / DECOMPRESS_BANDWIDTH_BPS,
            power_w=profiles.MCU_ACTIVE_W)
        target = banks.install(recovered, self.image_id)
        watchdog.stop()
        return target, watchdog.resets

    # -- the session -------------------------------------------------------

    def run(self, rng: np.random.Generator,
            timeline: Timeline | None = None,
            campaign_offset_s: float = 0.0) -> HardenedUpdateReport:
        """Run one full hardened session.

        Args:
            rng: randomness source for packet outcomes (fault draws come
                from the injector's own streams).
            timeline: ledger to record on (fresh when not supplied).
            campaign_offset_s: maps this timeline's clock onto the
                campaign clock, for AP-outage windows.

        Raises:
            OtaError: the transfer or install failed in a retryable way.
            WatchdogTimeoutError: an injected hang tripped the watchdog.
            RollbackError: both banks failed verification (the node is
                unrecoverable over the air).
        """
        timeline = timeline if timeline is not None else Timeline()
        since = timeline.checkpoint()
        session_start_s = timeline.now_s
        if self.faults is not None:
            self.faults.attach(timeline, campaign_offset_s)
        previous_bank_timeline = self.banks.timeline
        self.banks.timeline = timeline
        try:
            return self._run(rng, timeline, since, session_start_s)
        finally:
            self.banks.timeline = previous_bank_timeline

    def _run(self, rng: np.random.Generator, timeline: Timeline,
             since: int, session_start_s: float) -> HardenedUpdateReport:
        banks = self.banks
        stats_before = banks.flash.stats()
        blocks = split_and_compress(self.image, self.block_bytes)
        wire_image = b"".join(block.header() + block.payload
                              for block in blocks)
        fragments = fragment_image(wire_image, self.payload_bytes)

        request = ProgrammingRequest((1,), (0.0,), image_id=self.image_id)
        timeline.record(
            CONTROL_RX, NODE_RADIO, label="programming request",
            duration_s=self.link.airtime_s(request.wire_bytes),
            power_w=profiles.BACKBONE_RX_W)
        timeline.record(
            CONTROL_TX, NODE_RADIO, label="ready",
            duration_s=self.link.airtime_s(ReadyMessage(1).wire_bytes),
            power_w=profiles.BACKBONE_TX_14DBM_W)

        resumes = self._transfer(fragments, rng, timeline)

        end = EndOfUpdate(len(fragments), crc32(wire_image))
        timeline.record(
            CONTROL_RX, NODE_RADIO, label="end of update",
            duration_s=self.link.airtime_s(end.wire_bytes),
            power_w=profiles.BACKBONE_RX_W)

        target, watchdog_resets = self._install(len(wire_image), timeline)
        if self.is_fpga_image:
            installed = banks.flash.read(
                banks.layout.bank_offset(target), len(self.image))
            timeline.record(
                FPGA_CONFIG, NODE_FPGA, label="quad-SPI boot",
                duration_s=self.configurator.program(installed),
                power_w=profiles.FPGA_STATIC_W)
        boot = banks.boot()
        if not boot.rolled_back:
            banks.checkpoints.clear()

        stats_after = banks.flash.stats()
        timeline.record(
            FLASH_BUSY, NODE_FLASH, label="stage + install + verify",
            duration_s=stats_after.busy_time_s - stats_before.busy_time_s,
            energy_override_j=stats_after.energy_j - stats_before.energy_j,
            advance=False, t_start_s=session_start_s)
        transfer = transfer_report_from_timeline(timeline, since,
                                                 failed=False, messages=[])
        return HardenedUpdateReport(
            transfer=transfer,
            compressed_bytes=total_compressed_bytes(blocks),
            raw_bytes=len(self.image),
            decompress_time_s=timeline.time_s(kinds={MCU_DECOMPRESS},
                                              since=since),
            reconfigure_time_s=timeline.time_s(kinds={FPGA_CONFIG},
                                               since=since),
            total_time_s=timeline.time_s(since=since, advancing_only=True),
            node_energy_j=node_energy_from_timeline(timeline, since=since),
            timeline=timeline,
            boot=boot,
            resumes=resumes,
            watchdog_resets=watchdog_resets)
