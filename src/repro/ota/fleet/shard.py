"""Deterministic sharded execution of fleet campaigns.

Sharding is a pure partition of the node-id space: each shard runs
:func:`~repro.ota.fleet.engine._simulate_range` over a contiguous id
range against the *full-fleet* link plan, and the per-shard state
arrays are concatenated back in shard order before finalization.
Because every node's randomness is keyed by ``(seed, node_id,
draw_index)`` — never by when other nodes drew — a node's trajectory is
bit-identical whether the fleet runs in one shard or fifty, serially or
across a process pool.  ``tests/test_fleet_sharding.py`` pins this
with Hypothesis over seeds and shard counts.

Workers recompute the link plan from the (picklable) config rather
than shipping fleet-sized arrays through the pool; the plan is itself a
pure function of the config, so every worker sees identical links.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

from repro.errors import ConfigurationError
from repro.ota.fleet.config import FleetCampaignConfig
from repro.ota.fleet.engine import FleetReport, _simulate_range, \
    finalize_fleet
from repro.ota.fleet.link import prepare_links


def shard_ranges(num_nodes: int, shards: int) -> list[tuple[int, int]]:
    """Partition ``[0, num_nodes)`` into contiguous near-equal ranges.

    The first ``num_nodes % shards`` ranges are one node longer, so
    sizes never differ by more than one.  Shards beyond the node count
    come back empty rather than erroring, which keeps callers' shard
    counts decoupled from fleet size.

    Raises:
        ConfigurationError: for a non-positive shard count.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    base, extra = divmod(num_nodes, shards)

    def bound(shard: int) -> int:
        return shard * base + min(shard, extra)

    return [(bound(shard), bound(shard + 1)) for shard in range(shards)]


def _shard_worker(task: tuple[FleetCampaignConfig, int, int]
                  ) -> dict[str, np.ndarray]:
    """Pool entry point: simulate one contiguous node range."""
    config, lo, hi = task
    return _simulate_range(config, lo, hi)


def run_fleet_campaign_sharded(config: FleetCampaignConfig,
                               shards: int = 1,
                               processes: int | None = None) -> FleetReport:
    """Run a campaign partitioned into shards; results are shard-count
    and pool-size invariant (bit-exact).

    Args:
        config: the campaign.
        shards: how many contiguous node ranges to simulate separately.
        processes: size of the ``multiprocessing`` pool; ``None`` runs
            the shards sequentially in-process (same results).

    Raises:
        ConfigurationError: for a non-positive shard or process count.
    """
    if processes is not None and processes < 1:
        raise ConfigurationError(
            f"need at least one process, got {processes}")
    ranges = [(lo, hi) for lo, hi in shard_ranges(config.num_nodes, shards)
              if hi > lo]
    tasks = [(config, lo, hi) for lo, hi in ranges]
    if processes is None or len(tasks) <= 1:
        parts = [_shard_worker(task) for task in tasks]
    else:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(processes, len(tasks))) as pool:
            parts = pool.map(_shard_worker, tasks)
    merged = {name: np.concatenate([part[name] for part in parts])
              for name in parts[0]}
    return finalize_fleet(config, prepare_links(config), merged)
