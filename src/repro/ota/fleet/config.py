"""Fleet campaign configuration: every knob of the cohort engine.

A fleet campaign is fully described by one frozen
:class:`FleetCampaignConfig` — deployment geometry, LoRa configuration,
ARQ/retry budgets, fault model, verify behaviour and the root seed.
Determinism contract: two runs with equal configs produce bit-identical
per-node results, regardless of shard count or process pool (see
``tests/test_fleet_sharding.py``).

The config is a plain picklable value object so shards can ship it to
worker processes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ota.mac import (
    ACK_TIMEOUT_S,
    DATA_PAYLOAD_BYTES,
    MAX_ATTEMPTS_PER_PACKET,
    MAX_DATA_PAYLOAD_BYTES,
)
from repro.phy.lora.params import LoRaParams

LISTEN_PERIOD_S = 60.0
"""Default node listen period between session attempts (paper 3.4)."""

DEFAULT_SESSION_ATTEMPTS = 3
"""Session attempts before a node is abandoned (hardened-path default)."""

FREQUENCY_HZ = 915e6  # units: Hz, 915 MHz ISM band
"""Carrier of the backbone link (the paper's campus deployment)."""


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FleetBurstLoss:
    """Gilbert-Elliott burst loss for the fleet engine.

    Same chain as :class:`repro.faults.GilbertElliott`, but stateless:
    the fleet engine keeps the per-node chain state in cohort buffers
    and draws transitions from the node's counter stream, so the model
    needs no seed of its own — all randomness roots in the campaign
    seed.  One transition draw and one loss draw are consumed per ARQ
    round (unconditionally, which keeps every node's draw count
    identical for a given trajectory).

    Attributes:
        p_enter_bad: per-round probability of a good->bad transition.
        p_exit_bad: per-round probability of a bad->good transition.
        loss_good: forced-loss probability in the good state.
        loss_bad: forced-loss probability in the bad state.
    """

    p_enter_bad: float = 0.05
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))


@dataclass(frozen=True)
class FleetCampaignConfig:
    """One fleet OTA campaign, fully specified.

    Attributes:
        num_nodes: fleet size.
        image_bytes: wire size of the (compressed) firmware image.
        seed: root of every random stream in the campaign.
        is_fpga_image: FPGA images end with a quad-SPI reconfigure.
        payload_bytes: data-fragment payload size.
        spreading_factor: backbone LoRa SF.
        bandwidth_hz: backbone LoRa bandwidth.
        coding_rate_denominator: backbone LoRa CR denominator (5..8).
        max_rounds_per_fragment: ARQ rounds per fragment before the
            session attempt fails.
        max_session_attempts: session attempts before abandoning a node.
        retry_timeout_s: ACK-timeout dwell after a lost round.
        listen_period_s: wait between session attempts.
        max_radius_m: deployment disk radius (30 m keep-out inside).
        pathloss_exponent: log-distance path-loss exponent.
        shadowing_sigma_db: lognormal shadowing sigma (one static draw
            per node per direction).
        frequency_hz: backbone carrier frequency.
        ap_tx_power_dbm: AP transmit power.
        node_tx_power_dbm: node transmit power.
        ap_antenna_gain_dbi: AP antenna gain (applies both directions).
        verify_failure_prob: probability the post-install CRC verify
            fails and the node rolls back to its golden bank.
        loss: optional burst-loss fault model.
    """

    num_nodes: int
    image_bytes: int
    seed: int = 0
    is_fpga_image: bool = True
    payload_bytes: int = DATA_PAYLOAD_BYTES
    spreading_factor: int = 8
    bandwidth_hz: float = 500e3  # units: Hz, widest SX1276 channel
    coding_rate_denominator: int = 6
    max_rounds_per_fragment: int = MAX_ATTEMPTS_PER_PACKET
    max_session_attempts: int = DEFAULT_SESSION_ATTEMPTS
    retry_timeout_s: float = ACK_TIMEOUT_S
    listen_period_s: float = LISTEN_PERIOD_S
    max_radius_m: float = 1050.0
    pathloss_exponent: float = 3.4
    shadowing_sigma_db: float = 4.0
    frequency_hz: float = FREQUENCY_HZ
    ap_tx_power_dbm: float = 14.0
    node_tx_power_dbm: float = 14.0
    ap_antenna_gain_dbi: float = 6.0
    verify_failure_prob: float = 0.0
    loss: FleetBurstLoss | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(
                f"need at least one node, got {self.num_nodes}")
        if self.image_bytes < 1:
            raise ConfigurationError(
                f"image must be non-empty, got {self.image_bytes} bytes")
        if not 1 <= self.payload_bytes <= MAX_DATA_PAYLOAD_BYTES:
            raise ConfigurationError(
                f"payload must be 1..{MAX_DATA_PAYLOAD_BYTES} bytes, "
                f"got {self.payload_bytes}")
        if self.max_rounds_per_fragment < 1:
            raise ConfigurationError(
                "max_rounds_per_fragment must be >= 1, got "
                f"{self.max_rounds_per_fragment}")
        if self.max_session_attempts < 1:
            raise ConfigurationError(
                "max_session_attempts must be >= 1, got "
                f"{self.max_session_attempts}")
        if self.retry_timeout_s <= 0.0:
            raise ConfigurationError(
                f"retry_timeout_s must be positive, "
                f"got {self.retry_timeout_s!r}")
        if self.listen_period_s < 0.0:
            raise ConfigurationError(
                f"listen_period_s must be >= 0, got {self.listen_period_s!r}")
        if self.max_radius_m <= 30.0:
            raise ConfigurationError(
                f"radius must exceed the 30 m keep-out, "
                f"got {self.max_radius_m!r}")
        if self.shadowing_sigma_db < 0.0:
            raise ConfigurationError(
                f"shadowing sigma must be >= 0, "
                f"got {self.shadowing_sigma_db!r}")
        _check_probability("verify_failure_prob", self.verify_failure_prob)

    @property
    def params(self) -> LoRaParams:
        """The backbone LoRa PHY configuration."""
        return LoRaParams(
            spreading_factor=self.spreading_factor,
            bandwidth_hz=self.bandwidth_hz,
            coding_rate_denominator=self.coding_rate_denominator)

    @property
    def num_fragments(self) -> int:
        """Data fragments the image splits into."""
        return -(-self.image_bytes // self.payload_bytes)

    @property
    def tail_payload_bytes(self) -> int:
        """Payload size of the final (possibly short) fragment."""
        remainder = self.image_bytes % self.payload_bytes
        return remainder if remainder else self.payload_bytes
