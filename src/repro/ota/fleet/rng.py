"""Counter-based per-node random streams for the fleet engine.

The fleet engine advances whole cohorts per step, so its randomness
cannot live in one sequential generator: the draw *order* across nodes
changes with vector scheduling and with shard boundaries.  Instead every
node owns a keyed counter stream, the same idea as
:meth:`repro.faults.FaultPlan.bind` — a node's draws depend only on
``(seed, node_id, draw_index)``, never on when other nodes drew — which
is exactly the property that makes shard count irrelevant to results.

The stream is SplitMix64: draw ``i`` of node ``n`` hashes
``key(seed, n) + i * GOLDEN_GAMMA`` through the finalizer and keeps the
top 53 bits as a float in ``[0, 1)``.  Both lanes are implemented twice
— vectorized on ``uint64`` numpy arrays (wrap-around arithmetic is the
masking) and as scalar Python-int references (explicit ``& MASK64``) —
and the pair is bit-exact: uint64 wraparound equals masked Python-int
arithmetic, and a 53-bit integer converts to float64 exactly.
"""

from __future__ import annotations

import numpy as np

GOLDEN_GAMMA = 0x9E3779B97F4A7C15
"""SplitMix64 stream increment (the 64-bit golden ratio)."""

MIX_MULT_1 = 0xBF58476D1CE4E5B9
"""First finalizer multiplier (Stafford variant 13)."""

MIX_MULT_2 = 0x94D049BB133111EB
"""Second finalizer multiplier (Stafford variant 13)."""

MASK64 = (1 << 64) - 1
"""64-bit wrap-around mask for the scalar reference lane."""

TO_UNIT_53 = 2.0 ** -53
"""Scales a 53-bit integer into [0, 1) exactly."""

_GOLDEN_U64 = np.uint64(GOLDEN_GAMMA)
_MULT1_U64 = np.uint64(MIX_MULT_1)
_MULT2_U64 = np.uint64(MIX_MULT_2)
_ONE_U64 = np.uint64(1)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_11 = np.uint64(11)


def mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a ``uint64`` array (wraps silently)."""
    z = z ^ (z >> _SHIFT_30)
    z = z * _MULT1_U64
    z = z ^ (z >> _SHIFT_27)
    z = z * _MULT2_U64
    return z ^ (z >> _SHIFT_31)


def mix64_reference(z: int) -> int:
    """Scalar SplitMix64 finalizer on masked Python ints (bit-exact)."""
    z &= MASK64
    z ^= z >> 30
    z = (z * MIX_MULT_1) & MASK64
    z ^= z >> 27
    z = (z * MIX_MULT_2) & MASK64
    return z ^ (z >> 31)


def node_keys(seed: int, ids: np.ndarray) -> np.ndarray:
    """Per-node stream keys for a whole cohort (``uint64`` array).

    Depends only on ``(seed, node_id)``, so any slice of the fleet gets
    the same keys regardless of which shard computes them.
    """
    base = np.uint64(seed & MASK64)
    z = base + (ids.astype(np.uint64) + _ONE_U64) * _GOLDEN_U64
    return mix64(z)


def node_keys_reference(seed: int, ids: "list[int] | np.ndarray") -> list[int]:
    """Scalar twin of :func:`node_keys` (masked Python-int arithmetic)."""
    return [mix64_reference((seed & MASK64)
                            + (int(node_id) + 1) * GOLDEN_GAMMA)
            for node_id in ids]


def uniforms(keys: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Draw ``counters[i]``-th uniform of each stream (``float64``).

    ``counters`` holds 1-based draw indices (callers increment before
    drawing); equal indices across calls return equal values.
    """
    z = mix64(keys + counters * _GOLDEN_U64)
    return (z >> _SHIFT_11).astype(np.float64) * TO_UNIT_53


def uniforms_reference(keys: "list[int] | np.ndarray",
                       counters: "list[int] | np.ndarray") -> list[float]:
    """Scalar twin of :func:`uniforms`, draw by draw."""
    return [float(mix64_reference((int(key) + int(counter) * GOLDEN_GAMMA)
                                  & MASK64) >> 11) * TO_UNIT_53
            for key, counter in zip(keys, counters)]
