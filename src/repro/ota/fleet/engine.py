"""Vectorized fleet campaign engine: whole-cohort OTA stepping.

The legacy campaign path (:class:`repro.ota.ap.AccessPoint`) simulates
one node at a time and appends one :class:`~repro.sim.SimEvent` per
protocol action — faithful, but O(events) Python work.  This engine
advances the *whole fleet* one ARQ round per step on struct-of-arrays
cohort buffers (:mod:`repro.ota.fleet.buffers`), replacing per-event
ledger appends with per-node integer counters that are expanded into a
:class:`~repro.sim.TimelineRollup` at the end.  Same protocol shape as
the hardened session loop — stop-and-wait ARQ with per-fragment round
budgets, bounded session attempts with checkpoint/resume, CRC verify
with golden-bank rollback — at fleet-scale throughput.

Determinism and parity contracts:

* ``run_fleet_campaign`` and ``run_fleet_campaign_reference`` (a plain
  per-node Python loop over the identical draw sequence) produce
  bit-identical per-node arrays (``tests/test_fleet_engine.py``).
* Randomness is counter-based per node (:mod:`repro.ota.fleet.rng`), so
  results are independent of vector scheduling and shard boundaries
  (``tests/test_fleet_sharding.py``).
* :func:`simulate_node_timeline` re-derives any single node's full
  event-level :class:`~repro.sim.Timeline` from the same draw stream —
  drill-down without ever materializing the fleet's ledger.

Draw order per node per ARQ round (normative — both twins and the
timeline reconstruction follow it exactly): burst-loss transition draw
and forced-loss draw (when a loss model is configured; unconditional,
so every trajectory consumes a fixed two draws per round), then the
data-packet draw (skipped on a forced loss), then the ACK draw (only
when the data packet got through), and a final verify draw on image
completion (only when ``verify_failure_prob > 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.config import NODE_FPGA, programming_time_s
from repro.mcu.msp432 import NODE_MCU
from repro.ota.fleet import buffers
from repro.ota.fleet.config import FleetCampaignConfig
from repro.ota.fleet.link import FleetLinkPlan, prepare_links
from repro.ota.fleet.rng import node_keys, node_keys_reference, uniforms, \
    uniforms_reference
from repro.ota.hardened import (
    OUTCOME_ABANDONED,
    OUTCOME_RESUMED,
    OUTCOME_ROLLED_BACK,
    OUTCOME_SUCCEEDED,
)
from repro.ota.mac import NODE_RADIO
from repro.ota.updater import DECOMPRESS_BANDWIDTH_BPS, NODE_FLASH
from repro.power import profiles
from repro.sim import (
    CONTROL_RX,
    CONTROL_TX,
    FAULT_LOSS,
    FPGA_CONFIG,
    MCU_DECOMPRESS,
    MCU_RUN,
    OTA_CHECKPOINT,
    OTA_FAILURE,
    OTA_RESUME,
    OTA_RETRY_WAIT,
    OTA_ROLLBACK,
    OTA_SESSION,
    OTA_VERIFY,
    PACKET_DELIVERED,
    PACKET_RX,
    PACKET_TIMEOUT,
    PACKET_TX,
    StreamingLedgerWriter,
    Timeline,
    TimelineRollup,
)
from repro.sim.stream import DEFAULT_BUFFER_ROWS

CODE_SUCCEEDED = 0
CODE_RESUMED = 1
CODE_ROLLED_BACK = 2
CODE_ABANDONED = 3

#: Outcome code -> the hardened path's outcome string.
OUTCOME_LABELS = (OUTCOME_SUCCEEDED, OUTCOME_RESUMED, OUTCOME_ROLLED_BACK,
                  OUTCOME_ABANDONED)

GOLDEN_BANK = 0
UPDATE_BANK = 1

_STATE_FIELDS = (
    "node_ids", "fragments", "attempts", "data_rx_full", "data_rx_tail",
    "timeouts", "acks_tx", "forced_losses", "session_failures", "resumes",
    "outcome_codes", "flash_bank",
)


def _simulate_range(config: FleetCampaignConfig, lo: int, hi: int,
                    plan: FleetLinkPlan | None = None
                    ) -> dict[str, np.ndarray]:
    """Advance nodes ``[lo, hi)`` to completion, one ARQ round per step.

    Returns the raw cohort state arrays (local index ``i`` is node
    ``lo + i``); :func:`finalize_fleet` turns them into a report.  The
    link plan is always the *full-fleet* plan sliced here, so results
    do not depend on the range boundaries.
    """
    if plan is None:
        plan = prepare_links(config)
    n = hi - lo
    ids = buffers.node_ids(lo, hi)
    keys = node_keys(config.seed, ids)
    counters = buffers.counters_u64(n)

    p_full = np.asarray(plan.p_data_full[lo:hi])
    p_tail = np.asarray(plan.p_data_tail[lo:hi])
    p_ack = np.asarray(plan.p_ack[lo:hi])

    frag = buffers.counters_i64(n)
    round_no = buffers.counters_i64(n)
    attempts = buffers.full_i64(n, 1)
    d_full = buffers.counters_i64(n)
    d_tail = buffers.counters_i64(n)
    timeouts = buffers.counters_i64(n)
    acks = buffers.counters_i64(n)
    forced_losses = buffers.counters_i64(n)
    failures = buffers.counters_i64(n)
    resumes = buffers.counters_i64(n)
    outcome = buffers.codes_i8(n, -1)
    bank = buffers.codes_i8(n, GOLDEN_BANK)
    active = buffers.flags_bool(n, True)
    ge_bad = buffers.flags_bool(n)

    num_fragments = config.num_fragments
    loss = config.loss
    while True:
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break

        # (1) burst-loss chain transition + forced-loss draw.
        if loss is not None:
            counters[idx] += 1
            t = uniforms(keys[idx], counters[idx])
            new_bad = np.where(ge_bad[idx], ~(t < loss.p_exit_bad),
                               t < loss.p_enter_bad)
            ge_bad[idx] = new_bad
            counters[idx] += 1
            drop = uniforms(keys[idx], counters[idx])
            forced = drop < np.where(new_bad, loss.loss_bad, loss.loss_good)
        else:
            forced = buffers.flags_bool(idx.size)
        forced_losses[idx] += forced

        # (2) the AP transmits this round's fragment to every active
        # node: an RX dwell whether or not the packet decodes.
        is_tail = frag[idx] == num_fragments - 1
        d_full[idx] += ~is_tail
        d_tail[idx] += is_tail

        # (3) data-packet outcome (forced losses short-circuit the draw).
        data_ok = buffers.flags_bool(idx.size)
        clear = ~forced
        sub = idx[clear]
        if sub.size:
            counters[sub] += 1
            draw = uniforms(keys[sub], counters[sub])
            data_ok[clear] = draw < np.where(is_tail[clear], p_tail[sub],
                                             p_full[sub])

        # (4) the node ACKs every decoded fragment; the AP may miss it.
        ack_ok = buffers.flags_bool(idx.size)
        sub = idx[data_ok]
        if sub.size:
            counters[sub] += 1
            draw = uniforms(keys[sub], counters[sub])
            ack_ok[data_ok] = draw < p_ack[sub]
            acks[sub] += 1

        delivered = data_ok & ack_ok
        sub = idx[delivered]
        frag[sub] += 1
        round_no[sub] = 0
        sub = idx[~delivered]
        timeouts[sub] += 1
        round_no[sub] += 1

        # Image complete: verify, then commit or roll back.
        done = frag[idx] == num_fragments
        sub = idx[done]
        if sub.size:
            if config.verify_failure_prob > 0.0:
                counters[sub] += 1
                draw = uniforms(keys[sub], counters[sub])
                rolled = draw < config.verify_failure_prob
            else:
                rolled = buffers.flags_bool(sub.size)
            outcome[sub] = np.where(
                rolled, CODE_ROLLED_BACK,
                np.where(resumes[sub] > 0, CODE_RESUMED,
                         CODE_SUCCEEDED)).astype(np.int8)
            bank[sub] = np.where(rolled, GOLDEN_BANK,
                                 UPDATE_BANK).astype(np.int8)
            active[sub] = False

        # Round budget exhausted: retry the session or abandon the node.
        failed = round_no[idx] >= config.max_rounds_per_fragment
        sub = idx[failed]
        if sub.size:
            failures[sub] += 1
            retryable = attempts[sub] < config.max_session_attempts
            retry = sub[retryable]
            attempts[retry] += 1
            resumes[retry] += frag[retry] > 0
            round_no[retry] = 0
            abandoned = sub[~retryable]
            outcome[abandoned] = CODE_ABANDONED
            active[abandoned] = False

    return {
        "node_ids": ids, "fragments": frag, "attempts": attempts,
        "data_rx_full": d_full, "data_rx_tail": d_tail,
        "timeouts": timeouts, "acks_tx": acks,
        "forced_losses": forced_losses, "session_failures": failures,
        "resumes": resumes, "outcome_codes": outcome, "flash_bank": bank,
    }


def _simulate_node(config: FleetCampaignConfig, plan: FleetLinkPlan,
                   node_id: int, timeline: Timeline | None = None
                   ) -> dict[str, int]:
    """One node's full trajectory as plain scalar Python.

    This is the normative specification of the draw order the
    vectorized stepper must match.  With a ``timeline`` it also emits
    the node's event-level ledger, one :class:`~repro.sim.SimEvent` per
    counted action, in chronological order.
    """
    key = node_keys_reference(config.seed, [node_id])[0]
    counter = 0
    p_full = float(plan.p_data_full[node_id])
    p_tail = float(plan.p_data_tail[node_id])
    p_ack = float(plan.p_ack[node_id])
    num_fragments = config.num_fragments
    loss = config.loss

    frag = 0
    round_no = 0
    attempt = 1
    bad = False
    d_full = d_tail = timeouts = acks = 0
    forced_losses = failures = resumes = 0
    outcome = -1
    bank = GOLDEN_BANK

    def record(kind: str, component: str, duration_s: float = 0.0,
               power_w: float | None = None, advance: bool = True) -> None:
        if timeline is not None:
            timeline.record(kind, component, duration_s=duration_s,
                            power_w=power_w, advance=advance)

    record(CONTROL_RX, NODE_RADIO, plan.air_request_s,
           profiles.BACKBONE_RX_W)
    record(CONTROL_TX, NODE_RADIO, plan.air_ready_s,
           profiles.BACKBONE_TX_14DBM_W)
    while True:
        if loss is not None:
            counter += 1
            t = uniforms_reference([key], [counter])[0]
            bad = not (t < loss.p_exit_bad) if bad else t < loss.p_enter_bad
            counter += 1
            drop = uniforms_reference([key], [counter])[0]
            forced = drop < (loss.loss_bad if bad else loss.loss_good)
        else:
            forced = False
        if forced:
            forced_losses += 1
            record(FAULT_LOSS, NODE_RADIO)

        is_tail = frag == num_fragments - 1
        if is_tail:
            d_tail += 1
            record(PACKET_RX, NODE_RADIO, plan.air_data_tail_s,
                   profiles.BACKBONE_RX_W)
        else:
            d_full += 1
            record(PACKET_RX, NODE_RADIO, plan.air_data_full_s,
                   profiles.BACKBONE_RX_W)

        data_ok = False
        if not forced:
            counter += 1
            draw = uniforms_reference([key], [counter])[0]
            data_ok = draw < (p_tail if is_tail else p_full)

        ack_ok = False
        if data_ok:
            counter += 1
            draw = uniforms_reference([key], [counter])[0]
            ack_ok = draw < p_ack
            acks += 1
            record(PACKET_TX, NODE_RADIO, plan.air_ack_s,
                   profiles.BACKBONE_TX_14DBM_W)

        if data_ok and ack_ok:
            frag += 1
            round_no = 0
            record(PACKET_DELIVERED, NODE_RADIO)
            record(OTA_CHECKPOINT, NODE_FLASH, advance=False)
        else:
            timeouts += 1
            round_no += 1
            record(PACKET_TIMEOUT, NODE_RADIO, config.retry_timeout_s,
                   profiles.BACKBONE_RX_W)

        if frag == num_fragments:
            record(CONTROL_RX, NODE_RADIO, plan.air_end_s,
                   profiles.BACKBONE_RX_W)
            record(MCU_DECOMPRESS, NODE_MCU,
                   config.image_bytes * 8 / DECOMPRESS_BANDWIDTH_BPS,
                   profiles.MCU_ACTIVE_W)
            if config.is_fpga_image:
                record(FPGA_CONFIG, NODE_FPGA,
                       programming_time_s(config.image_bytes),
                       profiles.FPGA_STATIC_W)
            record(OTA_VERIFY, NODE_MCU)
            if config.verify_failure_prob > 0.0:
                counter += 1
                draw = uniforms_reference([key], [counter])[0]
                rolled = draw < config.verify_failure_prob
            else:
                rolled = False
            if rolled:
                outcome = CODE_ROLLED_BACK
                bank = GOLDEN_BANK
                record(OTA_ROLLBACK, NODE_FLASH, advance=False)
            else:
                outcome = CODE_RESUMED if resumes > 0 else CODE_SUCCEEDED
                bank = UPDATE_BANK
                record(OTA_SESSION, NODE_RADIO)
            break

        if round_no >= config.max_rounds_per_fragment:
            failures += 1
            record(OTA_FAILURE, NODE_RADIO)
            if attempt < config.max_session_attempts:
                attempt += 1
                record(OTA_RETRY_WAIT, NODE_RADIO, config.listen_period_s)
                if frag > 0:
                    resumes += 1
                    record(OTA_RESUME, NODE_RADIO)
                round_no = 0
                record(CONTROL_RX, NODE_RADIO, plan.air_request_s,
                       profiles.BACKBONE_RX_W)
                record(CONTROL_TX, NODE_RADIO, plan.air_ready_s,
                       profiles.BACKBONE_TX_14DBM_W)
            else:
                outcome = CODE_ABANDONED
                break

    return {
        "fragments": frag, "attempts": attempt, "data_rx_full": d_full,
        "data_rx_tail": d_tail, "timeouts": timeouts, "acks_tx": acks,
        "forced_losses": forced_losses, "session_failures": failures,
        "resumes": resumes, "outcome_codes": outcome, "flash_bank": bank,
    }


def _simulate_range_reference(config: FleetCampaignConfig, lo: int, hi: int,
                              plan: FleetLinkPlan | None = None
                              ) -> dict[str, np.ndarray]:
    """Scalar twin of :func:`_simulate_range`: a per-node Python loop."""
    if plan is None:
        plan = prepare_links(config)
    n = hi - lo
    state = {name: buffers.counters_i64(n) for name in _STATE_FIELDS
             if name not in ("node_ids", "outcome_codes", "flash_bank")}
    state["node_ids"] = buffers.node_ids(lo, hi)
    state["outcome_codes"] = buffers.codes_i8(n, -1)
    state["flash_bank"] = buffers.codes_i8(n, GOLDEN_BANK)
    for i in range(n):
        node = _simulate_node(config, plan, lo + i)
        for name, value in node.items():
            state[name][i] = value
    return state


@dataclass(frozen=True)
class FleetReport:
    """Everything a fleet campaign produced, per node plus rollup.

    Per-node arrays are indexed by node id.  ``duration_s`` and
    ``energy_j`` are the closed-form per-node session integrals (the
    counter-times-constant expansion of the legacy ledger replay);
    ``rollup`` is the hierarchical (kind, component) aggregate that
    replaces the event ledger at fleet scale.
    """

    config: FleetCampaignConfig
    node_ids: np.ndarray
    outcome_codes: np.ndarray
    fragments: np.ndarray
    attempts: np.ndarray
    data_rx_full: np.ndarray
    data_rx_tail: np.ndarray
    timeouts: np.ndarray
    acks_tx: np.ndarray
    forced_losses: np.ndarray
    session_failures: np.ndarray
    resumes: np.ndarray
    flash_bank: np.ndarray
    duration_s: np.ndarray
    energy_j: np.ndarray
    events_per_node: np.ndarray
    rollup: TimelineRollup = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def total_events(self) -> int:
        """Ledger rows an event-level simulation would have written."""
        return int(np.sum(self.events_per_node))

    @property
    def total_energy_j(self) -> float:
        """Fleet-wide node-side energy."""
        return float(np.sum(self.energy_j))

    def outcomes(self) -> list[str]:
        """Per-node outcome labels (hardened-path vocabulary)."""
        return [OUTCOME_LABELS[code] for code in self.outcome_codes]

    def outcome_counts(self) -> dict[str, int]:
        """How many nodes finished in each outcome."""
        return {label: int(np.sum(self.outcome_codes == code))
                for code, label in enumerate(OUTCOME_LABELS)}


def finalize_fleet(config: FleetCampaignConfig, plan: FleetLinkPlan,
                   state: Mapping[str, np.ndarray]) -> FleetReport:
    """Expand cohort counters into per-node integrals and the rollup.

    Every float here is ``integer counter x float constant`` summed over
    the *merged full-fleet* arrays in index order, which is what makes
    totals independent of how the stepping was sharded.
    """
    frag = state["fragments"]
    attempts = state["attempts"]
    d_full = state["data_rx_full"]
    d_tail = state["data_rx_tail"]
    timeouts = state["timeouts"]
    acks = state["acks_tx"]
    outcome = state["outcome_codes"]
    retries = attempts - 1
    ends = (frag == config.num_fragments).astype(np.int64)
    rolled = (outcome == CODE_ROLLED_BACK).astype(np.int64)
    session_ok = ((outcome == CODE_SUCCEEDED)
                  | (outcome == CODE_RESUMED)).astype(np.int64)

    decompress_s = config.image_bytes * 8 / DECOMPRESS_BANDWIDTH_BPS
    fpga_s = (programming_time_s(config.image_bytes)
              if config.is_fpga_image else 0.0)

    rx_time = (d_full * plan.air_data_full_s + d_tail * plan.air_data_tail_s
               + timeouts * config.retry_timeout_s
               + attempts * plan.air_request_s + ends * plan.air_end_s)
    tx_time = acks * plan.air_ack_s + attempts * plan.air_ready_s
    wait_time = retries * config.listen_period_s
    decompress_time = ends * decompress_s
    fpga_time = ends * fpga_s
    duration = rx_time + tx_time + wait_time + decompress_time + fpga_time
    energy = (rx_time * profiles.BACKBONE_RX_W
              + tx_time * profiles.BACKBONE_TX_14DBM_W
              + (rx_time + tx_time + decompress_time) * profiles.MCU_ACTIVE_W
              + fpga_time * profiles.FPGA_STATIC_W)

    # One term per rollup cell: delivered markers + checkpoints share
    # `frag`; control RX covers the per-attempt request plus the end
    # message; every completed node decompresses, verifies and (for FPGA
    # images) reconfigures; the trailing +1 is the node's MCU dwell.
    events = (d_full + d_tail + timeouts + acks + frag + frag
              + state["forced_losses"] + state["session_failures"]
              + retries + state["resumes"] + attempts + attempts + ends
              + ends + ends * (1 + int(config.is_fpga_image))
              + rolled + session_ok + 1)

    rollup = TimelineRollup()
    rx_w = profiles.BACKBONE_RX_W
    tx_w = profiles.BACKBONE_TX_14DBM_W

    def cell(kind: str, component: str, count_arr: np.ndarray,
             airtime_s: float = 0.0, power_w: float = 0.0) -> None:
        count = int(np.sum(count_arr))
        dwell = count * airtime_s
        rollup.add(kind, component, count=count, time_s=dwell,
                   energy_j=dwell * power_w)

    cell(CONTROL_RX, NODE_RADIO, attempts, plan.air_request_s, rx_w)
    cell(CONTROL_RX, NODE_RADIO, ends, plan.air_end_s, rx_w)
    cell(CONTROL_TX, NODE_RADIO, attempts, plan.air_ready_s, tx_w)
    cell(PACKET_RX, NODE_RADIO, d_full, plan.air_data_full_s, rx_w)
    cell(PACKET_RX, NODE_RADIO, d_tail, plan.air_data_tail_s, rx_w)
    cell(PACKET_TIMEOUT, NODE_RADIO, timeouts, config.retry_timeout_s, rx_w)
    cell(PACKET_TX, NODE_RADIO, acks, plan.air_ack_s, tx_w)
    cell(PACKET_DELIVERED, NODE_RADIO, frag)
    cell(OTA_CHECKPOINT, NODE_FLASH, frag)
    cell(FAULT_LOSS, NODE_RADIO, state["forced_losses"])
    cell(OTA_FAILURE, NODE_RADIO, state["session_failures"])
    cell(OTA_RETRY_WAIT, NODE_RADIO, retries, config.listen_period_s)
    cell(OTA_RESUME, NODE_RADIO, state["resumes"])
    cell(MCU_DECOMPRESS, NODE_MCU, ends, decompress_s,
         profiles.MCU_ACTIVE_W)
    if config.is_fpga_image:
        cell(FPGA_CONFIG, NODE_FPGA, ends, fpga_s, profiles.FPGA_STATIC_W)
    cell(OTA_VERIFY, NODE_MCU, ends)
    cell(OTA_ROLLBACK, NODE_FLASH, rolled)
    cell(OTA_SESSION, NODE_RADIO, session_ok)
    # The MCU runs the radio stack for the whole RX+TX dwell; that time
    # is concurrent with the radio cells, so only its energy is new.
    mcu_dwell = float(np.sum(rx_time) + np.sum(tx_time))
    rollup.add(MCU_RUN, NODE_MCU, count=config.num_nodes, time_s=mcu_dwell,
               energy_j=mcu_dwell * profiles.MCU_ACTIVE_W)

    return FleetReport(
        config=config,
        node_ids=state["node_ids"],
        outcome_codes=outcome,
        fragments=frag,
        attempts=attempts,
        data_rx_full=d_full,
        data_rx_tail=d_tail,
        timeouts=timeouts,
        acks_tx=acks,
        forced_losses=state["forced_losses"],
        session_failures=state["session_failures"],
        resumes=state["resumes"],
        flash_bank=state["flash_bank"],
        duration_s=duration,
        energy_j=energy,
        events_per_node=events,
        rollup=rollup)


def run_fleet_campaign(config: FleetCampaignConfig) -> FleetReport:
    """Run a whole fleet campaign on the vectorized cohort engine."""
    plan = prepare_links(config)
    state = _simulate_range(config, 0, config.num_nodes, plan)
    return finalize_fleet(config, plan, state)


def run_fleet_campaign_reference(config: FleetCampaignConfig) -> FleetReport:
    """Per-node scalar twin of :func:`run_fleet_campaign` (bit-exact)."""
    plan = prepare_links(config)
    state = _simulate_range_reference(config, 0, config.num_nodes, plan)
    return finalize_fleet(config, plan, state)


def simulate_node_timeline(config: FleetCampaignConfig, node_id: int,
                           plan: FleetLinkPlan | None = None) -> Timeline:
    """Reconstruct one node's event-level ledger from its draw stream.

    The fleet engine never materializes per-event ledgers; when one node
    needs debugging, its exact trajectory is re-derived here (counter
    streams make any node's draws reproducible in isolation).  The
    resulting timeline has exactly ``events_per_node[node_id]`` events.
    """
    if not 0 <= node_id < config.num_nodes:
        raise ConfigurationError(
            f"node {node_id} outside fleet of {config.num_nodes}")
    if plan is None:
        plan = prepare_links(config)
    timeline = Timeline()
    _simulate_node(config, plan, node_id, timeline=timeline)
    radio_dwell = timeline.time_s(
        kinds={CONTROL_RX, CONTROL_TX, PACKET_RX, PACKET_TX,
               PACKET_TIMEOUT})
    timeline.record(MCU_RUN, NODE_MCU, label="radio stack",
                    duration_s=radio_dwell, power_w=profiles.MCU_ACTIVE_W,
                    advance=False, t_start_s=0.0)
    return timeline


def write_fleet_spill(report: FleetReport, path,
                      buffer_rows: int = DEFAULT_BUFFER_ROWS
                      ) -> dict[str, int]:
    """Spill a fleet report to JSONL with a bounded in-memory buffer.

    Layout: one campaign header row, one row per node, then the rollup
    rows.  Returns the writer's spill statistics (``rows_written``,
    ``max_buffered``) so callers can assert the resident buffer stayed
    bounded.
    """
    outcomes = report.outcomes()
    with StreamingLedgerWriter(path, buffer_rows=buffer_rows) as writer:
        writer.write_row({
            "record": "fleet-campaign",
            "num_nodes": report.num_nodes,
            "image_bytes": report.config.image_bytes,
            "seed": report.config.seed,
            "total_events": report.total_events,
            "total_energy_j": report.total_energy_j,
            "outcomes": report.outcome_counts(),
        })
        for i in range(report.num_nodes):
            writer.write_row({
                "record": "node",
                "node": int(report.node_ids[i]),
                "outcome": outcomes[i],
                "fragments": int(report.fragments[i]),
                "attempts": int(report.attempts[i]),
                "timeouts": int(report.timeouts[i]),
                "flash_bank": int(report.flash_bank[i]),
                "duration_s": float(report.duration_s[i]),
                "energy_j": float(report.energy_j[i]),
                "events": int(report.events_per_node[i]),
            })
        writer.write_rows(report.rollup.to_rows())
    return {"rows_written": writer.rows_written,
            "max_buffered": writer.max_buffered}
