"""Cohort buffer allocation for the fleet engine (struct-of-arrays).

Every per-node state vector the fleet engine keeps — fragment counters,
retry budgets, flash bank status, RNG counters, energy accumulators —
is allocated here and nowhere else.  Centralizing allocation keeps the
cohort layout auditable (one dtype policy, one zero-fill policy) and is
enforced by reprolint REPRO010: modules under ``repro/ota/fleet`` may
not call the raw numpy allocators or grow per-node Python lists; they
request named buffers from this module instead.

dtypes are deliberate: ``int64`` counters (exact up to 2**53 when later
multiplied into float64 accounting), ``uint64`` for the wrap-around
counter-based RNG lanes, ``int8`` for small enums (outcomes, flash
banks), ``bool_`` for active masks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _check_size(size: int) -> None:
    if size < 0:
        raise ConfigurationError(f"buffer size must be >= 0, got {size}")


def counters_i64(size: int) -> np.ndarray:
    """Zeroed per-node event counters (``int64``)."""
    _check_size(size)
    return np.zeros(size, dtype=np.int64)


def counters_u64(size: int) -> np.ndarray:
    """Zeroed per-node RNG draw counters (``uint64``, wrap-around)."""
    _check_size(size)
    return np.zeros(size, dtype=np.uint64)


def accumulators_f64(size: int) -> np.ndarray:
    """Zeroed per-node float accumulators (``float64``)."""
    _check_size(size)
    return np.zeros(size, dtype=np.float64)


def flags_bool(size: int, fill: bool = False) -> np.ndarray:
    """Per-node boolean flags (active masks, burst-loss state)."""
    _check_size(size)
    return np.full(size, fill, dtype=np.bool_)


def codes_i8(size: int, fill: int = 0) -> np.ndarray:
    """Per-node small-enum codes (outcomes, flash bank status)."""
    _check_size(size)
    return np.full(size, fill, dtype=np.int8)


def full_i64(size: int, fill: int) -> np.ndarray:
    """Per-node ``int64`` counters starting from a common value."""
    _check_size(size)
    return np.full(size, fill, dtype=np.int64)


def node_ids(start: int, stop: int) -> np.ndarray:
    """The contiguous node-id lane ``[start, stop)`` (``int64``).

    Raises:
        ConfigurationError: for a reversed range.
    """
    if stop < start:
        raise ConfigurationError(
            f"node range [{start}, {stop}) is reversed")
    return np.arange(start, stop, dtype=np.int64)
