"""Whole-fleet link precomputation: placements, RSSI, packet PER.

The per-node link budget is static for a campaign (one placement draw,
one shadowing draw per direction), so the fleet engine precomputes the
entire fleet's packet-success probabilities once as flat arrays — the
:class:`FleetLinkPlan` — and the ARQ inner loop reduces to comparing
uniform draws against them.

Shard invariance: the plan is always computed for the *full* fleet from
``SeedSequence([seed, stream])`` draws in a fixed order, then sliced per
shard, so a node's link is identical no matter which shard simulates
it.  Both the vectorized engine and the scalar reference twin consume
the same plan; the parity boundary is the campaign stepping and
accounting, not the link-budget arithmetic.

The PER model is the analytic SX1276 waterfall of
:func:`repro.radio.sx1276.packet_error_probability`, vectorized over
RSSI (``tests/test_fleet_engine.py`` pins the two against each other).
Block fading is deliberately absent — the fleet model draws the
shadowing once per node and holds the link static, trading the legacy
path's per-packet fading draws for a fixed, vectorizable draw budget
per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ota.fleet.config import FleetCampaignConfig
from repro.ota.mac import ACK_BYTES, CONTROL_BYTES, OTA_PREAMBLE_SYMBOLS
from repro.phy.lora.params import LoRaParams
from repro.radio.sx1276 import NOISE_FIGURE_DB
from repro.units import free_space_path_loss_db, noise_floor_dbm

PLACEMENT_STREAM = 0x1E57
"""SeedSequence lane for deployment geometry and shadowing draws."""

FRAGMENT_HEADER_BYTES = 8
"""Data-fragment wire overhead: sequence (4) + CRC (4), as DataPacket."""

REQUEST_ENTRY_BYTES = 6
"""Per-device (id, wake-time) entry in a programming request."""

MIN_RADIUS_M = 30.0
"""Keep-out radius around the AP (no node on the AP's roof)."""

_SER_UNDERFLOW_EXPONENT = -700.0
"""Below this, ``exp`` underflows to a denormal; the SER is zero."""


def fleet_packet_error_probability(params: LoRaParams,
                                   rssi_dbm: np.ndarray,
                                   payload_bytes: int,
                                   preamble_symbols: int =
                                   OTA_PREAMBLE_SYMBOLS) -> np.ndarray:
    """Vectorized :func:`repro.radio.sx1276.packet_error_probability`.

    Same union-bound SER expanded to the packet's effective symbol
    count, evaluated elementwise over an RSSI array.
    """
    rssi = np.asarray(rssi_dbm, dtype=np.float64)
    snr_db = rssi - noise_floor_dbm(params.bandwidth_hz, NOISE_FIGURE_DB)
    n = 2 ** params.spreading_factor
    snr = 10.0 ** (snr_db / 10.0)
    exponent = -n * snr / 2.0
    ser = np.where(
        exponent < _SER_UNDERFLOW_EXPONENT, 0.0,
        np.minimum(1.0, (n - 1) / 2.0
                   * np.exp(np.maximum(exponent, _SER_UNDERFLOW_EXPONENT))))
    symbols = (preamble_symbols + 4.25
               + params.airtime_s(payload_bytes, preamble_symbols)
               / params.symbol_duration_s)
    effective_symbols = max(symbols * 4.0 / params.coding_rate_denominator,
                            1.0)
    per = 1.0 - (1.0 - ser) ** effective_symbols
    return np.minimum(np.maximum(per, 0.0), 1.0)


@dataclass(frozen=True, eq=False)
class FleetLinkPlan:
    """Precomputed full-fleet link table (arrays indexed by node id).

    Attributes:
        distances_m: node-to-AP distances.
        x_m: east offsets from the AP.
        y_m: north offsets from the AP.
        downlink_rssi_dbm: node-side RSSI of AP transmissions.
        uplink_rssi_dbm: AP-side RSSI of node transmissions.
        p_data_full: success probability of a full data fragment.
        p_data_tail: success probability of the tail fragment.
        p_ack: success probability of an uplink ACK.
        air_data_full_s: airtime of a full data fragment.
        air_data_tail_s: airtime of the tail fragment.
        air_ack_s: airtime of an ACK.
        air_request_s: airtime of a single-device programming request.
        air_ready_s: airtime of a ready message.
        air_end_s: airtime of an end-of-update message.
    """

    distances_m: np.ndarray
    x_m: np.ndarray
    y_m: np.ndarray
    downlink_rssi_dbm: np.ndarray
    uplink_rssi_dbm: np.ndarray
    p_data_full: np.ndarray
    p_data_tail: np.ndarray
    p_ack: np.ndarray
    air_data_full_s: float
    air_data_tail_s: float
    air_ack_s: float
    air_request_s: float
    air_ready_s: float
    air_end_s: float


def prepare_links(config: FleetCampaignConfig) -> FleetLinkPlan:
    """Build the full-fleet link table for a campaign configuration.

    Geometry mirrors :func:`repro.testbed.campus_deployment` — uniform
    density over the disk via a square-root radial draw with the 30 m
    keep-out — vectorized over the whole fleet, with one lognormal
    shadowing draw per node per direction.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, PLACEMENT_STREAM]))
    n = config.num_nodes
    radii = MIN_RADIUS_M + (config.max_radius_m - MIN_RADIUS_M) \
        * np.sqrt(rng.random(n))
    angles = rng.random(n) * 2.0 * np.pi
    shadow_down = rng.standard_normal(n) * config.shadowing_sigma_db
    shadow_up = rng.standard_normal(n) * config.shadowing_sigma_db

    reference_loss = free_space_path_loss_db(1.0, config.frequency_hz)
    mean_loss = reference_loss \
        + 10.0 * config.pathloss_exponent * np.log10(radii)
    downlink = (config.ap_tx_power_dbm + config.ap_antenna_gain_dbi
                - (mean_loss + shadow_down))
    uplink = (config.node_tx_power_dbm + config.ap_antenna_gain_dbi
              - (mean_loss + shadow_up))

    params = config.params
    full_wire = FRAGMENT_HEADER_BYTES + config.payload_bytes
    tail_wire = FRAGMENT_HEADER_BYTES + config.tail_payload_bytes
    request_wire = CONTROL_BYTES + REQUEST_ENTRY_BYTES

    plan = FleetLinkPlan(
        distances_m=radii,
        x_m=radii * np.cos(angles),
        y_m=radii * np.sin(angles),
        downlink_rssi_dbm=downlink,
        uplink_rssi_dbm=uplink,
        p_data_full=1.0 - fleet_packet_error_probability(
            params, downlink, full_wire),
        p_data_tail=1.0 - fleet_packet_error_probability(
            params, downlink, tail_wire),
        p_ack=1.0 - fleet_packet_error_probability(
            params, uplink, ACK_BYTES),
        air_data_full_s=params.airtime_s(full_wire, OTA_PREAMBLE_SYMBOLS),
        air_data_tail_s=params.airtime_s(tail_wire, OTA_PREAMBLE_SYMBOLS),
        air_ack_s=params.airtime_s(ACK_BYTES, OTA_PREAMBLE_SYMBOLS),
        air_request_s=params.airtime_s(request_wire, OTA_PREAMBLE_SYMBOLS),
        air_ready_s=params.airtime_s(ACK_BYTES, OTA_PREAMBLE_SYMBOLS),
        air_end_s=params.airtime_s(CONTROL_BYTES, OTA_PREAMBLE_SYMBOLS))
    for array in (plan.distances_m, plan.x_m, plan.y_m,
                  plan.downlink_rssi_dbm, plan.uplink_rssi_dbm,
                  plan.p_data_full, plan.p_data_tail, plan.p_ack):
        array.setflags(write=False)
    return plan
