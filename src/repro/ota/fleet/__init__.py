"""Fleet-scale OTA campaigns: vectorized cohorts, shards, rollups.

The paper's OTA story (section 3.4) is evaluated on a 20-node campus
testbed; an over-the-air *testbed platform* has to reason about fleets
far past what the per-event simulation in :mod:`repro.ota.ap` can
step.  This package is the fleet-scale hot path:

* :mod:`~repro.ota.fleet.buffers` — the one sanctioned allocation site
  for struct-of-arrays cohort state (reprolint REPRO010 enforces it).
* :mod:`~repro.ota.fleet.rng` — counter-based per-node random streams,
  the property that makes shard count irrelevant to results.
* :mod:`~repro.ota.fleet.config` — the frozen campaign description.
* :mod:`~repro.ota.fleet.link` — full-fleet placement/RSSI/PER tables.
* :mod:`~repro.ota.fleet.engine` — the vectorized cohort stepper, its
  bit-exact scalar ``*_reference`` twin, per-node timeline drill-down
  and the bounded-memory JSONL spill.
* :mod:`~repro.ota.fleet.shard` — deterministic partitioning across a
  process pool.
"""

from repro.ota.fleet.config import (
    FleetBurstLoss,
    FleetCampaignConfig,
    LISTEN_PERIOD_S,
)
from repro.ota.fleet.engine import (
    FleetReport,
    OUTCOME_LABELS,
    finalize_fleet,
    run_fleet_campaign,
    run_fleet_campaign_reference,
    simulate_node_timeline,
    write_fleet_spill,
)
from repro.ota.fleet.link import (
    FleetLinkPlan,
    fleet_packet_error_probability,
    prepare_links,
)
from repro.ota.fleet.shard import (
    run_fleet_campaign_sharded,
    shard_ranges,
)

__all__ = [
    "FleetBurstLoss",
    "FleetCampaignConfig",
    "FleetLinkPlan",
    "FleetReport",
    "LISTEN_PERIOD_S",
    "OUTCOME_LABELS",
    "finalize_fleet",
    "fleet_packet_error_probability",
    "prepare_links",
    "run_fleet_campaign",
    "run_fleet_campaign_reference",
    "run_fleet_campaign_sharded",
    "shard_ranges",
    "simulate_node_timeline",
    "write_fleet_spill",
]
