"""Broadcast OTA update MAC (paper section 7, future work).

The paper's deployed protocol programs nodes *sequentially* - simple and
resource-light, but total campaign time scales with the node count.  The
conclusion suggests exploring "modified MAC protocols that simultaneously
broadcast the updates across the network to reduce programming time".

This module implements that protocol so the trade-off can be measured:

1. The AP broadcasts every fragment once (no per-packet ACKs).
2. Nodes track which fragments they missed (per-node packet losses are
   independent draws from each node's link PER).
3. In a NACK phase, each incomplete node reports a missing-fragment
   bitmap in its TDMA slot.
4. The AP rebroadcasts the union of missing fragments, and the cycle
   repeats until every node is complete or the round budget runs out.

Airtime is shared across nodes, so the campaign takes roughly
``one_node_time * (1 + loss_overhead)`` instead of ``N * one_node_time``
- the win the benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OtaError
from repro.ota.blocks import split_and_compress
from repro.ota.mac import (
    DATA_PAYLOAD_BYTES,
    OTA_PREAMBLE_SYMBOLS,
    OtaLink,
    fragment_image,
)
from repro.ota.updater import DECOMPRESS_BANDWIDTH_BPS, NODE_MCU
from repro.phy.lora.params import LoRaParams
from repro.sim import MCU_DECOMPRESS, PACKET_TX, Timeline
from repro.radio.sx1276 import packet_error_probability
from repro.testbed.deployment import Deployment

NACK_SLOT_BYTES = 24
"""A NACK carries the node id plus a compressed missing-fragment bitmap."""

MAX_ROUNDS = 20


@dataclass
class BroadcastNodeState:
    """Per-node reception state across broadcast rounds."""

    node_id: int
    downlink_rssi_dbm: float
    uplink_rssi_dbm: float
    received: set[int] = field(default_factory=set)

    def missing(self, total_fragments: int) -> set[int]:
        """Fragments this node still needs."""
        return set(range(total_fragments)) - self.received


@dataclass(frozen=True)
class BroadcastReport:
    """Outcome of a broadcast campaign.

    Attributes:
        total_time_s: wall-clock campaign duration (shared by all nodes).
        rounds: broadcast+repair rounds used.
        fragments: unique fragments in the image.
        broadcast_packets: total fragment transmissions (incl. repairs).
        nack_packets: NACK transmissions heard by the AP.
        completed_nodes: nodes holding the full image at the end.
        node_count: deployment size.
        per_node_energy_j: node-side energy (radio RX for the whole
            campaign plus NACK TX and decompression).
    """

    total_time_s: float
    rounds: int
    fragments: int
    broadcast_packets: int
    nack_packets: int
    completed_nodes: int
    node_count: int
    per_node_energy_j: float
    timeline: Timeline | None = field(default=None, repr=False,
                                      compare=False)


def simulate_broadcast_campaign(deployment: Deployment, image: bytes,
                                rng: np.random.Generator,
                                params: LoRaParams | None = None,
                                max_rounds: int = MAX_ROUNDS,
                                timeline: Timeline | None = None
                                ) -> BroadcastReport:
    """Push one compressed image to every node via broadcast + NACK repair.

    Fragment broadcasts, NACK slots and the final decompression all land
    as events on ``timeline``; the report's wall-clock total is a replay
    of those advancing events.

    Raises:
        OtaError: if any node remains incomplete after ``max_rounds``.
    """
    from repro.ota.mac import DEFAULT_OTA_PARAMS
    from repro.power import profiles

    if params is None:
        params = DEFAULT_OTA_PARAMS
    blocks = split_and_compress(image)
    wire_image = b"".join(block.header() + block.payload
                          for block in blocks)
    fragments = fragment_image(wire_image)

    nodes = []
    for placement in deployment.nodes:
        nodes.append(BroadcastNodeState(
            node_id=placement.node_id,
            downlink_rssi_dbm=deployment.downlink_rssi_dbm(placement, rng),
            uplink_rssi_dbm=deployment.uplink_rssi_dbm(placement, rng)))

    link = OtaLink(params=params)
    fragment_airtime = link.airtime_s(8 + DATA_PAYLOAD_BYTES)
    nack_airtime = link.airtime_s(NACK_SLOT_BYTES)

    timeline = timeline if timeline is not None else Timeline()
    since = timeline.checkpoint()
    broadcast_packets = 0
    nack_packets = 0
    to_send = list(range(len(fragments)))

    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        # Broadcast phase: every queued fragment goes out once.
        for fragment_index in to_send:
            broadcast_packets += 1
            timeline.record(
                PACKET_TX, "ap_radio",
                label=f"broadcast seq={fragment_index} round={rounds}",
                duration_s=fragment_airtime,
                power_w=profiles.BACKBONE_TX_14DBM_W)
            wire = fragments[fragment_index].wire_bytes
            for node in nodes:
                if fragment_index in node.received:
                    continue
                per = packet_error_probability(
                    params,
                    node.downlink_rssi_dbm + float(rng.normal(0.0, 2.0)),
                    wire, OTA_PREAMBLE_SYMBOLS)
                if rng.random() >= per:
                    node.received.add(fragment_index)
        # NACK phase: incomplete nodes report in their slots.
        missing_union: set[int] = set()
        for node in nodes:
            missing = node.missing(len(fragments))
            if not missing:
                continue
            timeline.record(
                PACKET_TX, "node_radio",
                label=f"nack node={node.node_id} round={rounds}",
                duration_s=nack_airtime,
                power_w=profiles.BACKBONE_TX_14DBM_W)
            nack_packets += 1
            per = packet_error_probability(
                params, node.uplink_rssi_dbm + float(rng.normal(0.0, 2.0)),
                NACK_SLOT_BYTES, OTA_PREAMBLE_SYMBOLS)
            if rng.random() >= per:
                missing_union |= missing
            else:
                # Lost NACK: the AP conservatively re-queues everything
                # this node could be missing next round.
                missing_union |= missing
        if not any(node.missing(len(fragments)) for node in nodes):
            to_send = []
            break
        to_send = sorted(missing_union)
        if not to_send:
            break

    incomplete = [node.node_id for node in nodes
                  if node.missing(len(fragments))]
    if incomplete:
        raise OtaError(
            f"nodes {incomplete} incomplete after {rounds} rounds")

    timeline.record(
        MCU_DECOMPRESS, NODE_MCU,
        label=f"{len(image)} bytes",
        duration_s=len(image) * 8 / DECOMPRESS_BANDWIDTH_BPS,
        power_w=profiles.MCU_ACTIVE_W)
    total_time = timeline.time_s(since=since, advancing_only=True)
    per_node_energy = (total_time * profiles.BACKBONE_RX_W
                       + rounds * nack_airtime * profiles.BACKBONE_TX_14DBM_W
                       + total_time * profiles.MCU_ACTIVE_W)
    return BroadcastReport(
        total_time_s=total_time,
        rounds=rounds,
        fragments=len(fragments),
        broadcast_packets=broadcast_packets,
        nack_packets=nack_packets,
        completed_nodes=len(nodes) - len(incomplete),
        node_count=len(nodes),
        per_node_energy_j=per_node_energy,
        timeline=timeline)
