"""End-to-end OTA update session.

Composes the whole paper-section-3.4 pipeline: the AP compresses the
image into 30 kB blocks; the MAC transfers them over the backbone LoRa
link with ACK/retransmit; the node stages compressed data in flash,
decompresses block by block inside its SRAM budget, writes the boot
image back to flash, and reconfigures the FPGA over quad SPI.  The
session report carries the time and energy splits the paper's section
5.3 evaluation quotes (programming time CDF, 6144 mJ per LoRa update,
450 ms decompression, 22 ms reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OtaError
from repro.fpga.config import NODE_FPGA, FpgaConfigurator
from repro.mcu.msp432 import NODE_MCU, Msp432
from repro.ota.blocks import (
    BLOCK_BYTES,
    reassemble,
    split_and_compress,
    total_compressed_bytes,
)
from repro.ota.flash import FlashLayout, Mx25R6435F
from repro.ota.mac import (
    NODE_RADIO,
    OtaLink,
    TransferReport,
    simulate_transfer,
)
from repro.power import profiles
from repro.sim import (
    CONTROL_RX,
    CONTROL_TX,
    FLASH_BUSY,
    FPGA_CONFIG,
    MCU_DECOMPRESS,
    PACKET_RX,
    PACKET_TIMEOUT,
    PACKET_TX,
    Timeline,
)

DECOMPRESS_BANDWIDTH_BPS = 1.35e6 * 8
"""MSP432 miniLZO throughput, calibrated so a full 579 kB image
decompresses in the paper's 'maximum of 450 ms'."""

NODE_FLASH = "flash"
"""Timeline component name for the node's external NOR flash."""


@dataclass(frozen=True)
class UpdateReport:
    """Everything one OTA session cost.

    All time and energy fields are views derived from the session's
    :class:`~repro.sim.Timeline` ledger (see
    :func:`node_energy_from_timeline`), not hand-kept accumulators.

    Attributes:
        transfer: the MAC-level transfer report.
        compressed_bytes: bytes sent over the air.
        raw_bytes: size of the installed image.
        decompress_time_s: node-side block decompression time.
        reconfigure_time_s: FPGA quad-SPI boot time (0 for MCU images).
        total_time_s: wall-clock session duration.
        node_energy_j: node-side energy (backbone radio + MCU + flash).
        timeline: the ledger the session was recorded on.
    """

    transfer: TransferReport
    compressed_bytes: int
    raw_bytes: int
    decompress_time_s: float
    reconfigure_time_s: float
    total_time_s: float
    node_energy_j: float
    timeline: Timeline | None = field(default=None, repr=False,
                                      compare=False)


def node_energy_from_timeline(timeline: Timeline, since: int = 0,
                              component: str = NODE_RADIO) -> float:
    """Node-side session energy, derived entirely from the ledger.

    Combines the radio receive/transmit dwells, the MCU-active time
    (radio handling plus decompression) and the flash activity recorded
    after ``since`` with the :mod:`repro.power.profiles` draw constants.
    Each per-phase dwell is replayed from the ledger in append order, so
    the result is bit-identical to the sequential accounting this
    replaced.
    """
    rx_time = timeline.time_s(kinds={PACKET_RX, PACKET_TIMEOUT},
                              component=component, since=since)
    rx_time = rx_time + timeline.time_s(kinds={CONTROL_RX},
                                        component=component, since=since)
    tx_time = timeline.time_s(kinds={PACKET_TX}, component=component,
                              since=since)
    tx_time = tx_time + timeline.time_s(kinds={CONTROL_TX},
                                        component=component, since=since)
    decompress_time = timeline.time_s(kinds={MCU_DECOMPRESS}, since=since)
    flash_energy = timeline.energy_j(kinds={FLASH_BUSY}, since=since)
    rx = rx_time * profiles.BACKBONE_RX_W
    tx = tx_time * profiles.BACKBONE_TX_14DBM_W
    mcu = (rx_time + tx_time + decompress_time) * profiles.MCU_ACTIVE_W
    return rx + tx + mcu + flash_energy


class OtaUpdater:
    """Drives complete update sessions against a node model."""

    def __init__(self, flash: Mx25R6435F | None = None,
                 mcu: Msp432 | None = None,
                 layout: FlashLayout | None = None) -> None:
        self.flash = flash or Mx25R6435F()
        self.mcu = mcu or Msp432()
        self.layout = layout or FlashLayout()
        self.configurator = FpgaConfigurator()

    def update(self, image: bytes, link: OtaLink,
               rng: np.random.Generator,
               is_fpga_image: bool = True,
               block_bytes: int = BLOCK_BYTES,
               timeline: Timeline | None = None) -> UpdateReport:
        """Run one full OTA session.

        Args:
            image: the raw firmware image (bitstream or MCU program).
            link: backbone link conditions.
            rng: randomness source for packet outcomes.
            is_fpga_image: FPGA images end with a quad-SPI reconfigure;
                MCU images end with a self-flash and reboot.
            block_bytes: compression block size.
            timeline: ledger the session is recorded on (a fresh one
                when not supplied).

        Raises:
            OtaError: if the transfer aborts or the installed image does
                not verify against the original.
        """
        timeline = timeline if timeline is not None else Timeline()
        since = timeline.checkpoint()
        session_start_s = timeline.now_s
        blocks = split_and_compress(image, block_bytes)
        wire_image = b"".join(block.header() + block.payload
                              for block in blocks)
        compressed_bytes = total_compressed_bytes(blocks)
        stats_before = self.flash.stats()

        transfer = simulate_transfer(wire_image, link, rng,
                                     timeline=timeline)
        if transfer.failed:
            raise OtaError(
                f"transfer aborted after {transfer.packets_sent} packets: "
                f"{transfer.events[-1] if transfer.events else 'unknown'}")

        # Stage compressed data, then decompress block by block through
        # the SRAM-bounded pipeline and install the boot image.
        self.flash.write(self.layout.staging_offset, wire_image)
        recovered = reassemble(blocks, sram=self.mcu.sram)
        if recovered != image:
            raise OtaError("decompressed image does not match the original")
        target = (self.layout.boot_offset if is_fpga_image
                  else self.layout.mcu_offset)
        self.flash.write(target, recovered)

        timeline.record(
            MCU_DECOMPRESS, NODE_MCU,
            label=f"{len(blocks)} blocks, {len(image)} bytes",
            duration_s=len(image) * 8 / DECOMPRESS_BANDWIDTH_BPS,
            power_w=profiles.MCU_ACTIVE_W)
        if is_fpga_image:
            timeline.record(
                FPGA_CONFIG, NODE_FPGA, label="quad-SPI boot",
                duration_s=self.configurator.program(
                    self.flash.read(target, len(image))),
                power_w=profiles.FPGA_STATIC_W)

        stats_after = self.flash.stats()
        # Flash erase/program runs concurrently with the (far slower)
        # radio transfer - the paper writes each packet to flash as it
        # arrives - so flash busy time contributes energy but not
        # wall-clock time: a non-advancing event carrying the measured
        # energy delta.
        timeline.record(
            FLASH_BUSY, NODE_FLASH, label="stage + install",
            duration_s=stats_after.busy_time_s - stats_before.busy_time_s,
            energy_override_j=stats_after.energy_j - stats_before.energy_j,
            advance=False, t_start_s=session_start_s)
        return UpdateReport(
            transfer=transfer,
            compressed_bytes=compressed_bytes,
            raw_bytes=len(image),
            decompress_time_s=timeline.time_s(kinds={MCU_DECOMPRESS},
                                              since=since),
            reconfigure_time_s=timeline.time_s(kinds={FPGA_CONFIG},
                                               since=since),
            total_time_s=timeline.time_s(since=since, advancing_only=True),
            node_energy_j=node_energy_from_timeline(timeline, since=since),
            timeline=timeline)
