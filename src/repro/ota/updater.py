"""End-to-end OTA update session.

Composes the whole paper-section-3.4 pipeline: the AP compresses the
image into 30 kB blocks; the MAC transfers them over the backbone LoRa
link with ACK/retransmit; the node stages compressed data in flash,
decompresses block by block inside its SRAM budget, writes the boot
image back to flash, and reconfigures the FPGA over quad SPI.  The
session report carries the time and energy splits the paper's section
5.3 evaluation quotes (programming time CDF, 6144 mJ per LoRa update,
450 ms decompression, 22 ms reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OtaError
from repro.fpga.config import FpgaConfigurator
from repro.mcu.msp432 import Msp432
from repro.ota.blocks import (
    BLOCK_BYTES,
    reassemble,
    split_and_compress,
    total_compressed_bytes,
)
from repro.ota.flash import FlashLayout, Mx25R6435F
from repro.ota.mac import OtaLink, TransferReport, simulate_transfer
from repro.power import profiles

DECOMPRESS_BANDWIDTH_BPS = 1.35e6 * 8
"""MSP432 miniLZO throughput, calibrated so a full 579 kB image
decompresses in the paper's 'maximum of 450 ms'."""


@dataclass(frozen=True)
class UpdateReport:
    """Everything one OTA session cost.

    Attributes:
        transfer: the MAC-level transfer report.
        compressed_bytes: bytes sent over the air.
        raw_bytes: size of the installed image.
        decompress_time_s: node-side block decompression time.
        reconfigure_time_s: FPGA quad-SPI boot time (0 for MCU images).
        total_time_s: wall-clock session duration.
        node_energy_j: node-side energy (backbone radio + MCU + flash).
    """

    transfer: TransferReport
    compressed_bytes: int
    raw_bytes: int
    decompress_time_s: float
    reconfigure_time_s: float
    total_time_s: float
    node_energy_j: float


class OtaUpdater:
    """Drives complete update sessions against a node model."""

    def __init__(self, flash: Mx25R6435F | None = None,
                 mcu: Msp432 | None = None,
                 layout: FlashLayout | None = None) -> None:
        self.flash = flash or Mx25R6435F()
        self.mcu = mcu or Msp432()
        self.layout = layout or FlashLayout()
        self.configurator = FpgaConfigurator()

    def update(self, image: bytes, link: OtaLink,
               rng: np.random.Generator,
               is_fpga_image: bool = True,
               block_bytes: int = BLOCK_BYTES) -> UpdateReport:
        """Run one full OTA session.

        Args:
            image: the raw firmware image (bitstream or MCU program).
            link: backbone link conditions.
            rng: randomness source for packet outcomes.
            is_fpga_image: FPGA images end with a quad-SPI reconfigure;
                MCU images end with a self-flash and reboot.
            block_bytes: compression block size.

        Raises:
            OtaError: if the transfer aborts or the installed image does
                not verify against the original.
        """
        blocks = split_and_compress(image, block_bytes)
        wire_image = b"".join(block.header() + block.payload
                              for block in blocks)
        compressed_bytes = total_compressed_bytes(blocks)
        stats_before = self.flash.stats()

        transfer = simulate_transfer(wire_image, link, rng)
        if transfer.failed:
            raise OtaError(
                f"transfer aborted after {transfer.packets_sent} packets: "
                f"{transfer.events[-1] if transfer.events else 'unknown'}")

        # Stage compressed data, then decompress block by block through
        # the SRAM-bounded pipeline and install the boot image.
        self.flash.write(self.layout.staging_offset, wire_image)
        recovered = reassemble(blocks, sram=self.mcu.sram)
        if recovered != image:
            raise OtaError("decompressed image does not match the original")
        target = (self.layout.boot_offset if is_fpga_image
                  else self.layout.mcu_offset)
        self.flash.write(target, recovered)

        decompress_time = len(image) * 8 / DECOMPRESS_BANDWIDTH_BPS
        reconfigure_time = 0.0
        if is_fpga_image:
            reconfigure_time = self.configurator.program(
                self.flash.read(target, len(image)))

        stats_after = self.flash.stats()
        flash_energy = stats_after.energy_j - stats_before.energy_j
        # Flash erase/program runs concurrently with the (far slower)
        # radio transfer - the paper writes each packet to flash as it
        # arrives - so flash busy time contributes energy but not
        # wall-clock time.
        total_time = transfer.duration_s + decompress_time + reconfigure_time
        energy = self._node_energy_j(transfer, decompress_time, flash_energy)
        return UpdateReport(
            transfer=transfer,
            compressed_bytes=compressed_bytes,
            raw_bytes=len(image),
            decompress_time_s=decompress_time,
            reconfigure_time_s=reconfigure_time,
            total_time_s=total_time,
            node_energy_j=energy)

    @staticmethod
    def _node_energy_j(transfer: TransferReport, decompress_time_s: float,
                       flash_energy_j: float) -> float:
        """Node-side energy: backbone radio, MCU and flash."""
        rx = transfer.node_rx_time_s * profiles.BACKBONE_RX_W
        tx = transfer.node_tx_time_s * profiles.BACKBONE_TX_14DBM_W
        mcu = ((transfer.node_rx_time_s + transfer.node_tx_time_s
                + decompress_time_s) * profiles.MCU_ACTIVE_W)
        return rx + tx + mcu + flash_energy_j
