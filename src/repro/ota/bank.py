"""Dual-bank firmware storage with a golden image and rollback.

The 8 MB MX25R6435F leaves "far more than the size required" for one
bitstream, so the hardened updater partitions it A/B-style: a write-once
*golden* image the node can always fall back to, two update banks that
alternate as install targets, a staging area for in-flight compressed
data, and a metadata sector holding the append-only resume-checkpoint
log.  Every image carries a 16-byte trailer record (magic, id, length,
CRC-32) at the end of its slot; the boot path CRC-verifies the candidate
bank against its trailer before switching, and rolls back to golden on
any mismatch - a node never boots an image that fails verification.

The checkpoint log exploits NOR semantics: records are *programmed*
into erased cells without erasing the sector first, so appending a
checkpoint costs one page program, not a 40 ms sector erase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, FlashError, RollbackError
from repro.ota.flash import SECTOR_BYTES, Mx25R6435F
from repro.ota.mac import crc32
from repro.sim import OTA_CHECKPOINT, OTA_ROLLBACK, OTA_VERIFY, Timeline

GOLDEN_OFFSET = 0x000000
"""Write-once factory image slot: the rollback target."""

BANK_A_OFFSET = 0x100000
BANK_B_OFFSET = 0x200000
STAGING_OFFSET = 0x300000
"""Where in-flight compressed OTA data lands as fragments arrive."""

SLOT_BYTES = 0x100000
"""Size reserved per firmware slot (image + 16-byte trailer)."""

METADATA_OFFSET = 0x7FF000
"""Last 4 kB sector: the append-only checkpoint log."""

RECORD_MAGIC = 0x494D4731
"""``"IMG1"`` - marks a valid image trailer record."""

RECORD_BYTES = 16
CHECKPOINT_RECORD_BYTES = 12

FLASH_COMPONENT = "flash"


@dataclass(frozen=True)
class DualBankLayout:
    """The hardened flash map (offsets are module constants above)."""

    golden_offset: int = GOLDEN_OFFSET
    bank_a_offset: int = BANK_A_OFFSET
    bank_b_offset: int = BANK_B_OFFSET
    staging_offset: int = STAGING_OFFSET
    slot_bytes: int = SLOT_BYTES
    metadata_offset: int = METADATA_OFFSET

    def bank_offset(self, bank: str) -> int:
        """Slot base address for a bank name.

        Raises:
            ConfigurationError: for unknown bank names.
        """
        offsets = {"golden": self.golden_offset, "a": self.bank_a_offset,
                   "b": self.bank_b_offset}
        if bank not in offsets:
            raise ConfigurationError(f"unknown bank {bank!r}")
        return offsets[bank]

    @property
    def max_image_bytes(self) -> int:
        """Largest image a slot can hold next to its trailer."""
        return self.slot_bytes - RECORD_BYTES


@dataclass(frozen=True)
class ImageRecord:
    """The 16-byte trailer at the end of a firmware slot.

    Attributes:
        image_id: campaign-assigned firmware identifier.
        length: installed image size in bytes.
        crc: CRC-32 over the image bytes.
    """

    image_id: int
    length: int
    crc: int

    def to_bytes(self) -> bytes:
        """Serialize: magic (4) + id (4) + length (4) + CRC (4)."""
        return (RECORD_MAGIC.to_bytes(4, "big")
                + self.image_id.to_bytes(4, "big")
                + self.length.to_bytes(4, "big")
                + self.crc.to_bytes(4, "big"))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ImageRecord | None":
        """Parse a trailer; ``None`` for erased or non-magic bytes."""
        if len(raw) != RECORD_BYTES \
                or int.from_bytes(raw[0:4], "big") != RECORD_MAGIC:
            return None
        return cls(image_id=int.from_bytes(raw[4:8], "big"),
                   length=int.from_bytes(raw[8:12], "big"),
                   crc=int.from_bytes(raw[12:16], "big"))


@dataclass(frozen=True)
class Checkpoint:
    """One resume-progress record in the metadata log.

    Attributes:
        image_id: which transfer the checkpoint belongs to.
        next_sequence: first data-packet sequence still outstanding.
    """

    image_id: int
    next_sequence: int

    def to_bytes(self) -> bytes:
        """Serialize: id (4) + next seq (4) + CRC-32 over both (4)."""
        body = (self.image_id.to_bytes(4, "big")
                + self.next_sequence.to_bytes(4, "big"))
        return body + crc32(body).to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Checkpoint | None":
        """Parse a record; ``None`` for erased or CRC-failing bytes."""
        if len(raw) != CHECKPOINT_RECORD_BYTES or raw == b"\xff" * len(raw):
            return None
        if int.from_bytes(raw[8:12], "big") != crc32(raw[0:8]):
            return None
        return cls(image_id=int.from_bytes(raw[0:4], "big"),
                   next_sequence=int.from_bytes(raw[4:8], "big"))


class CheckpointLog:
    """Append-only progress log in the flash metadata sector.

    Surviving a brownout is the whole point: the log lives in flash, so
    a rebooted node reads its last acknowledged sequence number back
    from the array rather than from (lost) RAM.
    """

    def __init__(self, flash: Mx25R6435F,
                 offset: int = METADATA_OFFSET) -> None:
        if offset % SECTOR_BYTES:
            raise ConfigurationError(
                f"checkpoint log offset {offset:#x} must be sector-aligned")
        self.flash = flash
        self.offset = offset
        self.capacity = SECTOR_BYTES // CHECKPOINT_RECORD_BYTES

    def _slot_address(self, slot: int) -> int:
        return self.offset + slot * CHECKPOINT_RECORD_BYTES

    def _next_free_slot(self) -> int | None:
        erased = b"\xff" * CHECKPOINT_RECORD_BYTES
        for slot in range(self.capacity):
            raw = self.flash.read(self._slot_address(slot),
                                  CHECKPOINT_RECORD_BYTES)
            if raw == erased:
                return slot
        return None

    def append(self, checkpoint: Checkpoint,
               max_attempts: int = 8) -> None:
        """Program one record into the next erased slot, verified.

        A full log is compacted by erasing the sector first - the only
        erase this log ever issues.  Each write is read back: a record
        the flash dropped or mangled (injected page faults) is retried
        in a fresh program operation, so :meth:`latest` never returns a
        stale resume point just because one program silently failed.

        Raises:
            FlashError: when ``max_attempts`` rounds all failed to
                persist a parseable record.
        """
        payload = checkpoint.to_bytes()
        for _ in range(max_attempts):
            slot = self._next_free_slot()
            if slot is None:
                self.flash.erase_sector(self.offset)
                slot = 0
            address = self._slot_address(slot)
            self.flash.program(address, payload)
            written = self.flash.read(address, CHECKPOINT_RECORD_BYTES)
            if Checkpoint.from_bytes(written) == checkpoint:
                return
        raise FlashError(
            f"checkpoint record failed to persist after {max_attempts} "
            "program attempts")

    def latest(self, image_id: int | None = None) -> Checkpoint | None:
        """The most recent valid record (optionally for one image)."""
        found: Checkpoint | None = None
        for slot in range(self.capacity):
            raw = self.flash.read(self._slot_address(slot),
                                  CHECKPOINT_RECORD_BYTES)
            record = Checkpoint.from_bytes(raw)
            if record is None:
                continue
            if image_id is None or record.image_id == image_id:
                found = record
        return found

    def clear(self) -> None:
        """Erase the log (a completed transfer discards its progress)."""
        self.flash.erase_sector(self.offset)


@dataclass(frozen=True)
class BootResult:
    """What the node actually booted after an update attempt.

    Attributes:
        bank: the bank the node is running from.
        image_id: the trailer id of the booted image.
        rolled_back: the candidate failed verification and the node fell
            back to the golden image.
    """

    bank: str
    image_id: int
    rolled_back: bool


class FirmwareBanks:
    """Verified install and boot over the dual-bank layout."""

    def __init__(self, flash: Mx25R6435F | None = None,
                 layout: DualBankLayout | None = None,
                 timeline: Timeline | None = None,
                 max_program_retries: int = 3) -> None:
        if max_program_retries < 0:
            raise ConfigurationError(
                f"max_program_retries must be >= 0, "
                f"got {max_program_retries}")
        self.flash = flash if flash is not None else Mx25R6435F()
        self.layout = layout if layout is not None else DualBankLayout()
        self.timeline = timeline
        self.max_program_retries = max_program_retries
        self.checkpoints = CheckpointLog(self.flash,
                                         self.layout.metadata_offset)
        self.active_bank = "golden"
        self._pending_bank: str | None = None

    def _record(self, kind: str, label: str) -> None:
        if self.timeline is not None:
            self.timeline.record(kind, FLASH_COMPONENT, label=label)

    # -- slot IO -----------------------------------------------------------

    def _trailer_address(self, bank: str) -> int:
        return (self.layout.bank_offset(bank) + self.layout.slot_bytes
                - RECORD_BYTES)

    def read_record(self, bank: str) -> ImageRecord | None:
        """The slot's trailer, or ``None`` when empty/corrupt."""
        raw = self.flash.read(self._trailer_address(bank), RECORD_BYTES)
        return ImageRecord.from_bytes(raw)

    def read_image(self, bank: str) -> bytes | None:
        """The installed image bytes, per the slot trailer."""
        record = self.read_record(bank)
        if record is None or record.length > self.layout.max_image_bytes:
            return None
        return self.flash.read(self.layout.bank_offset(bank), record.length)

    def inactive_bank(self) -> str:
        """The update bank the next install should target."""
        return "b" if self.active_bank == "a" else "a"

    def _program_slot(self, bank: str, image: bytes,
                      record: ImageRecord) -> bool:
        """One erase + program + read-back round; True when it verifies."""
        base = self.layout.bank_offset(bank)
        self.flash.erase_range(base, self.layout.slot_bytes)
        self.flash.program(base, image)
        self.flash.program(self._trailer_address(bank), record.to_bytes())
        readback = self.flash.read(base, len(image))
        trailer = self.read_record(bank)
        return readback == image and trailer == record

    def install(self, image: bytes, image_id: int,
                bank: str | None = None) -> str:
        """Install an image into a bank with read-back verification.

        Programs the slot, reads it back, and re-erases/re-programs up
        to ``max_program_retries`` extra rounds when the array contents
        do not match (failed page programs, stuck bits).  The installed
        bank becomes the boot candidate.

        When every round fails the image is left in place anyway - the
        trailer is programmed, so the *boot-time* CRC check is the
        authority that catches it and rolls back to golden, exactly as
        on real hardware where a program op can report success while the
        cells did not take.

        Returns:
            The bank the image landed in.

        Raises:
            ConfigurationError: when the image does not fit a slot.
        """
        if not image:
            raise ConfigurationError("cannot install an empty image")
        if len(image) > self.layout.max_image_bytes:
            raise ConfigurationError(
                f"image of {len(image)} bytes exceeds the "
                f"{self.layout.max_image_bytes}-byte slot")
        target = bank if bank is not None else self.inactive_bank()
        record = ImageRecord(image_id=image_id, length=len(image),
                             crc=crc32(image))
        for round_ in range(1 + self.max_program_retries):
            if self._program_slot(target, image, record):
                self._record(OTA_VERIFY,
                             f"bank {target} verified after "
                             f"{round_ + 1} program round(s)")
                if target != "golden":
                    self._pending_bank = target
                return target
            self._record(OTA_VERIFY,
                         f"bank {target} read-back mismatch "
                         f"(round {round_ + 1})")
        if target != "golden":
            self._pending_bank = target
        return target

    def install_golden(self, image: bytes, image_id: int = 0) -> None:
        """Provision the factory fallback image."""
        self.install(image, image_id, bank="golden")

    def verify(self, bank: str) -> bool:
        """CRC-check a bank's contents against its trailer."""
        record = self.read_record(bank)
        if record is None or record.length > self.layout.max_image_bytes \
                or record.length == 0:
            self._record(OTA_VERIFY, f"bank {bank} has no valid trailer")
            return False
        image = self.flash.read(self.layout.bank_offset(bank), record.length)
        ok = crc32(image) == record.crc
        self._record(OTA_VERIFY,
                     f"bank {bank} CRC {'ok' if ok else 'MISMATCH'}")
        return ok

    def boot(self) -> BootResult:
        """Verify-then-boot: the candidate bank, or golden on mismatch.

        Raises:
            RollbackError: both the candidate and the golden image fail
                verification - the node is unrecoverable over the air.
        """
        candidate = (self._pending_bank if self._pending_bank is not None
                     else self.active_bank)
        if candidate != "golden" and self.verify(candidate):
            self.active_bank = candidate
            self._pending_bank = None
            record = self.read_record(candidate)
            return BootResult(bank=candidate, image_id=record.image_id,
                              rolled_back=False)
        rolled_back = candidate != "golden"
        if rolled_back:
            self._record(OTA_ROLLBACK,
                         f"bank {candidate} failed verify; booting golden")
        if not self.verify("golden"):
            raise RollbackError(
                f"candidate bank {candidate!r} and the golden image both "
                "fail CRC verification")
        self.active_bank = "golden"
        self._pending_bank = None
        record = self.read_record("golden")
        return BootResult(bank="golden", image_id=record.image_id,
                          rolled_back=rolled_back)

    # -- resume checkpoints ------------------------------------------------

    def checkpoint(self, image_id: int, next_sequence: int) -> None:
        """Persist transfer progress; emits an ``ota.checkpoint`` marker."""
        self.checkpoints.append(Checkpoint(image_id=image_id,
                                           next_sequence=next_sequence))
        self._record(OTA_CHECKPOINT,
                     f"image {image_id} next_seq={next_sequence}")

    def resume_point(self, image_id: int) -> int:
        """First outstanding sequence number for ``image_id`` (0 if none)."""
        record = self.checkpoints.latest(image_id)
        return record.next_sequence if record is not None else 0
