"""MX25R6435F flash memory model (paper section 3.1.2).

The 8 MB SPI flash stores FPGA bitstreams and MCU programs - "far more
than the size required", so a node can keep multiple firmware images and
switch protocols without re-downloading.  The model enforces NOR-flash
semantics (erase-before-write at 4 kB sector granularity, bits only
program 1 -> 0) because the OTA updater's flash layout depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, FlashError

CAPACITY_BYTES = 8 * 1024 * 1024
SECTOR_BYTES = 4096
PAGE_BYTES = 256

READ_BANDWIDTH_BPS = 8_000_000 * 8
"""SPI read throughput at the 80 MHz-class clock, bits per second."""

PAGE_PROGRAM_TIME_S = 0.9e-3
SECTOR_ERASE_TIME_S = 40e-3

ACTIVE_READ_POWER_W = 0.015
PROGRAM_POWER_W = 0.030
STANDBY_POWER_W = 0.2e-6 * 1.8


@dataclass(frozen=True)
class FlashStats:
    """Cumulative access statistics for timing/energy accounting.

    Timing charges whole page-program *operations*: the device takes
    ``PAGE_PROGRAM_TIME_S`` per page program regardless of how few bytes
    the operation writes, so a 1-byte program costs a full page time
    (the old ``bytes_programmed / PAGE_BYTES`` ratio undercounted it to
    nearly zero).
    """

    bytes_read: int
    bytes_programmed: int
    page_programs: int
    sectors_erased: int

    @property
    def busy_time_s(self) -> float:
        """Total time spent on flash operations."""
        read = self.bytes_read * 8 / READ_BANDWIDTH_BPS
        program = self.page_programs * PAGE_PROGRAM_TIME_S
        erase = self.sectors_erased * SECTOR_ERASE_TIME_S
        return read + program + erase

    @property
    def energy_j(self) -> float:
        """Energy of the logged operations."""
        read = self.bytes_read * 8 / READ_BANDWIDTH_BPS * ACTIVE_READ_POWER_W
        program = self.page_programs * PAGE_PROGRAM_TIME_S * PROGRAM_POWER_W
        erase = self.sectors_erased * SECTOR_ERASE_TIME_S * PROGRAM_POWER_W
        return read + program + erase


class Mx25R6435F:
    """NOR flash with erase-before-write semantics."""

    def __init__(self, capacity_bytes: int = CAPACITY_BYTES) -> None:
        if capacity_bytes % SECTOR_BYTES:
            raise ConfigurationError(
                f"capacity must be a multiple of the {SECTOR_BYTES}-byte "
                f"sector size, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._data = bytearray(b"\xff" * capacity_bytes)
        self._bytes_read = 0
        self._bytes_programmed = 0
        self._page_programs = 0
        self._sectors_erased = 0

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.capacity_bytes:
            raise FlashError(
                f"access [{address}, {address + length}) outside the "
                f"{self.capacity_bytes}-byte array")

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check_range(address, length)
        self._bytes_read += length
        return bytes(self._data[address:address + length])

    def erase_sector(self, address: int) -> None:
        """Erase the 4 kB sector containing ``address`` (all bytes to 0xFF).

        Raises:
            FlashError: for out-of-range or unaligned addresses.
        """
        if address % SECTOR_BYTES:
            raise FlashError(
                f"sector erase address {address:#x} is not "
                f"{SECTOR_BYTES}-byte aligned")
        self._check_range(address, SECTOR_BYTES)
        self._data[address:address + SECTOR_BYTES] = b"\xff" * SECTOR_BYTES
        self._sectors_erased += 1

    def erase_range(self, address: int, length: int) -> None:
        """Erase every sector overlapping ``[address, address + length)``."""
        self._check_range(address, length)
        first = (address // SECTOR_BYTES) * SECTOR_BYTES
        last = address + length
        for sector in range(first, last, SECTOR_BYTES):
            self.erase_sector(sector)

    def program(self, address: int, data: bytes) -> None:
        """Program bytes (NOR semantics: can only clear bits).

        Raises:
            FlashError: when writing to a location that is not erased
                (would need 0 -> 1 transitions).
        """
        self._check_range(address, len(data))
        # Validate the whole range before touching the array, so an
        # illegal write is rejected atomically rather than leaving a
        # partial program behind.
        for offset, byte in enumerate(data):
            current = self._data[address + offset]
            if byte & ~current:
                raise FlashError(
                    f"programming {byte:#04x} over {current:#04x} at "
                    f"{address + offset:#x} requires an erase first")
        for offset, byte in enumerate(data):
            self._data[address + offset] &= byte
        self._bytes_programmed += len(data)
        self._page_programs += self.page_span(address, len(data))

    def write(self, address: int, data: bytes) -> None:
        """Convenience: erase the covered range, then program."""
        self.erase_range(address, len(data))
        self.program(address, data)

    @staticmethod
    def page_span(address: int, length: int) -> int:
        """Number of page-program operations a write issues.

        The device programs at most one page per operation, so a write
        costs one operation per page it touches - a single byte is a
        whole page program.
        """
        if length <= 0:
            return 0
        first = address // PAGE_BYTES
        last = (address + length - 1) // PAGE_BYTES
        return last - first + 1

    def stats(self) -> FlashStats:
        """Snapshot of cumulative access statistics."""
        return FlashStats(bytes_read=self._bytes_read,
                          bytes_programmed=self._bytes_programmed,
                          page_programs=self._page_programs,
                          sectors_erased=self._sectors_erased)


@dataclass(frozen=True)
class FlashLayout:
    """TinySDR's firmware storage map inside the 8 MB array.

    Attributes:
        staging_offset: where compressed OTA blocks land as they arrive.
        boot_offset: where the decompressed FPGA bitstream lives (the
            address quad-SPI configuration reads from).
        mcu_offset: where the decompressed MCU program lives.
        slot_bytes: size reserved per firmware slot.
    """

    staging_offset: int = 0x000000
    boot_offset: int = 0x100000
    mcu_offset: int = 0x200000
    slot_bytes: int = 0x100000

    def slot_address(self, base: int, slot: int) -> int:
        """Address of a numbered firmware slot.

        Raises:
            ConfigurationError: for negative slots.
        """
        if slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {slot}")
        return base + slot * self.slot_bytes
