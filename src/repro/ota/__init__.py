"""Over-the-air programming: compression, flash, MAC and the updater."""

from repro.ota.ap import AccessPoint, CampaignTimeline, NodeSession
from repro.ota.blocks import (
    BLOCK_BYTES,
    CompressedBlock,
    compression_summary,
    reassemble,
    split_and_compress,
    total_compressed_bytes,
)
from repro.ota.flash import (
    FlashLayout,
    FlashStats,
    Mx25R6435F,
    PAGE_BYTES,
    SECTOR_BYTES,
)
from repro.ota.broadcast import BroadcastReport, simulate_broadcast_campaign
from repro.ota.mac import (
    Ack,
    DATA_PAYLOAD_BYTES,
    DEFAULT_OTA_PARAMS,
    DataPacket,
    EndOfUpdate,
    OTA_PREAMBLE_SYMBOLS,
    OtaLink,
    ProgrammingRequest,
    ReadyMessage,
    TransferReport,
    fragment_image,
    reassemble_image,
    simulate_transfer,
)
from repro.ota.minilzo import compress, compression_ratio, decompress
from repro.ota.updater import (
    DECOMPRESS_BANDWIDTH_BPS,
    OtaUpdater,
    UpdateReport,
)

__all__ = [
    "AccessPoint",
    "Ack",
    "BroadcastReport",
    "CampaignTimeline",
    "NodeSession",
    "simulate_broadcast_campaign",
    "BLOCK_BYTES",
    "CompressedBlock",
    "DATA_PAYLOAD_BYTES",
    "DECOMPRESS_BANDWIDTH_BPS",
    "DEFAULT_OTA_PARAMS",
    "DataPacket",
    "EndOfUpdate",
    "FlashLayout",
    "FlashStats",
    "Mx25R6435F",
    "OTA_PREAMBLE_SYMBOLS",
    "OtaLink",
    "OtaUpdater",
    "PAGE_BYTES",
    "ProgrammingRequest",
    "ReadyMessage",
    "SECTOR_BYTES",
    "TransferReport",
    "UpdateReport",
    "compress",
    "compression_ratio",
    "compression_summary",
    "decompress",
    "fragment_image",
    "reassemble_image",
    "simulate_transfer",
    "split_and_compress",
    "total_compressed_bytes",
]
