"""Access-point-side OTA orchestration (paper section 3.4).

The node-side protocol lives in :mod:`repro.ota.mac`; this module is the
AP's view of a whole campaign: "the AP sends a programming request as a
LoRa packet with specific device IDs indicating the nodes to be
programmed along with the time they should wake up to receive the
update" - then works through the nodes sequentially, retrying nodes
whose sessions fail, against each node's periodic listen window.

The scheduler is deterministic (built on
:class:`repro.mcu.scheduler.EventScheduler` semantics but simple enough
to run inline), so campaign timelines are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, OtaError
from repro.ota.mac import OtaLink, ProgrammingRequest
from repro.ota.updater import OtaUpdater, UpdateReport
from repro.testbed.deployment import Deployment

LISTEN_PERIOD_S = 60.0
"""Nodes 'periodically turn off the FPGA and switch ... to the backbone
radio to listen for new firmware updates' - this is that period."""

LISTEN_WINDOW_S = 2.0
"""How long each listen window stays open."""


@dataclass
class NodeSession:
    """One node's scheduled programming slot and its outcome.

    Attributes:
        node_id: testbed identifier.
        wake_time_s: when the node was told to wake for its update.
        attempts: sessions tried (first + retries).
        report: the successful session's report, if any.
    """

    node_id: int
    wake_time_s: float
    attempts: int = 0
    report: UpdateReport | None = None

    @property
    def succeeded(self) -> bool:
        """Whether the node was programmed."""
        return self.report is not None


@dataclass(frozen=True)
class CampaignTimeline:
    """Full AP-side campaign outcome.

    Attributes:
        sessions: per-node scheduling and results.
        request_time_s: airtime spent announcing the campaign.
        total_time_s: campaign wall-clock from request to last session.
        retries: failed sessions that were re-attempted.
    """

    sessions: tuple[NodeSession, ...]
    request_time_s: float
    total_time_s: float
    retries: int

    @property
    def success_count(self) -> int:
        """Nodes programmed."""
        return sum(1 for s in self.sessions if s.succeeded)


class AccessPoint:
    """The testbed's programming AP.

    Args:
        deployment: node placements and channel.
        image: the firmware image to distribute.
        max_attempts_per_node: sessions to try before giving up on a
            node (each retry waits for the node's next listen window).
    """

    def __init__(self, deployment: Deployment, image: bytes,
                 max_attempts_per_node: int = 3) -> None:
        if not image:
            raise ConfigurationError("cannot distribute an empty image")
        if max_attempts_per_node < 1:
            raise ConfigurationError(
                "need at least one attempt per node, got "
                f"{max_attempts_per_node}")
        self.deployment = deployment
        self.image = image
        self.max_attempts = max_attempts_per_node

    def build_request(self, wake_times: dict[int, float],
                      image_id: int = 1) -> ProgrammingRequest:
        """The campaign announcement packet.

        Raises:
            ConfigurationError: for an empty schedule.
        """
        if not wake_times:
            raise ConfigurationError("schedule at least one node")
        device_ids = tuple(sorted(wake_times))
        return ProgrammingRequest(
            device_ids=device_ids,
            wake_times_s=tuple(wake_times[d] for d in device_ids),
            image_id=image_id)

    def schedule(self, estimated_session_s: float,
                 guard_s: float = 5.0) -> dict[int, float]:
        """Assign staggered wake times: node k wakes after k sessions.

        Each node's wake time is rounded up to its next listen window
        (nodes only hear the announcement while listening).
        """
        wake_times: dict[int, float] = {}
        cursor = LISTEN_WINDOW_S
        for node in self.deployment.nodes:
            aligned = np.ceil(cursor / LISTEN_PERIOD_S) * LISTEN_PERIOD_S \
                if cursor > LISTEN_WINDOW_S else cursor
            wake_times[node.node_id] = float(aligned)
            cursor = float(aligned) + estimated_session_s + guard_s
        return wake_times

    def run_campaign(self, rng: np.random.Generator,
                     is_fpga_image: bool = True) -> CampaignTimeline:
        """Announce, then program every node at its slot, with retries."""
        request = self.build_request(self.schedule(150.0))
        link = OtaLink()
        request_airtime = link.airtime_s(request.wire_bytes)

        sessions: list[NodeSession] = []
        clock = request_airtime
        retries = 0
        for node in self.deployment.nodes:
            session = NodeSession(node_id=node.node_id, wake_time_s=clock)
            for attempt in range(self.max_attempts):
                session.attempts += 1
                node_link = OtaLink(
                    downlink_rssi_dbm=self.deployment.downlink_rssi_dbm(
                        node, rng),
                    uplink_rssi_dbm=self.deployment.uplink_rssi_dbm(
                        node, rng))
                updater = OtaUpdater()
                try:
                    report = updater.update(self.image, node_link, rng,
                                            is_fpga_image=is_fpga_image)
                except OtaError:
                    # Wait for the node's next listen window, retry.
                    retries += 1
                    clock += LISTEN_PERIOD_S
                    continue
                session.report = report
                clock += report.total_time_s
                break
            sessions.append(session)
        return CampaignTimeline(
            sessions=tuple(sessions),
            request_time_s=request_airtime,
            total_time_s=clock,
            retries=retries)
