"""Access-point-side OTA orchestration (paper section 3.4).

The node-side protocol lives in :mod:`repro.ota.mac`; this module is the
AP's view of a whole campaign: "the AP sends a programming request as a
LoRa packet with specific device IDs indicating the nodes to be
programmed along with the time they should wake up to receive the
update" - then works through the nodes sequentially, retrying nodes
whose sessions fail, against each node's periodic listen window.

The scheduler is deterministic (built on
:class:`repro.mcu.scheduler.EventScheduler` semantics but simple enough
to run inline), so campaign timelines are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    FlashError,
    OtaError,
    RollbackError,
    TransferAbandonedError,
    WatchdogTimeoutError,
)
# Imported from the submodule (not the repro.faults package) so that an
# `import repro.faults` entry point - whose __init__ transitively pulls
# in repro.ota - does not hit a partially-initialized package here.
from repro.faults.plan import FaultPlan, NodeFaults
from repro.ota.bank import FirmwareBanks
from repro.ota.hardened import (
    OUTCOME_ABANDONED,
    OUTCOME_RESUMED,
    OUTCOME_ROLLED_BACK,
    OUTCOME_SUCCEEDED,
    HardenedOtaSession,
)
from repro.ota.flash import Mx25R6435F
from repro.ota.mac import OtaLink, ProgrammingRequest, RetryPolicy
from repro.ota.updater import OtaUpdater, UpdateReport
from repro.power import profiles
from repro.sim import OTA_REQUEST, OTA_RETRY_WAIT, OTA_SESSION, Timeline
from repro.testbed.deployment import Deployment

AP_RADIO = "ap_radio"
"""Timeline component name for the access point's LoRa radio."""

LISTEN_PERIOD_S = 60.0
"""Nodes 'periodically turn off the FPGA and switch ... to the backbone
radio to listen for new firmware updates' - this is that period."""

LISTEN_WINDOW_S = 2.0
"""How long each listen window stays open."""

GOLDEN_IMAGE = bytes(range(256)) * 4
"""Factory fallback firmware provisioned on every hardened node: 1 kB
placeholder standing in for the minimal listen-for-updates image."""

GOLDEN_IMAGE_ID = 0
"""Trailer id of the factory image (campaign images start at 1)."""


@dataclass
class NodeSession:
    """One node's scheduled programming slot and its outcome.

    Attributes:
        node_id: testbed identifier.
        wake_time_s: when the node was told to wake for its update.
        attempts: sessions tried (first + retries).
        report: the successful session's report, if any.
        outcome: hardened-campaign classification (one of the
            ``OUTCOME_*`` constants; empty on the classic fast path).
        resumes: transfers continued from a flash checkpoint.
        rollbacks: boots that fell back to the golden image.
        watchdog_resets: hangs the watchdog cleared.
        errors: stringified per-attempt failures, in attempt order.
    """

    node_id: int
    wake_time_s: float
    attempts: int = 0
    report: UpdateReport | None = None
    outcome: str = ""
    resumes: int = 0
    rollbacks: int = 0
    watchdog_resets: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether the node is running the new image."""
        if self.report is None:
            return False
        return self.outcome in ("", OUTCOME_SUCCEEDED, OUTCOME_RESUMED)


@dataclass(frozen=True)
class CampaignTimeline:
    """Full AP-side campaign outcome.

    The scalar fields are views replayed from the ``timeline`` ledger,
    which carries the campaign announcement, every per-node session's
    packet-level detail (merged in at the session's start time), the
    retry waits, and one ``ota.session`` span per programmed node.

    Attributes:
        sessions: per-node scheduling and results.
        request_time_s: airtime spent announcing the campaign.
        total_time_s: campaign wall-clock from request to last session.
        retries: failed sessions that were re-attempted.
        timeline: the campaign-wide event ledger.
    """

    sessions: tuple[NodeSession, ...]
    request_time_s: float
    total_time_s: float
    retries: int
    timeline: Timeline | None = field(default=None, repr=False,
                                      compare=False)

    @property
    def success_count(self) -> int:
        """Nodes programmed."""
        return sum(1 for s in self.sessions if s.succeeded)

    def outcome_counts(self) -> dict[str, int]:
        """Terminal classification per node (hardened campaigns).

        Classic-path sessions (no ``outcome`` set) are mapped onto the
        same buckets: report present -> succeeded, absent -> abandoned.
        """
        counts: dict[str, int] = {}
        for session in self.sessions:
            key = session.outcome or (
                OUTCOME_SUCCEEDED if session.report is not None
                else OUTCOME_ABANDONED)
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def abandoned(self) -> tuple[NodeSession, ...]:
        """Nodes the campaign gave up on (reported, never raised)."""
        return tuple(s for s in self.sessions
                     if (s.outcome or ("" if s.report is not None
                                       else OUTCOME_ABANDONED))
                     == OUTCOME_ABANDONED)

    def total_node_energy_j(self) -> float:
        """Campaign-wide node-side energy, in session order."""
        return sum(s.report.node_energy_j
                   for s in self.sessions if s.report)


class AccessPoint:
    """The testbed's programming AP.

    Args:
        deployment: node placements and channel.
        image: the firmware image to distribute.
        max_attempts_per_node: sessions to try before giving up on a
            node (each retry waits for the node's next listen window).
    """

    def __init__(self, deployment: Deployment, image: bytes,
                 max_attempts_per_node: int = 3) -> None:
        if not image:
            raise ConfigurationError("cannot distribute an empty image")
        if max_attempts_per_node < 1:
            raise ConfigurationError(
                "need at least one attempt per node, got "
                f"{max_attempts_per_node}")
        self.deployment = deployment
        self.image = image
        self.max_attempts = max_attempts_per_node

    def build_request(self, wake_times: dict[int, float],
                      image_id: int = 1) -> ProgrammingRequest:
        """The campaign announcement packet.

        Raises:
            ConfigurationError: for an empty schedule.
        """
        if not wake_times:
            raise ConfigurationError("schedule at least one node")
        device_ids = tuple(sorted(wake_times))
        return ProgrammingRequest(
            device_ids=device_ids,
            wake_times_s=tuple(wake_times[d] for d in device_ids),
            image_id=image_id)

    def schedule(self, estimated_session_s: float,
                 guard_s: float = 5.0) -> dict[int, float]:
        """Assign staggered wake times: node k wakes after k sessions.

        Each node's wake time is rounded up to its next listen window
        (nodes only hear the announcement while listening).
        """
        wake_times: dict[int, float] = {}
        cursor = LISTEN_WINDOW_S
        for node in self.deployment.nodes:
            aligned = np.ceil(cursor / LISTEN_PERIOD_S) * LISTEN_PERIOD_S \
                if cursor > LISTEN_WINDOW_S else cursor
            wake_times[node.node_id] = float(aligned)
            cursor = float(aligned) + estimated_session_s + guard_s
        return wake_times

    def run_campaign(self, rng: np.random.Generator,
                     is_fpga_image: bool = True,
                     timeline: Timeline | None = None,
                     faults: FaultPlan | None = None,
                     policy: RetryPolicy | None = None) -> CampaignTimeline:
        """Announce, then program every node at its slot, with retries.

        All campaign activity lands on ``timeline`` (a fresh one when
        not supplied): the announcement airtime, each attempt's
        packet-level events (recorded on a per-session sub-timeline and
        merged in at the attempt's start), ``ota.retry`` waits for
        failed attempts, and an ``ota.session`` span per success.  The
        returned :class:`CampaignTimeline` scalars are replayed views
        over that ledger.

        Passing ``faults`` and/or ``policy`` switches to the hardened
        per-node pipeline (:class:`~repro.ota.hardened.\
HardenedOtaSession`): nodes get dual-bank flash with a golden image,
        resumable transfers and watchdog protection, and instead of a
        campaign abort every node ends in a terminal ``outcome`` class -
        succeeded, resumed, rolled back, or abandoned.  With both left
        ``None`` the classic path runs bit-identically to before.
        """
        request = self.build_request(self.schedule(150.0))
        link = OtaLink()
        timeline = timeline if timeline is not None else Timeline()
        since = timeline.checkpoint()
        timeline.record(
            OTA_REQUEST, AP_RADIO,
            label=f"announce {len(request.device_ids)} nodes",
            duration_s=link.airtime_s(request.wire_bytes),
            power_w=profiles.BACKBONE_TX_14DBM_W)

        if faults is not None or policy is not None:
            sessions = self._run_hardened_sessions(
                rng, timeline, is_fpga_image, faults, policy)
            return CampaignTimeline(
                sessions=tuple(sessions),
                request_time_s=timeline.time_s(kinds={OTA_REQUEST},
                                               since=since),
                total_time_s=timeline.time_s(since=since,
                                             advancing_only=True),
                retries=timeline.count(kinds={OTA_RETRY_WAIT}, since=since),
                timeline=timeline)

        sessions: list[NodeSession] = []
        for node in self.deployment.nodes:
            session = NodeSession(node_id=node.node_id,
                                  wake_time_s=timeline.now_s)
            for attempt in range(self.max_attempts):
                session.attempts += 1
                node_link = OtaLink(
                    downlink_rssi_dbm=self.deployment.downlink_rssi_dbm(
                        node, rng),
                    uplink_rssi_dbm=self.deployment.uplink_rssi_dbm(
                        node, rng))
                updater = OtaUpdater()
                attempt_start_s = timeline.now_s
                attempt_timeline = Timeline()
                try:
                    report = updater.update(self.image, node_link, rng,
                                            is_fpga_image=is_fpga_image,
                                            timeline=attempt_timeline)
                except OtaError:
                    # Wait for the node's next listen window, retry.
                    timeline.merge(attempt_timeline,
                                   offset_s=attempt_start_s)
                    timeline.record(
                        OTA_RETRY_WAIT, AP_RADIO,
                        label=f"node {node.node_id} attempt {attempt}",
                        duration_s=LISTEN_PERIOD_S)
                    continue
                timeline.merge(attempt_timeline, offset_s=attempt_start_s)
                timeline.record(
                    OTA_SESSION, AP_RADIO,
                    label=f"node {node.node_id}",
                    duration_s=report.total_time_s)
                session.report = report
                break
            sessions.append(session)
        return CampaignTimeline(
            sessions=tuple(sessions),
            request_time_s=timeline.time_s(kinds={OTA_REQUEST},
                                           since=since),
            total_time_s=timeline.time_s(since=since, advancing_only=True),
            retries=timeline.count(kinds={OTA_RETRY_WAIT}, since=since),
            timeline=timeline)

    def _provision_banks(self, injector: NodeFaults | None) -> FirmwareBanks:
        """A node's dual-bank flash with the golden image pre-installed.

        Provisioning happens with injection off - the factory programs
        the golden image on the bench, not over a flaky field link.
        """
        if injector is not None and injector.plan.flash is not None:
            from repro.faults.hardware import FaultyFlash
            flash: Mx25R6435F = FaultyFlash(injector)
            flash.inject = False
            banks = FirmwareBanks(flash)
            banks.install_golden(GOLDEN_IMAGE, GOLDEN_IMAGE_ID)
            flash.inject = True
            return banks
        banks = FirmwareBanks(Mx25R6435F())
        banks.install_golden(GOLDEN_IMAGE, GOLDEN_IMAGE_ID)
        return banks

    def _run_hardened_sessions(self, rng: np.random.Generator,
                               timeline: Timeline, is_fpga_image: bool,
                               faults: FaultPlan | None,
                               policy: RetryPolicy | None
                               ) -> list[NodeSession]:
        """Program every node fault-tolerantly; classify, never abort.

        Per-node state (flash banks, the fault injector's chains)
        persists across that node's attempts, so a retry genuinely
        resumes from staged data and flash checkpoints rather than
        starting a fresh simulated node.
        """
        sessions: list[NodeSession] = []
        for node in self.deployment.nodes:
            injector = (faults.bind(node.node_id)
                        if faults is not None else None)
            banks = self._provision_banks(injector)
            session = NodeSession(node_id=node.node_id,
                                  wake_time_s=timeline.now_s)
            for attempt in range(self.max_attempts):
                session.attempts += 1
                node_link = OtaLink(
                    downlink_rssi_dbm=self.deployment.downlink_rssi_dbm(
                        node, rng),
                    uplink_rssi_dbm=self.deployment.uplink_rssi_dbm(
                        node, rng))
                ota = HardenedOtaSession(
                    self.image, node_link, banks,
                    is_fpga_image=is_fpga_image,
                    policy=policy, faults=injector)
                attempt_start_s = timeline.now_s
                attempt_timeline = Timeline()
                try:
                    report = ota.run(rng, timeline=attempt_timeline,
                                     campaign_offset_s=attempt_start_s)
                except RollbackError as exc:
                    # Both banks corrupt: unrecoverable over the air.
                    timeline.merge(attempt_timeline,
                                   offset_s=attempt_start_s)
                    session.errors.append(str(exc))
                    session.outcome = OUTCOME_ABANDONED
                    break
                except (OtaError, WatchdogTimeoutError, FlashError,
                        FaultInjectionError) as exc:
                    timeline.merge(attempt_timeline,
                                   offset_s=attempt_start_s)
                    session.errors.append(str(exc))
                    if isinstance(exc, WatchdogTimeoutError):
                        session.watchdog_resets += 1
                    timeline.record(
                        OTA_RETRY_WAIT, AP_RADIO,
                        label=f"node {node.node_id} attempt {attempt}",
                        duration_s=LISTEN_PERIOD_S)
                    continue
                timeline.merge(attempt_timeline, offset_s=attempt_start_s)
                session.resumes += report.resumes
                session.watchdog_resets += report.watchdog_resets
                session.report = report
                if report.rolled_back:
                    session.rollbacks += 1
                    session.outcome = OUTCOME_ROLLED_BACK
                    timeline.record(
                        OTA_RETRY_WAIT, AP_RADIO,
                        label=f"node {node.node_id} attempt {attempt} "
                              "rolled back",
                        duration_s=LISTEN_PERIOD_S)
                    continue
                timeline.record(
                    OTA_SESSION, AP_RADIO,
                    label=f"node {node.node_id}",
                    duration_s=report.total_time_s)
                session.outcome = (OUTCOME_RESUMED if session.resumes > 0
                                   else OUTCOME_SUCCEEDED)
                break
            if not session.outcome:
                # Every attempt failed without even a rollback to show:
                # report it (never raise - the campaign must finish).
                session.outcome = OUTCOME_ABANDONED
                session.errors.append(str(TransferAbandonedError(
                    f"node {node.node_id} gave up after "
                    f"{self.max_attempts} attempts")))
            sessions.append(session)
        return sessions
