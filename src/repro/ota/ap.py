"""Access-point-side OTA orchestration (paper section 3.4).

The node-side protocol lives in :mod:`repro.ota.mac`; this module is the
AP's view of a whole campaign: "the AP sends a programming request as a
LoRa packet with specific device IDs indicating the nodes to be
programmed along with the time they should wake up to receive the
update" - then works through the nodes sequentially, retrying nodes
whose sessions fail, against each node's periodic listen window.

The scheduler is deterministic (built on
:class:`repro.mcu.scheduler.EventScheduler` semantics but simple enough
to run inline), so campaign timelines are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, OtaError
from repro.ota.mac import OtaLink, ProgrammingRequest
from repro.ota.updater import OtaUpdater, UpdateReport
from repro.power import profiles
from repro.sim import OTA_REQUEST, OTA_RETRY_WAIT, OTA_SESSION, Timeline
from repro.testbed.deployment import Deployment

AP_RADIO = "ap_radio"
"""Timeline component name for the access point's LoRa radio."""

LISTEN_PERIOD_S = 60.0
"""Nodes 'periodically turn off the FPGA and switch ... to the backbone
radio to listen for new firmware updates' - this is that period."""

LISTEN_WINDOW_S = 2.0
"""How long each listen window stays open."""


@dataclass
class NodeSession:
    """One node's scheduled programming slot and its outcome.

    Attributes:
        node_id: testbed identifier.
        wake_time_s: when the node was told to wake for its update.
        attempts: sessions tried (first + retries).
        report: the successful session's report, if any.
    """

    node_id: int
    wake_time_s: float
    attempts: int = 0
    report: UpdateReport | None = None

    @property
    def succeeded(self) -> bool:
        """Whether the node was programmed."""
        return self.report is not None


@dataclass(frozen=True)
class CampaignTimeline:
    """Full AP-side campaign outcome.

    The scalar fields are views replayed from the ``timeline`` ledger,
    which carries the campaign announcement, every per-node session's
    packet-level detail (merged in at the session's start time), the
    retry waits, and one ``ota.session`` span per programmed node.

    Attributes:
        sessions: per-node scheduling and results.
        request_time_s: airtime spent announcing the campaign.
        total_time_s: campaign wall-clock from request to last session.
        retries: failed sessions that were re-attempted.
        timeline: the campaign-wide event ledger.
    """

    sessions: tuple[NodeSession, ...]
    request_time_s: float
    total_time_s: float
    retries: int
    timeline: Timeline | None = field(default=None, repr=False,
                                      compare=False)

    @property
    def success_count(self) -> int:
        """Nodes programmed."""
        return sum(1 for s in self.sessions if s.succeeded)

    def total_node_energy_j(self) -> float:
        """Campaign-wide node-side energy, in session order."""
        return sum(s.report.node_energy_j
                   for s in self.sessions if s.report)


class AccessPoint:
    """The testbed's programming AP.

    Args:
        deployment: node placements and channel.
        image: the firmware image to distribute.
        max_attempts_per_node: sessions to try before giving up on a
            node (each retry waits for the node's next listen window).
    """

    def __init__(self, deployment: Deployment, image: bytes,
                 max_attempts_per_node: int = 3) -> None:
        if not image:
            raise ConfigurationError("cannot distribute an empty image")
        if max_attempts_per_node < 1:
            raise ConfigurationError(
                "need at least one attempt per node, got "
                f"{max_attempts_per_node}")
        self.deployment = deployment
        self.image = image
        self.max_attempts = max_attempts_per_node

    def build_request(self, wake_times: dict[int, float],
                      image_id: int = 1) -> ProgrammingRequest:
        """The campaign announcement packet.

        Raises:
            ConfigurationError: for an empty schedule.
        """
        if not wake_times:
            raise ConfigurationError("schedule at least one node")
        device_ids = tuple(sorted(wake_times))
        return ProgrammingRequest(
            device_ids=device_ids,
            wake_times_s=tuple(wake_times[d] for d in device_ids),
            image_id=image_id)

    def schedule(self, estimated_session_s: float,
                 guard_s: float = 5.0) -> dict[int, float]:
        """Assign staggered wake times: node k wakes after k sessions.

        Each node's wake time is rounded up to its next listen window
        (nodes only hear the announcement while listening).
        """
        wake_times: dict[int, float] = {}
        cursor = LISTEN_WINDOW_S
        for node in self.deployment.nodes:
            aligned = np.ceil(cursor / LISTEN_PERIOD_S) * LISTEN_PERIOD_S \
                if cursor > LISTEN_WINDOW_S else cursor
            wake_times[node.node_id] = float(aligned)
            cursor = float(aligned) + estimated_session_s + guard_s
        return wake_times

    def run_campaign(self, rng: np.random.Generator,
                     is_fpga_image: bool = True,
                     timeline: Timeline | None = None) -> CampaignTimeline:
        """Announce, then program every node at its slot, with retries.

        All campaign activity lands on ``timeline`` (a fresh one when
        not supplied): the announcement airtime, each attempt's
        packet-level events (recorded on a per-session sub-timeline and
        merged in at the attempt's start), ``ota.retry`` waits for
        failed attempts, and an ``ota.session`` span per success.  The
        returned :class:`CampaignTimeline` scalars are replayed views
        over that ledger.
        """
        request = self.build_request(self.schedule(150.0))
        link = OtaLink()
        timeline = timeline if timeline is not None else Timeline()
        since = timeline.checkpoint()
        timeline.record(
            OTA_REQUEST, AP_RADIO,
            label=f"announce {len(request.device_ids)} nodes",
            duration_s=link.airtime_s(request.wire_bytes),
            power_w=profiles.BACKBONE_TX_14DBM_W)

        sessions: list[NodeSession] = []
        for node in self.deployment.nodes:
            session = NodeSession(node_id=node.node_id,
                                  wake_time_s=timeline.now_s)
            for attempt in range(self.max_attempts):
                session.attempts += 1
                node_link = OtaLink(
                    downlink_rssi_dbm=self.deployment.downlink_rssi_dbm(
                        node, rng),
                    uplink_rssi_dbm=self.deployment.uplink_rssi_dbm(
                        node, rng))
                updater = OtaUpdater()
                attempt_start_s = timeline.now_s
                attempt_timeline = Timeline()
                try:
                    report = updater.update(self.image, node_link, rng,
                                            is_fpga_image=is_fpga_image,
                                            timeline=attempt_timeline)
                except OtaError:
                    # Wait for the node's next listen window, retry.
                    timeline.merge(attempt_timeline,
                                   offset_s=attempt_start_s)
                    timeline.record(
                        OTA_RETRY_WAIT, AP_RADIO,
                        label=f"node {node.node_id} attempt {attempt}",
                        duration_s=LISTEN_PERIOD_S)
                    continue
                timeline.merge(attempt_timeline, offset_s=attempt_start_s)
                timeline.record(
                    OTA_SESSION, AP_RADIO,
                    label=f"node {node.node_id}",
                    duration_s=report.total_time_s)
                session.report = report
                break
            sessions.append(session)
        return CampaignTimeline(
            sessions=tuple(sessions),
            request_time_s=timeline.time_s(kinds={OTA_REQUEST},
                                           since=since),
            total_time_s=timeline.time_s(since=since, advancing_only=True),
            retries=timeline.count(kinds={OTA_RETRY_WAIT}, since=since),
            timeline=timeline)
