"""Over-the-air programming MAC protocol (paper section 3.4).

The AP updates nodes sequentially over a LoRa link: a programming request
names the device IDs and their wake times; each selected node answers
with a ready message at its slot; the AP then streams the firmware as
sequence-numbered data packets which the node CRC-checks, writes to
flash, and ACKs - a missing ACK triggers retransmission after a timeout;
a final end-of-update packet tells the node to decompress, reprogram and
resume.

This module defines the wire messages, the per-packet link simulation
(packet error rates from the SX1276 model at the measured RSSI), and the
two state machines.  The byte layouts are explicit so tests can verify
round-trips; the campaign simulator in :mod:`repro.testbed` drives many
of these sessions to reproduce the Fig. 14 CDF.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import BrownoutInterrupt, ConfigurationError, ProtocolError
from repro.phy.lora.params import LoRaParams
from repro.power import profiles
from repro.radio.sx1276 import packet_error_probability
from repro.sim import (
    CONTROL_RX,
    CONTROL_TX,
    OTA_FAILURE,
    PACKET_DELIVERED,
    PACKET_RX,
    PACKET_TIMEOUT,
    PACKET_TX,
    Timeline,
)

if TYPE_CHECKING:
    from repro.faults.plan import NodeFaults

NODE_RADIO = "node_radio"
"""Timeline component name for the node's backbone (SX1276) radio."""

DATA_PAYLOAD_BYTES = 60
"""'packets of 60 B ... balances protocol overhead versus range'.  This
is the paper's operating point, not a protocol limit - the packet-size
ablation sweeps around it up to :data:`MAX_DATA_PAYLOAD_BYTES`."""

MAX_DATA_PAYLOAD_BYTES = 247
"""LoRa's 255-byte PHY payload minus the 8-byte fragment header."""

OTA_PREAMBLE_SYMBOLS = 8
"""'We choose a preamble of 8 chirps'."""

DEFAULT_OTA_PARAMS = LoRaParams(
    spreading_factor=8, bandwidth_hz=500e3, coding_rate_denominator=6)
"""AP configuration used in the paper's testbed evaluation (5.3)."""

ACK_BYTES = 6
CONTROL_BYTES = 12
ACK_TIMEOUT_S = 0.25
"""Retransmission timeout after a missing ACK."""

MAX_ATTEMPTS_PER_PACKET = 50


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Bounded, configurable retransmission discipline for the ARQ loop.

    The default policy reproduces the historical behaviour bit-exactly:
    a fixed :data:`ACK_TIMEOUT_S` backoff, :data:`MAX_ATTEMPTS_PER_PACKET`
    rounds per fragment, no jitter (zero extra RNG draws) and no session
    deadline — so ``policy=None`` and ``policy=RetryPolicy()`` yield
    identical timelines.

    Attributes:
        max_attempts: transmission rounds per fragment before giving up.
        backoff: ``"fixed"`` (every timeout waits ``base_delay_s``) or
            ``"exponential"`` (doubles per attempt, capped at
            ``max_delay_s``).
        base_delay_s: first-retry timeout.
        max_delay_s: exponential-backoff ceiling.
        jitter_fraction: +/- fractional spread applied to each delay;
            non-zero jitter requires ``seed`` so the spread stays
            deterministic.
        session_deadline_s: wall-clock budget for one whole transfer;
            ``None`` means unbounded.
        seed: root for the jitter stream (independent of the link RNG).
    """

    max_attempts: int = MAX_ATTEMPTS_PER_PACKET
    backoff: str = "fixed"
    base_delay_s: float = ACK_TIMEOUT_S
    max_delay_s: float = 8.0
    jitter_fraction: float = 0.0
    session_deadline_s: float | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff not in ("fixed", "exponential"):
            raise ConfigurationError(
                f"backoff must be 'fixed' or 'exponential', "
                f"got {self.backoff!r}")
        if self.base_delay_s <= 0:
            raise ConfigurationError(
                f"base_delay_s must be positive, got {self.base_delay_s!r}")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                "max_delay_s must be >= base_delay_s, got "
                f"{self.max_delay_s!r} < {self.base_delay_s!r}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"jitter_fraction must be in [0, 1), "
                f"got {self.jitter_fraction!r}")
        if self.jitter_fraction > 0.0 and self.seed is None:
            raise ConfigurationError(
                "jittered backoff needs an explicit seed so delays stay "
                "deterministic")
        if self.session_deadline_s is not None \
                and self.session_deadline_s <= 0:
            raise ConfigurationError(
                "session_deadline_s must be positive, got "
                f"{self.session_deadline_s!r}")

    def jitter_rng(self) -> np.random.Generator | None:
        """The dedicated jitter stream (``None`` when jitter is off)."""
        if self.jitter_fraction == 0.0:
            return None
        return np.random.default_rng([self.seed, 0x0177])

    def delay_s(self, attempt: int,
                jitter_rng: np.random.Generator | None = None) -> float:
        """Timeout dwell after a failed transmission round ``attempt``."""
        if self.backoff == "fixed":
            delay = self.base_delay_s
        else:
            delay = min(self.base_delay_s * float(2 ** attempt),
                        self.max_delay_s)
        if self.jitter_fraction > 0.0 and jitter_rng is not None:
            spread = self.jitter_fraction * (2.0 * jitter_rng.random() - 1.0)
            delay = delay * (1.0 + spread)
        return delay


def crc32(data: bytes) -> int:
    """Packet integrity check (CRC-32, as a stand-in for the MAC's CRC)."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class ProgrammingRequest:
    """AP -> nodes: who should update and when to wake."""

    device_ids: tuple[int, ...]
    wake_times_s: tuple[float, ...]
    image_id: int

    def __post_init__(self) -> None:
        if len(self.device_ids) != len(self.wake_times_s):
            raise ProtocolError(
                "each selected device needs exactly one wake time")
        if not self.device_ids:
            raise ProtocolError("a programming request must name devices")

    @property
    def wire_bytes(self) -> int:
        """Serialized size: header + 6 B per (id, wake) entry."""
        return CONTROL_BYTES + 6 * len(self.device_ids)


@dataclass(frozen=True)
class ReadyMessage:
    """Node -> AP: awake and ready to receive at the scheduled slot."""

    device_id: int

    @property
    def wire_bytes(self) -> int:
        """Serialized size."""
        return ACK_BYTES


@dataclass(frozen=True)
class DataPacket:
    """AP -> node: one firmware fragment."""

    sequence: int
    payload: bytes

    def __post_init__(self) -> None:
        if not self.payload:
            raise ProtocolError("data packets must carry a payload")
        if len(self.payload) > MAX_DATA_PAYLOAD_BYTES:
            raise ProtocolError(
                f"payload of {len(self.payload)} exceeds the "
                f"{MAX_DATA_PAYLOAD_BYTES}-byte limit")

    @property
    def crc(self) -> int:
        """Payload CRC carried in the packet."""
        return crc32(self.sequence.to_bytes(4, "big") + self.payload)

    @property
    def wire_bytes(self) -> int:
        """Serialized size: seq (4) + CRC (4) + payload."""
        return 8 + len(self.payload)


@dataclass(frozen=True)
class Ack:
    """Node -> AP: fragment received and written to flash."""

    sequence: int

    @property
    def wire_bytes(self) -> int:
        """Serialized size."""
        return ACK_BYTES


@dataclass(frozen=True)
class EndOfUpdate:
    """AP -> node: image complete; decompress, reprogram and resume."""

    total_packets: int
    image_crc: int

    @property
    def wire_bytes(self) -> int:
        """Serialized size."""
        return CONTROL_BYTES


def fragment_image(image: bytes,
                   payload_bytes: int = DATA_PAYLOAD_BYTES) -> list[DataPacket]:
    """Split an image into sequence-numbered data packets.

    Raises:
        ProtocolError: for an empty image or non-positive fragment size.
    """
    if not image:
        raise ProtocolError("cannot fragment an empty image")
    if payload_bytes <= 0:
        raise ProtocolError(
            f"payload size must be positive, got {payload_bytes}")
    return [DataPacket(sequence=index, payload=image[start:start + payload_bytes])
            for index, start in enumerate(range(0, len(image), payload_bytes))]


def reassemble_image(packets: list[DataPacket]) -> bytes:
    """Node-side reassembly with sequence/CRC verification.

    Raises:
        ProtocolError: for gaps or duplicate sequence numbers.
    """
    expected = 0
    out = bytearray()
    for packet in packets:
        if packet.sequence != expected:
            raise ProtocolError(
                f"packet {packet.sequence} arrived where {expected} was "
                "expected")
        out += packet.payload
        expected += 1
    return bytes(out)


@dataclass(frozen=True)
class OtaLink:
    """One AP<->node LoRa link at a measured signal strength.

    Attributes:
        params: LoRa configuration of the backbone link.
        downlink_rssi_dbm: node-side RSSI of AP transmissions.
        uplink_rssi_dbm: AP-side RSSI of node transmissions (defaults to
            symmetric).
    """

    params: LoRaParams = DEFAULT_OTA_PARAMS
    downlink_rssi_dbm: float = -100.0
    uplink_rssi_dbm: float | None = None
    fading_sigma_db: float = 2.0
    """Lognormal fading around the mean RSSI.  Outdoor LoRa links are not
    static: this is what turns the analytic PER cliff into the gradual
    per-node slowdown Fig. 14's CDF tail shows."""

    fading_coherence_s: float = 0.15
    """Channel coherence time.  A packet longer than this straddles
    multiple independent fading states and fails if *any* of them dips -
    the physical reason 'long packets with short preambles lead to higher
    PER' (paper 5.3) and the pressure against huge OTA fragments."""

    def packet_success(self, wire_bytes: int, uplink: bool,
                       rng: np.random.Generator) -> bool:
        """Draw one packet delivery outcome under block fading."""
        rssi = (self.uplink_rssi_dbm if uplink and self.uplink_rssi_dbm
                is not None else self.downlink_rssi_dbm)
        airtime = self.airtime_s(wire_bytes)
        blocks = max(1, int(np.ceil(airtime / self.fading_coherence_s)))
        for _ in range(blocks):
            block_rssi = rssi
            if self.fading_sigma_db > 0:
                block_rssi += float(rng.normal(0.0, self.fading_sigma_db))
            per = packet_error_probability(
                self.params, block_rssi,
                max(wire_bytes // blocks, 1), OTA_PREAMBLE_SYMBOLS)
            if rng.random() < per:
                return False
        return True

    def airtime_s(self, wire_bytes: int) -> float:
        """Time-on-air of a packet on this link."""
        return self.params.airtime_s(wire_bytes, OTA_PREAMBLE_SYMBOLS)


@dataclass
class TransferReport:
    """Outcome of one firmware transfer session.

    Every numeric field is a *view* over the session's
    :class:`~repro.sim.Timeline` ledger, materialized when the session
    ends (see :func:`transfer_report_from_timeline`); nothing here is
    accumulated by hand.

    Attributes:
        duration_s: total session time including retransmissions.
        packets_sent: data packets transmitted (with retries).
        packets_delivered: unique data packets delivered.
        retransmissions: extra transmissions beyond one per fragment.
        node_rx_time_s: time the node's backbone radio spent receiving.
        node_tx_time_s: time the node spent transmitting ACKs.
        failed: the session aborted (a fragment exhausted its retries).
        timeline: the ledger the totals were derived from.
    """

    duration_s: float = 0.0
    packets_sent: int = 0
    packets_delivered: int = 0
    retransmissions: int = 0
    node_rx_time_s: float = 0.0
    node_tx_time_s: float = 0.0
    failed: bool = False
    events: list[str] = field(default_factory=list)
    timeline: Timeline | None = field(default=None, repr=False, compare=False)


#: Per-attempt link supplier for the shared ARQ loop: receives the
#: current sim time, the fragment and the attempt index, returns the
#: link conditions for this transmission attempt.
LinkForAttempt = Callable[[float, DataPacket, int], OtaLink]


def run_stop_and_wait(fragments: list[DataPacket],
                      rng: np.random.Generator,
                      timeline: Timeline,
                      link_for_attempt: LinkForAttempt,
                      component: str = NODE_RADIO,
                      policy: RetryPolicy | None = None,
                      faults: "NodeFaults | None" = None,
                      on_delivered: Callable[[DataPacket], None] | None = None,
                      ) -> DataPacket | None:
    """The stop-and-wait ARQ data phase, emitting events onto a timeline.

    For every fragment: transmit (node receives for the data airtime),
    wait for the ACK (node transmits), and on either loss burn the
    retry timeout and try again — up to ``policy.max_attempts`` rounds
    (with ``policy=None``, the historical fixed-timeout behaviour,
    bit-exactly).  This single loop serves the fixed-link transfer
    (:func:`simulate_transfer`), the mobile-node variant
    (:func:`repro.testbed.mobility.simulate_mobile_transfer`), which
    re-derives the link before every attempt via ``link_for_attempt``,
    and the hardened resumable session
    (:class:`repro.ota.hardened.HardenedOtaSession`).

    ``faults`` threads a :class:`~repro.faults.NodeFaults` injector into
    the loop: forced packet loss (AP outages, burst-loss chain) is
    checked *before* the link draw, corruption after a successful data
    delivery (the node refuses to ACK a CRC-failing fragment), and
    brownouts fire right after a fragment is acknowledged.  All fault
    randomness comes from the injector's own streams, never ``rng``.

    ``on_delivered`` runs after each fragment's ``packet.done`` event —
    the hardened session uses it to checkpoint progress to flash.

    Returns:
        ``None`` when every fragment was delivered, else the fragment
        that exhausted its attempts or hit the session deadline (the
        timeline then carries an ``ota.failure`` marker).

    Raises:
        BrownoutInterrupt: the injected brownout fired; the exception
            carries the sequence number to resume from.
    """
    pol = policy if policy is not None else RetryPolicy()
    jitter_rng = pol.jitter_rng()
    started_s = timeline.now_s
    for fragment in fragments:
        delivered = False
        for attempt in range(pol.max_attempts):
            if pol.session_deadline_s is not None and \
                    timeline.now_s - started_s >= pol.session_deadline_s:
                timeline.record(
                    OTA_FAILURE, component,
                    label=f"session deadline {pol.session_deadline_s:g} s "
                          f"exceeded at fragment {fragment.sequence}")
                return fragment
            link = link_for_attempt(timeline.now_s, fragment, attempt)
            data_airtime = link.airtime_s(fragment.wire_bytes)
            ack_airtime = link.airtime_s(ACK_BYTES)
            timeline.record(
                PACKET_RX, component,
                label=f"data seq={fragment.sequence} attempt={attempt}",
                duration_s=data_airtime, power_w=profiles.BACKBONE_RX_W)
            forced_loss = faults is not None and faults.packet_lost(
                uplink=False, label=f"data seq={fragment.sequence}")
            if forced_loss or not link.packet_success(
                    fragment.wire_bytes, uplink=False, rng=rng):
                timeline.record(
                    PACKET_TIMEOUT, component,
                    label=f"data seq={fragment.sequence} lost",
                    duration_s=pol.delay_s(attempt, jitter_rng),
                    power_w=profiles.BACKBONE_RX_W)
                continue
            if faults is not None and faults.packet_corrupted(
                    f"data seq={fragment.sequence}"):
                # Delivered but failing the node's CRC: the node stays
                # silent and the AP's ACK wait expires.
                timeline.record(
                    PACKET_TIMEOUT, component,
                    label=f"data seq={fragment.sequence} corrupt",
                    duration_s=pol.delay_s(attempt, jitter_rng),
                    power_w=profiles.BACKBONE_RX_W)
                continue
            timeline.record(
                PACKET_TX, component,
                label=f"ack seq={fragment.sequence}",
                duration_s=ack_airtime,
                power_w=profiles.BACKBONE_TX_14DBM_W)
            ack_forced_loss = faults is not None and faults.packet_lost(
                uplink=True, label=f"ack seq={fragment.sequence}")
            if not ack_forced_loss and link.packet_success(
                    ACK_BYTES, uplink=True, rng=rng):
                delivered = True
                timeline.record(PACKET_DELIVERED, component,
                                label=f"seq={fragment.sequence}")
                if on_delivered is not None:
                    on_delivered(fragment)
                if faults is not None and faults.brownout_now():
                    raise BrownoutInterrupt(fragment.sequence + 1)
                break
            timeline.record(
                PACKET_TIMEOUT, component,
                label=f"ack seq={fragment.sequence} lost",
                duration_s=pol.delay_s(attempt, jitter_rng),
                power_w=profiles.BACKBONE_RX_W)
        if not delivered:
            timeline.record(OTA_FAILURE, component,
                            label=f"fragment {fragment.sequence} undeliverable")
            return fragment
    return None


def transfer_report_from_timeline(timeline: Timeline, since: int,
                                  failed: bool,
                                  messages: list[str],
                                  timeout_is_rx: bool = True,
                                  component: str = NODE_RADIO
                                  ) -> TransferReport:
    """Materialize a :class:`TransferReport` from the ledger.

    Totals are replayed from the events appended after ``since`` in
    append order, phase by phase (ARQ loop, then control exchange), so
    they are bit-identical to the sequential accumulators this view
    replaced.  ``timeout_is_rx`` controls whether ACK-timeout dwells
    charge the node's receive budget (they do on the fixed link; the
    mobile-node model never did).
    """
    rx_kinds = {PACKET_RX, PACKET_TIMEOUT} if timeout_is_rx \
        else {PACKET_RX}
    node_rx = timeline.time_s(kinds=rx_kinds, component=component,
                              since=since)
    node_rx = node_rx + timeline.time_s(kinds={CONTROL_RX},
                                        component=component, since=since)
    node_tx = timeline.time_s(kinds={PACKET_TX}, component=component,
                              since=since)
    node_tx = node_tx + timeline.time_s(kinds={CONTROL_TX},
                                        component=component, since=since)
    packets_sent = timeline.count(kinds={PACKET_RX}, component=component,
                                  since=since)
    delivered = timeline.count(kinds={PACKET_DELIVERED},
                               component=component, since=since)
    fragments_attempted = delivered + (1 if failed else 0)
    return TransferReport(
        duration_s=timeline.time_s(since=since, advancing_only=True),
        packets_sent=packets_sent,
        packets_delivered=delivered,
        retransmissions=packets_sent - fragments_attempted,
        node_rx_time_s=node_rx,
        node_tx_time_s=node_tx,
        failed=failed,
        events=messages,
        timeline=timeline)


def simulate_transfer(image: bytes, link: OtaLink,
                      rng: np.random.Generator,
                      payload_bytes: int = DATA_PAYLOAD_BYTES,
                      timeline: Timeline | None = None) -> TransferReport:
    """Run the stop-and-wait data phase of an OTA session over a link.

    Every fragment is transmitted until both the fragment (downlink) and
    its ACK (uplink) get through; each failed round costs the data
    airtime plus the ACK timeout.  All radio activity is recorded as
    events on ``timeline`` (a fresh one when not supplied); the returned
    report is a view over that ledger.

    Raises:
        ProtocolError: for an empty image.
    """
    packets = fragment_image(image, payload_bytes)
    timeline = timeline if timeline is not None else Timeline()
    since = timeline.checkpoint()
    lost = run_stop_and_wait(packets, rng, timeline,
                             lambda now_s, fragment, attempt: link)
    if lost is not None:
        return transfer_report_from_timeline(
            timeline, since, failed=True,
            messages=[f"fragment {lost.sequence} exhausted "
                      f"{MAX_ATTEMPTS_PER_PACKET} attempts"])
    # Control overhead: request + ready + end-of-update exchanges.
    request = ProgrammingRequest((1,), (0.0,), image_id=0)
    end = EndOfUpdate(len(packets), crc32(image))
    timeline.record(CONTROL_RX, NODE_RADIO, label="programming request",
                    duration_s=link.airtime_s(request.wire_bytes),
                    power_w=profiles.BACKBONE_RX_W)
    timeline.record(CONTROL_TX, NODE_RADIO, label="ready",
                    duration_s=link.airtime_s(ReadyMessage(1).wire_bytes),
                    power_w=profiles.BACKBONE_TX_14DBM_W)
    timeline.record(CONTROL_RX, NODE_RADIO, label="end of update",
                    duration_s=link.airtime_s(end.wire_bytes),
                    power_w=profiles.BACKBONE_RX_W)
    return transfer_report_from_timeline(timeline, since, failed=False,
                                         messages=[])
