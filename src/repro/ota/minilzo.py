"""miniLZO-class LZ77 codec, implemented from scratch.

TinySDR compresses firmware updates with miniLZO, "a lightweight subset
of the Lempel-Ziv-Oberhumer (LZO) algorithm" whose decompressor needs no
more working memory than the output buffer (paper section 3.4).  This
module implements a codec with the same contract and character:

* byte-oriented LZ77 with greedy hash matching, a 4 kB window and
  unbounded match lengths (run-length cascades), like LZO1X-1;
* a decompressor that allocates only the output buffer and a few
  scalars - the property that lets the MSP432 decompress 30 kB blocks
  in SRAM;
* compression ratios on sparse FPGA bitstreams in the range the paper
  reports (579 kB -> ~99 kB at 11 % utilization, ~40 kB at 3 %).

The container format (not wire-compatible with LZO, which is
patent-encumbered history anyway, but equivalent in capability):

* literal op: ``0x01..0x7F`` = copy that many literal bytes that follow;
  ``0x00`` is followed by a 255-cascade extension (length = 127 + ext).
* match op: ``0x80 | (L << 4) | D_hi`` then ``D_lo``: copy ``3 + L``
  bytes (L in 0..6) from ``distance = (D_hi << 8 | D_lo) + 1`` back;
  ``L = 7`` adds a 255-cascade extension (length = 10 + ext).
"""

from __future__ import annotations

from repro.errors import CompressionError

WINDOW_SIZE = 4096
MIN_MATCH = 3
MAX_SHORT_MATCH = 9
MAX_LITERAL_RUN = 127
_HASH_SHIFT = 5


def _read_cascade(data: bytes, pos: int) -> tuple[int, int]:
    """Read a 255-cascade extension; returns (value, new_pos)."""
    value = 0
    while True:
        if pos >= len(data):
            raise CompressionError("truncated length extension")
        byte = data[pos]
        pos += 1
        value += byte
        if byte != 255:
            return value, pos


def _write_cascade(out: bytearray, value: int) -> None:
    """Append a 255-cascade extension for ``value``."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def compress(data: bytes) -> bytes:
    """Compress ``data``.

    Worst case (incompressible input) the output is the input plus about
    1/127 framing overhead, mirroring miniLZO's "almost the same size as
    the original file" worst case the paper plans flash space for.
    """
    data = bytes(data)
    n = len(data)
    out = bytearray()
    # Hash of each 3-byte prefix -> most recent position.
    table: dict[int, int] = {}
    literal_start = 0
    pos = 0

    def flush_literals(end: int) -> None:
        start = literal_start
        while start < end:
            run = min(end - start, MAX_LITERAL_RUN)
            remaining = end - start
            if remaining > MAX_LITERAL_RUN:
                # Long run: emit extended-literal op for the whole rest.
                out.append(0x00)
                _write_cascade(out, remaining - MAX_LITERAL_RUN)
                out.extend(data[start:end])
                return
            out.append(run)
            out.extend(data[start:start + run])
            start += run

    while pos + MIN_MATCH <= n:
        key = data[pos] | (data[pos + 1] << _HASH_SHIFT) \
            | (data[pos + 2] << (2 * _HASH_SHIFT))
        candidate = table.get(key)
        table[key] = pos
        if candidate is not None and 0 < pos - candidate <= WINDOW_SIZE \
                and data[candidate:candidate + MIN_MATCH] \
                == data[pos:pos + MIN_MATCH]:
            length = MIN_MATCH
            limit = n - pos
            while length < limit and data[candidate + length] \
                    == data[pos + length]:
                length += 1
            flush_literals(pos)
            distance = pos - candidate - 1
            if length <= MAX_SHORT_MATCH:
                out.append(0x80 | ((length - MIN_MATCH) << 4)
                           | (distance >> 8))
                out.append(distance & 0xFF)
            else:
                out.append(0x80 | (7 << 4) | (distance >> 8))
                out.append(distance & 0xFF)
                _write_cascade(out, length - (MAX_SHORT_MATCH + 1))
            pos += length
            literal_start = pos
        else:
            pos += 1
    flush_literals(n)
    return bytes(out)


def decompress(data: bytes, expected_size: int | None = None) -> bytes:
    """Decompress a stream produced by :func:`compress`.

    Args:
        data: compressed stream.
        expected_size: optional output-size check (the OTA block headers
            carry it, so corruption is caught before flashing).

    Raises:
        CompressionError: for truncated or malformed streams, or an
            output-size mismatch.  With ``expected_size`` given, the
            check happens *per op*, so a corrupted length cascade
            claiming megabytes fails immediately instead of first
            allocating them (the MSP432 has 64 kB of SRAM total).
    """
    data = bytes(data)
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        token = data[pos]
        pos += 1
        if token & 0x80:
            length_code = (token >> 4) & 0x7
            if pos >= n:
                raise CompressionError("truncated match distance")
            distance = (((token & 0x0F) << 8) | data[pos]) + 1
            pos += 1
            if length_code == 7:
                extra, pos = _read_cascade(data, pos)
                length = MAX_SHORT_MATCH + 1 + extra
            else:
                length = MIN_MATCH + length_code
            if expected_size is not None \
                    and len(out) + length > expected_size:
                raise CompressionError(
                    f"match of {length} bytes would grow the output past "
                    f"the expected {expected_size} bytes")
            if distance > len(out):
                raise CompressionError(
                    f"match distance {distance} reaches before the output "
                    "start")
            start = len(out) - distance
            for i in range(length):  # overlapping copies are intentional
                out.append(out[start + i])
        else:
            if token == 0x00:
                extra, pos = _read_cascade(data, pos)
                run = MAX_LITERAL_RUN + extra
            else:
                run = token
            if expected_size is not None and len(out) + run > expected_size:
                raise CompressionError(
                    f"literal run of {run} bytes would grow the output "
                    f"past the expected {expected_size} bytes")
            if pos + run > n:
                raise CompressionError("truncated literal run")
            out.extend(data[pos:pos + run])
            pos += run
    if expected_size is not None and len(out) != expected_size:
        raise CompressionError(
            f"decompressed {len(out)} bytes, expected {expected_size}")
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience: ``len(compress(data)) / len(data)``.

    Raises:
        CompressionError: for empty input.
    """
    if not data:
        raise CompressionError("cannot measure ratio of empty input")
    return len(compress(data)) / len(data)
