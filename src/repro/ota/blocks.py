"""Block-oriented compression pipeline (paper section 3.4).

miniLZO decompression needs a buffer the size of the uncompressed data; a
579 kB bitstream will not fit in the MSP432's 64 kB SRAM.  The paper's
answer: "we first divide the original update file into blocks of 30 kB
that will fit in the MCU memory.  Then we compress each block separately
and transmit them one by one."  The node later decompresses block by
block - allocate 30 kB, load a block from flash, decompress, write back.

This module implements both directions with explicit memory accounting,
so the test suite can prove the node-side path never exceeds the SRAM
budget - the constraint that motivated the design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompressionError, ConfigurationError
from repro.mcu.msp432 import MemoryBank
from repro.ota import minilzo

BLOCK_BYTES = 30 * 1024
"""The paper's block size: fits in MCU SRAM next to the runtime."""


@dataclass(frozen=True)
class CompressedBlock:
    """One independently-compressed block.

    Attributes:
        index: block sequence number.
        raw_size: uncompressed byte count (the last block may be short).
        payload: compressed bytes.
    """

    index: int
    raw_size: int
    payload: bytes

    def header(self) -> bytes:
        """6-byte wire header: index (2), raw size (2), payload size (2)."""
        if self.raw_size > 0xFFFF or len(self.payload) > 0xFFFF:
            raise ConfigurationError("block exceeds the 16-bit size fields")
        return (self.index.to_bytes(2, "big")
                + self.raw_size.to_bytes(2, "big")
                + len(self.payload).to_bytes(2, "big"))


def split_and_compress(data: bytes,
                       block_bytes: int = BLOCK_BYTES) -> list[CompressedBlock]:
    """AP-side pipeline: segment the image and compress each block.

    Raises:
        ConfigurationError: for empty input or a non-positive block size.
    """
    if not data:
        raise ConfigurationError("cannot compress an empty image")
    if block_bytes <= 0:
        raise ConfigurationError(
            f"block size must be positive, got {block_bytes}")
    blocks = []
    for index, start in enumerate(range(0, len(data), block_bytes)):
        raw = data[start:start + block_bytes]
        blocks.append(CompressedBlock(
            index=index, raw_size=len(raw), payload=minilzo.compress(raw)))
    return blocks


def reassemble(blocks: list[CompressedBlock],
               sram: MemoryBank | None = None,
               region_name: str = "ota_decompress") -> bytes:
    """Node-side pipeline: decompress blocks in order, bounded by SRAM.

    Args:
        blocks: the received compressed blocks.
        sram: when given, a 30 kB-class working buffer is allocated in the
            bank for the duration of each block - the call fails exactly
            when the real MCU would run out of memory.
        region_name: allocation label inside ``sram``.

    Raises:
        CompressionError: for out-of-order/missing blocks or corrupt data.
    """
    if not blocks:
        raise CompressionError("no blocks to reassemble")
    output = bytearray()
    for expected_index, block in enumerate(blocks):
        if block.index != expected_index:
            raise CompressionError(
                f"block {block.index} arrived where {expected_index} was "
                "expected")
        if sram is not None:
            sram.allocate(region_name, max(block.raw_size, 1))
        try:
            output += minilzo.decompress(block.payload, block.raw_size)
        finally:
            if sram is not None:
                sram.release(region_name)
    return bytes(output)


def parse_wire_image(wire: bytes) -> list[CompressedBlock]:
    """Parse a staged wire image (header + payload stream) into blocks.

    This is the node-side inverse of joining ``block.header() +
    block.payload`` - the hardened updater reads the staged bytes back
    from flash and re-parses them, so any corruption the flash
    introduced surfaces here or in the per-block decompression as a
    typed error instead of silently propagating.

    Raises:
        CompressionError: for truncated headers or payloads, or an empty
            stream.
    """
    blocks: list[CompressedBlock] = []
    cursor = 0
    while cursor < len(wire):
        if cursor + 6 > len(wire):
            raise CompressionError(
                f"truncated block header at offset {cursor}")
        index = int.from_bytes(wire[cursor:cursor + 2], "big")
        raw_size = int.from_bytes(wire[cursor + 2:cursor + 4], "big")
        payload_size = int.from_bytes(wire[cursor + 4:cursor + 6], "big")
        cursor += 6
        if payload_size == 0 or cursor + payload_size > len(wire):
            raise CompressionError(
                f"block {index} claims {payload_size} payload bytes but "
                f"only {len(wire) - cursor} remain")
        blocks.append(CompressedBlock(
            index=index, raw_size=raw_size,
            payload=bytes(wire[cursor:cursor + payload_size])))
        cursor += payload_size
    if not blocks:
        raise CompressionError("empty wire image")
    return blocks


def total_compressed_bytes(blocks: list[CompressedBlock],
                           include_headers: bool = True) -> int:
    """Airtime-relevant byte count of a compressed image."""
    payload = sum(len(block.payload) for block in blocks)
    if include_headers:
        payload += 6 * len(blocks)
    return payload


def compression_summary(data: bytes,
                        block_bytes: int = BLOCK_BYTES) -> dict[str, float]:
    """Report the numbers paper section 5.3 quotes for an image."""
    blocks = split_and_compress(data, block_bytes)
    compressed = total_compressed_bytes(blocks)
    return {
        "raw_bytes": float(len(data)),
        "compressed_bytes": float(compressed),
        "ratio": compressed / len(data),
        "blocks": float(len(blocks)),
    }
