"""Link-level abstraction: RSSI-driven reception over AWGN.

The paper's PHY evaluation plots error rates *versus RSSI*.  This module
owns the RSSI -> SNR mapping (through the receiver's noise bandwidth and
noise figure) and the machinery to place multiple transmissions - signal
plus interferers at individual power levels - into one received baseband
stream, which is what the concurrent-reception study (Fig. 15) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import complex_noise
from repro.errors import ChannelError
from repro.units import dbm_to_mw, noise_floor_dbm, snr_from_rssi


@dataclass(frozen=True)
class LinkBudget:
    """Receiver-side view of a link: noise bandwidth plus noise figure.

    Attributes:
        bandwidth_hz: receiver noise bandwidth (the LoRa BW or BLE channel
            bandwidth).
        noise_figure_db: cascaded receiver noise figure.  We use 6 dB to
            match the SX1276-class sensitivity the paper compares against.
    """

    bandwidth_hz: float
    noise_figure_db: float = 6.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ChannelError(
                f"bandwidth must be positive, got {self.bandwidth_hz!r}")

    @property
    def noise_floor_dbm(self) -> float:
        """Noise power over the receiver bandwidth in dBm."""
        return noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)

    def snr_db(self, rssi_dbm: float) -> float:
        """SNR implied by an RSSI through this receiver."""
        return snr_from_rssi(rssi_dbm, self.bandwidth_hz, self.noise_figure_db)

    def rssi_dbm(self, snr_db: float) -> float:
        """RSSI needed to achieve a given SNR through this receiver."""
        return snr_db + self.noise_floor_dbm


@dataclass(frozen=True)
class ReceivedSignal:
    """A transmission arriving at the receiver with a given strength.

    Attributes:
        samples: unit-power complex baseband waveform.
        rssi_dbm: received signal strength.
        start_sample: arrival offset within the receive window.
    """

    samples: np.ndarray
    rssi_dbm: float
    start_sample: int = 0

    def __post_init__(self) -> None:
        if self.start_sample < 0:
            raise ChannelError(
                f"start sample must be >= 0, got {self.start_sample}")


def receive(signals: list[ReceivedSignal], budget: LinkBudget,
            rng: np.random.Generator,
            num_samples: int | None = None) -> np.ndarray:
    """Superpose transmissions and thermal noise into one receive window.

    Powers are normalized so the **noise floor has unit power**; each
    signal is scaled to ``10**((rssi - floor)/10)``.  Demodulators operate
    on relative levels only, so this normalization is exact and keeps the
    numerics well conditioned at the -130 dBm end of the sweeps.

    Args:
        signals: one entry per arriving transmission.
        budget: the receiver's noise bandwidth/figure.
        rng: random generator for the noise.
        num_samples: length of the receive window; defaults to the end of
            the latest-arriving signal.

    Raises:
        ChannelError: if no window length can be determined or a signal
            does not fit inside the requested window.
    """
    if num_samples is None:
        if not signals:
            raise ChannelError(
                "need num_samples when no signals are supplied")
        num_samples = max(s.start_sample + s.samples.size for s in signals)
    if num_samples <= 0:
        raise ChannelError(f"window must be positive, got {num_samples}")
    window = complex_noise(num_samples, 1.0, rng)
    floor_dbm = budget.noise_floor_dbm
    for signal in signals:
        end = signal.start_sample + signal.samples.size
        if end > num_samples:
            raise ChannelError(
                f"signal spanning [{signal.start_sample}, {end}) exceeds the "
                f"{num_samples}-sample window")
        samples = np.asarray(signal.samples, dtype=np.complex128)
        if samples.size == 0:
            continue
        power = float(np.mean(np.abs(samples) ** 2))
        if power <= 0.0:
            raise ChannelError("received signal must have positive power")
        target = dbm_to_mw(signal.rssi_dbm) / dbm_to_mw(floor_dbm)
        window[signal.start_sample:end] += samples * np.sqrt(target / power)
    return window
