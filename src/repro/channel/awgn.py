"""Additive white Gaussian noise channel.

The RF bench sweeps in the paper (Figs. 10-12, 15) vary received signal
strength over a cable/attenuator path, which at complex baseband is exactly
an AWGN channel at a controlled SNR.  This module provides that channel
with explicit, reproducible randomness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ChannelError
from repro.units import db_to_linear


def complex_noise(num_samples: int, power: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with given mean power."""
    if num_samples < 0:
        raise ChannelError(f"sample count must be >= 0, got {num_samples}")
    if power < 0.0:
        raise ChannelError(f"noise power must be non-negative, got {power!r}")
    sigma = np.sqrt(power / 2.0)
    return (rng.normal(0.0, sigma, num_samples)
            + 1j * rng.normal(0.0, sigma, num_samples))


def awgn(samples: np.ndarray, snr_db: float,
         rng: np.random.Generator,
         signal_power: float | None = None) -> np.ndarray:
    """Add white Gaussian noise at a target SNR.

    Args:
        samples: complex baseband signal.
        snr_db: desired ratio of signal power to in-band noise power.
        rng: numpy random generator (callers own the seed so experiments
            are reproducible).
        signal_power: reference signal power; measured from ``samples``
            when omitted.  Passing the nominal power explicitly matters
            when the block contains silence (e.g. gaps between beacons).

    Raises:
        ChannelError: for an empty signal or an all-zero signal with no
            explicit reference power.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size == 0:
        raise ChannelError("cannot add noise to an empty signal")
    if signal_power is None:
        signal_power = float(np.mean(np.abs(samples) ** 2))
    if signal_power <= 0.0:
        raise ChannelError(
            "signal power must be positive (pass signal_power= for signals "
            "containing silence)")
    noise_power = signal_power / db_to_linear(snr_db)
    return samples + complex_noise(samples.size, noise_power, rng)


def noise_only(num_samples: int, noise_power: float,
               rng: np.random.Generator) -> np.ndarray:
    """Generate a pure-noise segment (receiver listening to an idle band)."""
    return complex_noise(num_samples, noise_power, rng)
