"""Path-loss models for the campus testbed simulation.

Paper Fig. 7 deploys 20 tinySDR nodes across a campus; Fig. 14's OTA
programming times follow from each node's link quality.  We model those
links with the standard log-distance path-loss model (free space at a
reference distance plus a distance exponent and lognormal shadowing),
which is the usual abstraction for sub-GHz campus-scale LPWAN links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelError
from repro.units import free_space_path_loss_db


@dataclass(frozen=True)
class LogDistanceModel:
    """Log-distance path loss with optional lognormal shadowing.

    ``PL(d) = FSPL(d0) + 10*n*log10(d/d0) + X_sigma``

    Attributes:
        frequency_hz: carrier frequency.
        exponent: path-loss exponent ``n`` (2 = free space; campus
            deployments with foliage/buildings are typically 2.7-3.5).
        reference_distance_m: close-in reference distance ``d0``.
        shadowing_sigma_db: standard deviation of the lognormal shadowing
            term; 0 disables shadowing.
    """

    frequency_hz: float
    exponent: float = 2.9
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ChannelError(
                f"frequency must be positive, got {self.frequency_hz!r}")
        if self.exponent < 1.0:
            raise ChannelError(
                f"path loss exponent below 1 is unphysical, got {self.exponent!r}")
        if self.reference_distance_m <= 0.0:
            raise ChannelError(
                "reference distance must be positive, got "
                f"{self.reference_distance_m!r}")
        if self.shadowing_sigma_db < 0.0:
            raise ChannelError(
                f"shadowing sigma must be >= 0, got {self.shadowing_sigma_db!r}")

    def mean_path_loss_db(self, distance_m: float) -> float:
        """Deterministic (median) path loss at ``distance_m``."""
        if distance_m <= 0.0:
            raise ChannelError(f"distance must be positive, got {distance_m!r}")
        distance_m = max(distance_m, self.reference_distance_m)
        reference_loss = free_space_path_loss_db(
            self.reference_distance_m, self.frequency_hz)
        return reference_loss + 10.0 * self.exponent * math.log10(
            distance_m / self.reference_distance_m)

    def path_loss_db(self, distance_m: float,
                     rng: np.random.Generator | None = None) -> float:
        """Path loss including a shadowing draw when ``rng`` is provided."""
        loss = self.mean_path_loss_db(distance_m)
        if rng is not None and self.shadowing_sigma_db > 0.0:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return loss

    def received_power_dbm(self, tx_power_dbm: float, distance_m: float,
                           tx_gain_dbi: float = 0.0, rx_gain_dbi: float = 0.0,
                           rng: np.random.Generator | None = None) -> float:
        """RSSI at the receiver for a given transmit power and distance."""
        return (tx_power_dbm + tx_gain_dbi + rx_gain_dbi
                - self.path_loss_db(distance_m, rng))

    def range_for_sensitivity_m(self, tx_power_dbm: float,
                                sensitivity_dbm: float,
                                link_margin_db: float = 0.0) -> float:
        """Distance at which the median RSSI falls to sensitivity + margin."""
        budget_db = tx_power_dbm - sensitivity_dbm - link_margin_db
        reference_loss = free_space_path_loss_db(
            self.reference_distance_m, self.frequency_hz)
        excess_db = budget_db - reference_loss
        if excess_db < 0.0:
            raise ChannelError(
                "link budget does not close even at the reference distance")
        return self.reference_distance_m * 10.0 ** (
            excess_db / (10.0 * self.exponent))
