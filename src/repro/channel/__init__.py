"""Channel substrate: noise, path loss, link budgets and impairments."""

from repro.channel.awgn import awgn, complex_noise, noise_only
from repro.channel.impairments import (
    apply_cfo,
    apply_dc_offset,
    apply_iq_imbalance,
    apply_phase_noise,
    ppm_to_hz,
)
from repro.channel.link import LinkBudget, ReceivedSignal, receive
from repro.channel.pathloss import LogDistanceModel

__all__ = [
    "LinkBudget",
    "LogDistanceModel",
    "ReceivedSignal",
    "apply_cfo",
    "apply_dc_offset",
    "apply_iq_imbalance",
    "apply_phase_noise",
    "awgn",
    "complex_noise",
    "noise_only",
    "ppm_to_hz",
    "receive",
]
