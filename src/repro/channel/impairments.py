"""Front-end impairments: CFO, phase noise, I/Q imbalance, DC offset.

The AT86RF215 and SX1276 use independent crystals, so real links carry a
carrier frequency offset of tens of ppm; LoRa tolerates this thanks to its
preamble-based synchronization.  These impairments let the test suite
verify that tolerance and let the benches run with realistic offsets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ChannelError


def apply_cfo(samples: np.ndarray, offset_hz: float,
              sample_rate_hz: float, initial_phase_rad: float = 0.0) -> np.ndarray:
    """Rotate a baseband signal by a constant carrier frequency offset."""
    if sample_rate_hz <= 0.0:
        raise ChannelError(f"sample rate must be positive, got {sample_rate_hz!r}")
    samples = np.asarray(samples, dtype=np.complex128)
    n = np.arange(samples.size)
    rotation = np.exp(1j * (2.0 * np.pi * offset_hz / sample_rate_hz * n
                            + initial_phase_rad))
    return samples * rotation


def ppm_to_hz(ppm: float, carrier_hz: float) -> float:
    """Convert a crystal tolerance in ppm to a frequency offset in Hz."""
    if carrier_hz <= 0.0:
        raise ChannelError(f"carrier must be positive, got {carrier_hz!r}")
    return ppm * 1e-6 * carrier_hz


def apply_phase_noise(samples: np.ndarray, rms_rad: float,
                      rng: np.random.Generator,
                      correlation_samples: int = 64) -> np.ndarray:
    """Apply a random-walk phase noise process with given RMS per block.

    A simple Wiener-process model: adequate for verifying demodulator
    robustness, not for oscillator characterization.
    """
    if rms_rad < 0.0:
        raise ChannelError(f"phase noise RMS must be >= 0, got {rms_rad!r}")
    if correlation_samples < 1:
        raise ChannelError(
            f"correlation length must be >= 1, got {correlation_samples}")
    samples = np.asarray(samples, dtype=np.complex128)
    if rms_rad == 0.0 or samples.size == 0:
        return samples.copy()
    step_sigma = rms_rad / np.sqrt(correlation_samples)
    walk = np.cumsum(rng.normal(0.0, step_sigma, samples.size))
    return samples * np.exp(1j * walk)


def apply_iq_imbalance(samples: np.ndarray, gain_imbalance_db: float = 0.0,
                       phase_imbalance_rad: float = 0.0) -> np.ndarray:
    """Apply transmit-side gain/phase imbalance between the I and Q rails."""
    samples = np.asarray(samples, dtype=np.complex128)
    gain = 10.0 ** (gain_imbalance_db / 20.0)
    i = samples.real
    q = samples.imag * gain
    q_rotated = q * np.cos(phase_imbalance_rad) + i * np.sin(phase_imbalance_rad)
    return i + 1j * q_rotated


def apply_dc_offset(samples: np.ndarray, offset: complex) -> np.ndarray:
    """Add a complex DC offset (LO leakage at baseband)."""
    return np.asarray(samples, dtype=np.complex128) + offset
