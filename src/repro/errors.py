"""Exception hierarchy for the tinySDR reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause
while still distinguishing subsystem-specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class RadioError(ReproError):
    """The radio model rejected an operation (bad state, bad frequency...)."""


class FramingError(ReproError):
    """A serial stream could not be aligned to the expected word structure."""


class DemodulationError(ReproError):
    """A PHY receiver could not recover a packet or symbol stream."""


class CodingError(ReproError):
    """Forward-error-correction encode/decode failed."""


class FpgaError(ReproError):
    """The FPGA model rejected an operation (resources, configuration)."""


class ResourceExhaustedError(FpgaError):
    """A design does not fit in the FPGA's available resources."""


class MemoryError_(ReproError):
    """A memory model (SRAM, flash, FIFO) rejected an access."""


class FlashError(MemoryError_):
    """Flash memory model error (bad address, write to un-erased page...)."""


class FifoOverflowError(MemoryError_):
    """A FIFO was written while full - real-time deadline missed."""


class FifoUnderflowError(MemoryError_):
    """A FIFO was read while empty."""


class PowerError(ReproError):
    """Power-management violation (domain off, regulator overload...)."""


class OtaError(ReproError):
    """Over-the-air programming protocol failure."""


class CompressionError(OtaError):
    """miniLZO compression or decompression failed."""


class FaultInjectionError(ReproError):
    """A fault model was configured or driven inconsistently."""


class WatchdogTimeoutError(ReproError):
    """A watchdog deadline expired without a kick (the node hung)."""


class BrownoutInterrupt(FaultInjectionError):
    """Control-flow signal: the node browned out mid-transfer.

    Carries the sequence number the node will resume from once it
    reboots, so the hardened session can restart the transfer loop.
    """

    def __init__(self, next_sequence: int) -> None:
        super().__init__(f"node brownout; resume from seq={next_sequence}")
        self.next_sequence = next_sequence


class RollbackError(OtaError):
    """Falling back to the golden image failed (both banks corrupt)."""


class TransferAbandonedError(OtaError):
    """A node exhausted every retry/resume budget and was given up on."""


class JournalError(ReproError):
    """A job journal is corrupt, inconsistent, or cannot be replayed."""


class SimulatedCrashError(ReproError):
    """Control-flow signal: the chaos harness killed the service process.

    Raised by :class:`repro.service.resilience.CrashPlan` at a journal
    append boundary.  The service never catches it - the chaos driver
    does, then exercises ``CampaignService.recover``.
    """


class ProtocolError(ReproError):
    """A MAC/link protocol state machine received an invalid event."""


class MicError(ProtocolError):
    """LoRaWAN message integrity check failed."""


class ChannelError(ReproError):
    """Channel model misuse (mismatched lengths, invalid parameters)."""
