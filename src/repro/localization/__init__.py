"""Phase-based localization primitives (paper section 7)."""

from repro.localization.ranging import (
    AoaResult,
    RangingResult,
    angle_of_arrival,
    estimate_phase,
    multicarrier_range,
    received_tone,
    tone_phase_at_distance,
)

__all__ = [
    "AoaResult",
    "RangingResult",
    "angle_of_arrival",
    "estimate_phase",
    "multicarrier_range",
    "received_tone",
    "tone_phase_at_distance",
]
