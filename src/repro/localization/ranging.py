"""Phase-based ranging and angle-of-arrival estimation.

Paper section 7: "TinySDR could also be used to build localization
systems as it gives access to I/Q signals and therefore phase across
2.4 GHz and 900 MHz bands, which forms the basis for many localization
algorithms."  This module implements the two foundational primitives:

* **Multi-carrier phase ranging** - a transmitter emits tones at several
  carrier offsets; the received phase of each tone is
  ``phi_i = -2*pi*f_i*d/c (mod 2*pi)``, so the *slope* of phase across
  frequency encodes the distance unambiguously within
  ``c / frequency_step``.
* **Two-antenna angle of arrival** - the phase difference between two
  antennas spaced ``s`` apart is ``2*pi*s*sin(theta)/lambda``.

Both are measured from simulated I/Q with thermal noise, so the accuracy
versus SNR trade-off is real rather than asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn
from repro.errors import ConfigurationError
from repro.units import SPEED_OF_LIGHT_M_S


def tone_phase_at_distance(frequency_hz: float, distance_m: float) -> float:
    """Propagation phase of a carrier over a distance (radians, wrapped)."""
    if frequency_hz <= 0:
        raise ConfigurationError(
            f"frequency must be positive, got {frequency_hz!r}")
    if distance_m < 0:
        raise ConfigurationError(
            f"distance must be >= 0, got {distance_m!r}")
    cycles = frequency_hz * distance_m / SPEED_OF_LIGHT_M_S
    return -2.0 * math.pi * (cycles % 1.0)


def received_tone(frequency_hz: float, distance_m: float,
                  num_samples: int, snr_db: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Baseband samples of a ranging tone after propagation and noise."""
    phase = tone_phase_at_distance(frequency_hz, distance_m)
    clean = np.full(num_samples, np.exp(1j * phase), dtype=np.complex128)
    return awgn(clean, snr_db, rng)


def estimate_phase(samples: np.ndarray) -> float:
    """Maximum-likelihood phase of a constant tone: angle of the mean."""
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size == 0:
        raise ConfigurationError("cannot estimate phase of an empty capture")
    return float(np.angle(np.mean(samples)))


@dataclass(frozen=True)
class RangingResult:
    """Output of a multi-carrier ranging exchange.

    Attributes:
        distance_m: estimated distance.
        unambiguous_range_m: distance beyond which estimates alias.
        residual_rad: RMS phase-fit residual (quality indicator).
    """

    distance_m: float
    unambiguous_range_m: float
    residual_rad: float


def multicarrier_range(base_frequency_hz: float, step_hz: float,
                       num_carriers: int, distance_m: float,
                       snr_db: float, rng: np.random.Generator,
                       samples_per_tone: int = 256) -> RangingResult:
    """Estimate distance from the phase slope across hopped carriers.

    The transmitter hops over ``num_carriers`` tones spaced ``step_hz``;
    the receiver measures each tone's phase and fits the unwrapped
    phase-vs-frequency line whose slope is ``-2*pi*d/c``.

    Raises:
        ConfigurationError: for fewer than 2 carriers or non-positive
            steps.
    """
    if num_carriers < 2:
        raise ConfigurationError(
            f"need >= 2 carriers for a slope, got {num_carriers}")
    if step_hz <= 0:
        raise ConfigurationError(f"step must be positive, got {step_hz!r}")
    frequencies = base_frequency_hz + step_hz * np.arange(num_carriers)
    phases = np.empty(num_carriers)
    for index, frequency in enumerate(frequencies):
        capture = received_tone(float(frequency), distance_m,
                                samples_per_tone, snr_db, rng)
        phases[index] = estimate_phase(capture)
    unwrapped = np.unwrap(phases)
    # Least-squares slope of phase vs frequency.
    slope, intercept = np.polyfit(frequencies - frequencies[0], unwrapped, 1)
    estimated = -slope * SPEED_OF_LIGHT_M_S / (2.0 * math.pi)
    fitted = slope * (frequencies - frequencies[0]) + intercept
    residual = float(np.sqrt(np.mean((unwrapped - fitted) ** 2)))
    unambiguous = SPEED_OF_LIGHT_M_S / step_hz
    estimated = estimated % unambiguous
    return RangingResult(distance_m=float(estimated),
                         unambiguous_range_m=float(unambiguous),
                         residual_rad=residual)


@dataclass(frozen=True)
class AoaResult:
    """Output of a two-antenna angle-of-arrival measurement."""

    angle_rad: float
    phase_difference_rad: float


def angle_of_arrival(frequency_hz: float, antenna_spacing_m: float,
                     true_angle_rad: float, snr_db: float,
                     rng: np.random.Generator,
                     samples_per_antenna: int = 256) -> AoaResult:
    """Estimate the arrival angle from the inter-antenna phase difference.

    Raises:
        ConfigurationError: for spacing beyond lambda/2 (ambiguous) or
            invalid angles.
    """
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    if not 0 < antenna_spacing_m <= wavelength / 2 + 1e-12:
        raise ConfigurationError(
            f"antenna spacing must be in (0, lambda/2] = "
            f"(0, {wavelength / 2:.4f}] m, got {antenna_spacing_m!r}")
    if not -math.pi / 2 <= true_angle_rad <= math.pi / 2:
        raise ConfigurationError(
            f"angle must be within +-pi/2, got {true_angle_rad!r}")
    true_delta = (2.0 * math.pi * antenna_spacing_m
                  * math.sin(true_angle_rad) / wavelength)
    reference = awgn(np.ones(samples_per_antenna, dtype=np.complex128),
                     snr_db, rng)
    shifted = awgn(np.full(samples_per_antenna, np.exp(1j * true_delta),
                           dtype=np.complex128), snr_db, rng)
    measured_delta = float(np.angle(np.mean(shifted * np.conj(reference))))
    argument = measured_delta * wavelength / (2.0 * math.pi
                                              * antenna_spacing_m)
    argument = max(-1.0, min(1.0, argument))
    return AoaResult(angle_rad=math.asin(argument),
                     phase_difference_rad=measured_delta)
