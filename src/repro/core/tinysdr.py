"""The TinySDR platform facade.

One object composing every subsystem the way the board wires the chips
together: the AT86RF215 I/Q radio behind the LVDS interface, the ECP5
FPGA (configurator + resource model + whatever PHY design is loaded),
the MSP432 MCU, the SX1276 backbone radio, the external flash, and the
power management unit.  It exposes the operations a testbed user
performs - load a protocol personality, duty-cycle, transmit/receive
LoRa or BLE, take an OTA update - while the energy meter records what
every step costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.firmware import FirmwareImage, get_firmware
from repro.core.timing import platform_timings
from repro.errors import ConfigurationError, FpgaError
from repro.fpga.config import FpgaConfigurator
from repro.mcu.msp432 import McuMode, Msp432
from repro.ota.flash import FlashLayout, Mx25R6435F
from repro.ota.mac import OtaLink
from repro.ota.updater import OtaUpdater, UpdateReport
from repro.phy.ble.channels import (
    TINYSDR_HOP_DELAY_S,
    advertising_event,
    beacon_airtime_s,
)
from repro.phy.ble.gfsk import GfskModulator
from repro.phy.ble.packet import AdvPacket
from repro.phy.lora.demodulator import LoRaDemodulator
from repro.phy.lora.modulator import LoRaModulator
from repro.phy.lora.params import LoRaParams
from repro.power.meter import EnergyMeter
from repro.power.pmu import PlatformState, PowerManagementUnit
from repro.radio.at86rf215 import DEFAULT_FREQUENCY_HZ, At86Rf215

BLE_CENTER_FREQUENCY_HZ = 2_440_000_000
"""Mid-band 2.4 GHz carrier used for BLE beacon bursts (paper Fig. 13)."""


@dataclass(frozen=True)
class TransmitRecord:
    """Bookkeeping for one transmission.

    Attributes:
        samples: the baseband waveform handed to the radio.
        airtime_s: on-air duration.
        energy_j: battery energy the transmission consumed.
    """

    samples: np.ndarray
    airtime_s: float
    energy_j: float


class TinySdr:
    """A complete tinySDR node.

    Args:
        node_id: testbed identifier.
        frequency_hz: initial carrier (900 MHz ISM by default).
    """

    def __init__(self, node_id: int = 0,
                 frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> None:
        self.node_id = node_id
        self.radio = At86Rf215(frequency_hz=frequency_hz)
        self.mcu = Msp432()
        self.flash = Mx25R6435F()
        self.layout = FlashLayout()
        self.configurator = FpgaConfigurator()
        self.pmu = PowerManagementUnit()
        self.meter = EnergyMeter()
        self.firmware: FirmwareImage | None = None
        self._lora_params: LoRaParams | None = None
        self.asleep = True

    # -- lifecycle ---------------------------------------------------------

    def load_firmware(self, name: str) -> FirmwareImage:
        """Install a firmware personality into flash and boot the FPGA."""
        image = get_firmware(name)
        self.flash.write(self.layout.boot_offset, image.fpga_bitstream)
        self.flash.write(self.layout.mcu_offset, image.mcu_program)
        self.configurator.program(image.fpga_bitstream)
        self.firmware = image
        if self.radio.state.name == "SLEEP":
            self.radio.wake()
        self.asleep = False
        return image

    def wake(self) -> float:
        """Sleep -> operational: boot the FPGA and set up the radio.

        Returns the wakeup latency (paper Table 4: 22 ms, FPGA-bound).

        Raises:
            FpgaError: when no firmware has ever been loaded.
        """
        if self.firmware is None:
            raise FpgaError("no firmware loaded; call load_firmware() first")
        if not self.asleep:
            return 0.0
        bitstream = self.flash.read(self.layout.boot_offset,
                                    len(self.firmware.fpga_bitstream))
        boot_time = self.configurator.program(bitstream)
        if self.radio.state.name == "SLEEP":
            self.radio.wake()
        self.mcu.set_mode(McuMode.ACTIVE)
        wake_time = max(boot_time, 1.2e-3)
        self.pmu.enter_state(PlatformState.FPGA_BOOT)
        self.meter.record("wakeup", self.pmu.battery_power_w(), wake_time)
        self.asleep = False
        return wake_time

    def sleep(self) -> None:
        """Power-gate everything but the MCU's wakeup timer."""
        self.configurator.shutdown()
        self.radio.sleep()
        self.mcu.set_mode(McuMode.LPM3)
        self.pmu.enter_state(PlatformState.SLEEP)
        self.asleep = True

    def record_sleep(self, duration_s: float) -> None:
        """Account a sleep interval on the energy meter."""
        if not self.asleep:
            raise ConfigurationError("platform is not asleep")
        self.meter.record("sleep", self.pmu.battery_power_w(), duration_s)

    # -- LoRa --------------------------------------------------------------

    def configure_lora(self, params: LoRaParams) -> None:
        """Select the LoRa PHY configuration for subsequent TX/RX.

        Raises:
            FpgaError: if the loaded firmware is not a LoRa personality.
        """
        if self.firmware is None or "lora" not in self.firmware.name:
            raise FpgaError(
                "LoRa operations need a lora_* firmware personality")
        self._lora_params = params

    def transmit_lora(self, payload: bytes,
                      tx_power_dbm: float = 0.0) -> TransmitRecord:
        """Modulate and transmit one LoRa packet.

        Raises:
            ConfigurationError: when no LoRa configuration is selected.
        """
        if self._lora_params is None:
            raise ConfigurationError("call configure_lora() first")
        self.wake()
        modulator = LoRaModulator(self._lora_params, quantized=True)
        samples = modulator.modulate(payload)
        self.radio.set_tx_power(tx_power_dbm)
        self.radio.enter_tx()
        transmitted = self.radio.transmit(samples)
        airtime = samples.size / self._lora_params.sample_rate_hz
        self.pmu.enter_state(
            PlatformState.IQ_TX, tx_power_dbm=tx_power_dbm,
            fpga_luts=self.firmware.fpga_luts,
            spreading_factor=self._lora_params.spreading_factor)
        energy = self.pmu.battery_power_w() * airtime
        self.meter.record("lora_tx", self.pmu.battery_power_w(), airtime)
        return TransmitRecord(samples=transmitted, airtime_s=airtime,
                              energy_j=energy)

    def receive_lora(self, stream: np.ndarray):
        """Demodulate the first LoRa packet in a captured stream.

        Raises:
            ConfigurationError: when no LoRa configuration is selected.
        """
        if self._lora_params is None:
            raise ConfigurationError("call configure_lora() first")
        self.wake()
        self.radio.enter_rx()
        conditioned = self.radio.receive(np.asarray(stream))
        duration = conditioned.size / self._lora_params.sample_rate_hz
        self.pmu.enter_state(
            PlatformState.IQ_RX, fpga_luts=self.firmware.fpga_luts,
            spreading_factor=self._lora_params.spreading_factor)
        self.meter.record("lora_rx", self.pmu.battery_power_w(), duration)
        return LoRaDemodulator(self._lora_params).receive(conditioned)

    # -- BLE -----------------------------------------------------------------

    def transmit_ble_beacons(self, packet: AdvPacket,
                             tx_power_dbm: float = 0.0) -> list[TransmitRecord]:
        """Send one advertising event across the three channels.

        Hops 37 -> 38 -> 39 with the platform's 220 us switch delay
        (paper Fig. 13).

        Raises:
            FpgaError: when the BLE personality is not loaded.
        """
        if self.firmware is None or "ble" not in self.firmware.name:
            raise FpgaError(
                "BLE operations need the ble_beacon firmware personality")
        self.wake()
        airtime = beacon_airtime_s(len(packet.pdu()))
        schedule = advertising_event(airtime, TINYSDR_HOP_DELAY_S)
        modulator = GfskModulator()
        records = []
        self.radio.set_frequency(BLE_CENTER_FREQUENCY_HZ)
        self.radio.set_tx_power(tx_power_dbm)
        self.radio.enter_tx()
        self.pmu.enter_state(PlatformState.IQ_TX, tx_power_dbm=tx_power_dbm,
                             fpga_luts=self.firmware.fpga_luts)
        power = self.pmu.battery_power_w()
        for burst in schedule:
            bits = packet.air_bits(burst.channel)
            samples = modulator.modulate(np.asarray(bits))
            transmitted = self.radio.transmit(samples)
            self.meter.record("ble_tx", power, burst.duration_s)
            records.append(TransmitRecord(
                samples=transmitted, airtime_s=burst.duration_s,
                energy_j=power * burst.duration_s))
        return records

    # -- OTA ----------------------------------------------------------------

    def take_ota_update(self, firmware_name: str, link: OtaLink,
                        rng: np.random.Generator) -> UpdateReport:
        """Receive a firmware update over the backbone radio.

        Switches to the backbone, runs the full compress/transfer/
        decompress/reprogram pipeline, and accounts the energy.
        """
        image = get_firmware(firmware_name)
        updater = OtaUpdater(flash=self.flash, mcu=self.mcu,
                             layout=self.layout)
        self.pmu.enter_state(PlatformState.BACKBONE_RX)
        report = updater.update(image.fpga_bitstream, link, rng,
                                is_fpga_image=True)
        self.meter.record("ota_update",
                          report.node_energy_j / max(report.total_time_s,
                                                     1e-9),
                          report.total_time_s)
        self.firmware = image
        self.configurator = updater.configurator
        self.asleep = False
        return report

    # -- reporting ----------------------------------------------------------

    def timing_table(self):
        """Paper Table 4 for this platform."""
        return platform_timings().as_table()

    def energy_report(self) -> dict[str, float]:
        """Energy by activity label plus the total."""
        report = dict(self.meter.by_label())
        report["total_j"] = self.meter.total_energy_j
        return report
