"""The platform core: the TinySDR facade, timings, firmware and sweeps."""

from repro.core.firmware import FirmwareImage, available_firmware, get_firmware
from repro.core.sweeps import (
    SweepPoint,
    ble_beacon_error_rate,
    ble_bit_error_rate,
    concurrent_symbol_error_rates,
    find_sensitivity_dbm,
    lora_packet_error_rate,
    lora_symbol_error_rate,
    sweep_rssi,
)
from repro.core.timing import (
    OperationTimings,
    SMARTSENSE_WAKEUP_S,
    meets_ble_advertising_hop,
    meets_lorawan_rx1,
    platform_timings,
    wakeup_penalty_vs_commercial,
)
from repro.core.tinysdr import TinySdr, TransmitRecord

__all__ = [
    "FirmwareImage",
    "OperationTimings",
    "SMARTSENSE_WAKEUP_S",
    "SweepPoint",
    "TinySdr",
    "TransmitRecord",
    "available_firmware",
    "ble_beacon_error_rate",
    "ble_bit_error_rate",
    "concurrent_symbol_error_rates",
    "find_sensitivity_dbm",
    "get_firmware",
    "lora_packet_error_rate",
    "lora_symbol_error_rate",
    "meets_ble_advertising_hop",
    "meets_lorawan_rx1",
    "platform_timings",
    "sweep_rssi",
    "wakeup_penalty_vs_commercial",
]
