"""Firmware image registry.

A tinySDR "protocol personality" is an (FPGA bitstream, MCU program)
pair.  The registry generates deterministic synthetic images whose sizes
and compressibility track the paper's case studies, and names them so
the OTA benches and examples can request "the LoRa image" or "the BLE
image" symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fpga.bitstream import generate_bitstream, generate_mcu_program
from repro.fpga.resources import (
    ble_tx_design,
    concurrent_rx_design,
    lora_rx_design,
    lora_tx_design,
)


@dataclass(frozen=True)
class FirmwareImage:
    """One deployable firmware pair.

    Attributes:
        name: registry key.
        fpga_bitstream: the 579 kB configuration image.
        mcu_program: the MCU application image.
        fpga_luts: LUT count of the contained design (drives power and
            compressibility).
    """

    name: str
    fpga_bitstream: bytes
    mcu_program: bytes
    fpga_luts: int


def _build(name: str, luts: int, seed: int) -> FirmwareImage:
    from repro.fpga.resources import LFE5U_25F_LUTS
    return FirmwareImage(
        name=name,
        fpga_bitstream=generate_bitstream(luts / LFE5U_25F_LUTS, seed=seed),
        mcu_program=generate_mcu_program(seed=seed + 1000),
        fpga_luts=luts)


_REGISTRY_BUILDERS = {
    "lora_modem": lambda: _build(
        "lora_modem",
        lora_tx_design(8).luts + lora_rx_design(8).luts, seed=42),
    "lora_rx_only": lambda: _build(
        "lora_rx_only", lora_rx_design(8).luts, seed=44),
    "ble_beacon": lambda: _build(
        "ble_beacon", ble_tx_design().luts, seed=43),
    "concurrent_rx": lambda: _build(
        "concurrent_rx", concurrent_rx_design([8, 8]).luts, seed=45),
}

_CACHE: dict[str, FirmwareImage] = {}


def get_firmware(name: str) -> FirmwareImage:
    """Fetch (and cache) a named firmware image.

    Raises:
        ConfigurationError: for unknown names.
    """
    if name not in _REGISTRY_BUILDERS:
        raise ConfigurationError(
            f"unknown firmware {name!r}; available: "
            f"{sorted(_REGISTRY_BUILDERS)}")
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY_BUILDERS[name]()
    return _CACHE[name]


def available_firmware() -> list[str]:
    """Names of registered firmware images."""
    return sorted(_REGISTRY_BUILDERS)
