"""Platform operation timing (paper Table 4).

The measured latencies that govern MAC feasibility: 22 ms from sleep to
radio operation (dominated by the FPGA quad-SPI boot, which runs in
parallel with the 1.2 ms radio setup), 45/11 us TX<->RX turnarounds and
the 220 us frequency switch - all fast enough for IoT packet ACKs,
LoRaWAN receive windows and Bluetooth advertising hops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import programming_time_s
from repro.radio.at86rf215 import (
    FREQUENCY_SWITCH_S,
    RADIO_SETUP_S,
    RX_TO_TX_S,
    TX_TO_RX_S,
)


@dataclass(frozen=True)
class OperationTimings:
    """The five rows of paper Table 4 (seconds)."""

    sleep_to_radio_s: float
    radio_setup_s: float
    tx_to_rx_s: float
    rx_to_tx_s: float
    frequency_switch_s: float

    def as_table(self) -> list[tuple[str, float]]:
        """Rows in the paper's order, durations in milliseconds."""
        return [
            ("Sleep to Radio Operation", self.sleep_to_radio_s * 1e3),
            ("Radio Setup", self.radio_setup_s * 1e3),
            ("TX to RX", self.tx_to_rx_s * 1e3),
            ("RX to TX", self.rx_to_tx_s * 1e3),
            ("Frequency Switch", self.frequency_switch_s * 1e3),
        ]


def platform_timings() -> OperationTimings:
    """Derive Table 4 from the component models.

    The sleep-to-radio time is ``max(FPGA boot, radio setup)`` because
    the MCU performs the radio setup in parallel with the FPGA's
    configuration read (paper 5.1).
    """
    fpga_boot = programming_time_s()
    return OperationTimings(
        sleep_to_radio_s=max(fpga_boot, RADIO_SETUP_S),
        radio_setup_s=RADIO_SETUP_S,
        tx_to_rx_s=TX_TO_RX_S,
        rx_to_tx_s=RX_TO_TX_S,
        frequency_switch_s=FREQUENCY_SWITCH_S)


SMARTSENSE_WAKEUP_S = 5.5e-3
"""SmartSense temperature sensor wakeup, the paper's commercial
comparison: tinySDR's 22 ms is 'only a 4x longer wakeup time'."""


def wakeup_penalty_vs_commercial() -> float:
    """Ratio of tinySDR wakeup to the single-protocol commercial sensor."""
    return platform_timings().sleep_to_radio_s / SMARTSENSE_WAKEUP_S


def meets_lorawan_rx1(delay_s: float = 1.0) -> bool:
    """Whether the TX->RX turnaround meets LoRaWAN's RX1 window delay."""
    return platform_timings().tx_to_rx_s < delay_s


def meets_ble_advertising_hop(budget_s: float = 10e-3) -> bool:
    """Whether frequency switching is fast enough for advertising hops.

    Advertising events space packets by at most ~10 ms; tinySDR hops in
    220 us (Fig. 13).
    """
    return platform_timings().frequency_switch_s < budget_s
