"""Error-rate sweep harness.

Every PHY evaluation in the paper is a sweep of an error rate against
RSSI: packet error rate for the modulator (Fig. 10), chirp symbol error
rate for the demodulator (Fig. 11) and the concurrent receiver
(Fig. 15), bit error rate for BLE (Fig. 12).  This module provides those
measurements over the simulated signal chains with explicit sample
budgets and seeds, so benchmarks and tests share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import LinkBudget, ReceivedSignal, receive
from repro.errors import DemodulationError
from repro.phy.ble.gfsk import GfskConfig, GfskDemodulator, GfskModulator
from repro.phy.ble.packet import AdvPacket
from repro.phy.lora.chirp import chirp_train
from repro.phy.lora.concurrent import ConcurrentReceiver
from repro.phy.lora.demodulator import SymbolDemodulator
from repro.phy.lora.modulator import LoRaModulator
from repro.phy.lora.params import LoRaParams

DEFAULT_NOISE_FIGURE_DB = 6.0


@dataclass(frozen=True)
class SweepPoint:
    """One (RSSI, error-rate) measurement.

    Attributes:
        rssi_dbm: swept received signal strength.
        error_rate: measured error fraction.
        trials: number of symbols/bits/packets measured.
    """

    rssi_dbm: float
    error_rate: float
    trials: int


MAX_RESIDUAL_CFO_BINS = 0.4
"""Residual fractional-bin carrier offset after integer correction.
Independent TX/RX crystals leave the dechirped tone off the FFT grid by
up to half a bin; this scalloping is the implementation loss that puts
the measured waterfall at the SX1276's -126 dBm rather than the ~3 dB
lower ideal-synchronization bound."""


def _apply_residual_cfo(waveform: np.ndarray, params: LoRaParams,
                        rng: np.random.Generator) -> np.ndarray:
    """Rotate by a random fractional-bin CFO (uniform +-0.4 bin)."""
    fraction = rng.uniform(-MAX_RESIDUAL_CFO_BINS, MAX_RESIDUAL_CFO_BINS)
    offset_hz = fraction * params.bandwidth_hz / params.chips_per_symbol
    n = np.arange(waveform.size)
    return waveform * np.exp(
        2j * np.pi * offset_hz / params.sample_rate_hz * n)


def lora_symbol_error_rate(params: LoRaParams, rssi_dbm: float,
                           num_symbols: int, rng: np.random.Generator,
                           quantized: bool = True,
                           residual_cfo: bool = True) -> SweepPoint:
    """Chirp symbol error rate at one RSSI (the Fig. 11 measurement).

    Random symbols are rendered as chirps (quantized = tinySDR's FPGA
    pipeline), rotated by a residual fractional-bin CFO as independent
    crystals leave behind, passed through AWGN at the SNR the RSSI
    implies, and demodulated aligned - the paper's methodology of
    recording signals into FPGA memory and counting chirp symbol errors.
    """
    budget = LinkBudget(bandwidth_hz=params.sample_rate_hz,
                        noise_figure_db=DEFAULT_NOISE_FIGURE_DB)
    symbols = rng.integers(0, params.chips_per_symbol, num_symbols)
    waveform = chirp_train(params, symbols, quantized=quantized)
    if residual_cfo:
        waveform = _apply_residual_cfo(waveform, params, rng)
    stream = receive([ReceivedSignal(waveform, rssi_dbm)], budget, rng)
    demod = SymbolDemodulator(params)
    errors = 0
    sym = params.samples_per_symbol
    for index, expected in enumerate(symbols):
        detected, _ = demod.demodulate_upchirp(
            stream[index * sym:(index + 1) * sym])
        errors += int(detected != expected)
    return SweepPoint(rssi_dbm=rssi_dbm, error_rate=errors / num_symbols,
                      trials=num_symbols)


def lora_packet_error_rate(params: LoRaParams, rssi_dbm: float,
                           payload: bytes, num_packets: int,
                           rng: np.random.Generator,
                           quantized_tx: bool = True) -> SweepPoint:
    """Packet error rate at one RSSI (the Fig. 10 measurement).

    TinySDR's (quantized) modulator transmits; an SX1276-style receiver
    (ideal chirps, same demodulation pipeline) receives and checks the
    CRC.  A packet counts as an error on sync failure, header failure or
    CRC mismatch.
    """
    budget = LinkBudget(bandwidth_hz=params.sample_rate_hz,
                        noise_figure_db=DEFAULT_NOISE_FIGURE_DB)
    modulator = LoRaModulator(params, quantized=quantized_tx)
    from repro.phy.lora.demodulator import LoRaDemodulator
    demodulator = LoRaDemodulator(params)
    frame = modulator.frame_for_payload(payload)
    waveform = modulator.modulate_frame(frame)
    sym = params.samples_per_symbol
    pad = 4 * sym
    errors = 0
    for _ in range(num_packets):
        stream = receive(
            [ReceivedSignal(waveform, rssi_dbm, start_sample=pad)],
            budget, rng, num_samples=waveform.size + 2 * pad)
        try:
            decoded = demodulator.receive(
                stream, payload_symbols=len(frame.payload_symbols))
            ok = decoded.crc_ok is True and decoded.payload == payload
        except DemodulationError:
            ok = False
        errors += int(not ok)
    return SweepPoint(rssi_dbm=rssi_dbm, error_rate=errors / num_packets,
                      trials=num_packets)


def ble_bit_error_rate(rssi_dbm: float, num_bits: int,
                       rng: np.random.Generator,
                       config: GfskConfig | None = None,
                       quantized: bool = True) -> SweepPoint:
    """BLE GFSK bit error rate at one RSSI (the Fig. 12 measurement).

    The noise bandwidth is the full sampled band (4 MHz at 4x
    oversampling); the demodulator's channel filter then recovers the
    in-channel SNR, the same way the CC2650's receive chain does.
    """
    config = config or GfskConfig()
    budget = LinkBudget(bandwidth_hz=config.sample_rate_hz,
                        noise_figure_db=DEFAULT_NOISE_FIGURE_DB)
    bits = rng.integers(0, 2, num_bits)
    waveform = GfskModulator(config, quantized=quantized).modulate(bits)
    stream = receive([ReceivedSignal(waveform, rssi_dbm)], budget, rng)
    decided = GfskDemodulator(config).demodulate(stream, num_bits)
    errors = int(np.sum(decided != bits))
    return SweepPoint(rssi_dbm=rssi_dbm, error_rate=errors / num_bits,
                      trials=num_bits)


def ble_beacon_error_rate(rssi_dbm: float, num_packets: int,
                          rng: np.random.Generator,
                          adv_data: bytes = b"tinySDR beacon",
                          channel: int = 37) -> SweepPoint:
    """Whole-beacon BER measured over real advertising packets."""
    packet = AdvPacket(advertiser_address=bytes(6), adv_data=adv_data)
    bits = packet.air_bits(channel)
    config = GfskConfig()
    budget = LinkBudget(bandwidth_hz=config.sample_rate_hz,
                        noise_figure_db=DEFAULT_NOISE_FIGURE_DB)
    modulator = GfskModulator(config)
    demodulator = GfskDemodulator(config)
    waveform = modulator.modulate(np.asarray(bits))
    errors = 0
    total = 0
    for _ in range(num_packets):
        stream = receive([ReceivedSignal(waveform, rssi_dbm)], budget, rng)
        decided = demodulator.demodulate(stream, bits.size)
        errors += int(np.sum(decided != bits))
        total += bits.size
    return SweepPoint(rssi_dbm=rssi_dbm, error_rate=errors / total,
                      trials=total)


def concurrent_symbol_error_rates(
        config_a: LoRaParams, config_b: LoRaParams,
        rssi_a_dbm: float, rssi_b_dbm: float,
        duration_symbols_a: int, rng: np.random.Generator,
        quantized: bool = True) -> tuple[SweepPoint, SweepPoint]:
    """Per-branch SER with both transmissions in the air (Fig. 15).

    Both transmissions are rendered at the common receiver rate, summed
    at their individual RSSIs over thermal noise, and demodulated by the
    parallel branch receivers.
    """
    receiver = ConcurrentReceiver([config_a, config_b])
    fs = receiver.sample_rate_hz
    branch_a, branch_b = receiver.branch_params
    # Equal air duration: scale branch B's symbol count by the symbol ratio.
    duration_samples = duration_symbols_a * branch_a.samples_per_symbol
    symbols_b = duration_samples // branch_b.samples_per_symbol
    syms_a = rng.integers(0, branch_a.chips_per_symbol, duration_symbols_a)
    syms_b = rng.integers(0, branch_b.chips_per_symbol, symbols_b)
    wave_a = chirp_train(branch_a, syms_a, quantized=quantized)
    wave_b = chirp_train(branch_b, syms_b, quantized=quantized)
    budget = LinkBudget(bandwidth_hz=fs,
                        noise_figure_db=DEFAULT_NOISE_FIGURE_DB)
    stream = receive([ReceivedSignal(wave_a, rssi_a_dbm),
                      ReceivedSignal(wave_b, rssi_b_dbm)], budget, rng,
                     num_samples=duration_samples)
    results = receiver.demodulate(
        stream, [duration_symbols_a, symbols_b])
    errors_a = int(np.sum(results[0].symbols != syms_a))
    errors_b = int(np.sum(results[1].symbols != syms_b))
    return (SweepPoint(rssi_a_dbm, errors_a / duration_symbols_a,
                       duration_symbols_a),
            SweepPoint(rssi_b_dbm, errors_b / max(symbols_b, 1), symbols_b))


def sweep_rssi(measure, rssi_values_dbm) -> list[SweepPoint]:
    """Run a single-RSSI measurement callable over a sweep."""
    return [measure(float(rssi)) for rssi in rssi_values_dbm]


def find_sensitivity_dbm(points: list[SweepPoint],
                         threshold: float = 0.1) -> float:
    """Lowest swept RSSI whose error rate stays at or below ``threshold``.

    This is how the paper reads sensitivity off its waterfall curves
    (e.g. PER 10 % for LoRa).

    Raises:
        DemodulationError: when no swept point meets the threshold.
    """
    qualifying = [p.rssi_dbm for p in points if p.error_rate <= threshold]
    if not qualifying:
        raise DemodulationError(
            f"no swept RSSI reaches error rate <= {threshold}")
    return min(qualifying)
