"""Unit conversions and RF link-budget helpers.

This module centralizes the handful of conversions that every layer of the
stack needs: decibel arithmetic, thermal-noise floors, and LoRa airtime
math.  Keeping them in one place ensures the PHY simulations, the power
models and the benchmark harnesses all agree on the same physics.
"""

from __future__ import annotations

import math

BOLTZMANN_DBM_PER_HZ = -174.0
"""Thermal noise density kT at ~290 K, in dBm/Hz."""

SPEED_OF_LIGHT_M_S = 299_792_458.0


def db_to_linear(db: float) -> float:
    """Convert a decibel ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"cannot take log of non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.

    Raises:
        ValueError: if ``mw`` is not strictly positive.
    """
    if mw <= 0.0:
        raise ValueError(f"cannot express non-positive power {mw!r} mW in dBm")
    return 10.0 * math.log10(mw)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return dbm_to_mw(dbm) / 1e3


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm."""
    return mw_to_dbm(watts * 1e3)


def noise_floor_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor over ``bandwidth_hz`` seen through a receiver.

    ``P_N = -174 dBm/Hz + 10*log10(BW) + NF``.  This is the quantity the
    paper's sensitivity arguments hinge on: LoRa SF8/BW125 demodulates at
    roughly 9 dB *below* this floor thanks to its spreading gain.

    Args:
        bandwidth_hz: receiver noise bandwidth in Hz.
        noise_figure_db: receiver noise figure in dB.

    Raises:
        ValueError: if ``bandwidth_hz`` is not strictly positive.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    return BOLTZMANN_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def snr_from_rssi(rssi_dbm: float, bandwidth_hz: float,
                  noise_figure_db: float) -> float:
    """Signal-to-noise ratio implied by a received signal strength."""
    return rssi_dbm - noise_floor_dbm(bandwidth_hz, noise_figure_db)


def rssi_from_snr(snr_db: float, bandwidth_hz: float,
                  noise_figure_db: float) -> float:
    """Inverse of :func:`snr_from_rssi`."""
    return snr_db + noise_floor_dbm(bandwidth_hz, noise_figure_db)


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB.

    Raises:
        ValueError: if distance or frequency is not strictly positive.
    """
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m!r}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def combine_powers_dbm(*powers_dbm: float) -> float:
    """Sum incoherent signal powers expressed in dBm.

    Used for interference-plus-noise accounting in the concurrent-reception
    study (paper Fig. 15b): the effective noise is the linear sum of the
    thermal floor and each interferer.
    """
    if not powers_dbm:
        raise ValueError("need at least one power to combine")
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


def lora_symbol_duration_s(spreading_factor: int, bandwidth_hz: float) -> float:
    """Duration of one LoRa chirp symbol: ``2**SF / BW`` seconds."""
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    return (2 ** spreading_factor) / bandwidth_hz


def lora_bit_rate_bps(spreading_factor: int, bandwidth_hz: float,
                      coding_rate_denominator: int = 4) -> float:
    """Raw LoRa PHY bit rate ``SF * BW / 2**SF * (4 / CR_den)``.

    The paper quotes the uncoded form ``BW / 2**SF * SF``; pass
    ``coding_rate_denominator=4`` (i.e. CR 4/4, no coding) to get that.
    """
    if coding_rate_denominator < 4 or coding_rate_denominator > 8:
        raise ValueError(
            f"coding rate denominator must be in 4..8, got {coding_rate_denominator!r}")
    uncoded = spreading_factor * bandwidth_hz / (2 ** spreading_factor)
    return uncoded * 4.0 / coding_rate_denominator


def lora_airtime_s(payload_bytes: int, spreading_factor: int,
                   bandwidth_hz: float, coding_rate_denominator: int = 5,
                   preamble_symbols: int = 8, explicit_header: bool = True,
                   low_data_rate_optimize: bool | None = None,
                   crc: bool = True) -> float:
    """Time-on-air of a LoRa packet (Semtech AN1200.13 formula).

    This drives every OTA-programming time estimate in the reproduction of
    paper Fig. 14.

    Args:
        payload_bytes: MAC payload length in bytes.
        spreading_factor: LoRa SF, 6..12.
        bandwidth_hz: LoRa bandwidth in Hz.
        coding_rate_denominator: 5..8 for CR 4/5..4/8.
        preamble_symbols: number of programmed preamble symbols (the radio
            appends 4.25 symbols of sync/SFD on top).
        explicit_header: whether the PHY header is present.
        low_data_rate_optimize: force LDRO on/off; ``None`` selects it
            automatically when the symbol time exceeds 16 ms, as SX1276
            firmware does.
        crc: whether the 16-bit payload CRC is appended.

    Raises:
        ValueError: for out-of-range SF or coding rate.
    """
    if not 6 <= spreading_factor <= 12:
        raise ValueError(f"spreading factor must be 6..12, got {spreading_factor!r}")
    if not 5 <= coding_rate_denominator <= 8:
        raise ValueError(
            f"coding rate denominator must be 5..8, got {coding_rate_denominator!r}")
    t_sym = lora_symbol_duration_s(spreading_factor, bandwidth_hz)
    if low_data_rate_optimize is None:
        low_data_rate_optimize = t_sym > 16e-3
    de = 1 if low_data_rate_optimize else 0
    ih = 0 if explicit_header else 1
    crc_bits = 16 if crc else 0
    numerator = (8 * payload_bytes - 4 * spreading_factor + 28
                 + crc_bits - 20 * ih)
    denominator = 4 * (spreading_factor - 2 * de)
    payload_symbols = 8 + max(
        math.ceil(numerator / denominator) * coding_rate_denominator, 0)
    preamble_time = (preamble_symbols + 4.25) * t_sym
    return preamble_time + payload_symbols * t_sym


def duty_cycled_power_w(active_power_w: float, sleep_power_w: float,
                        active_time_s: float, period_s: float) -> float:
    """Average power of a duty-cycled device.

    The heart of the paper's argument: with a 30 uW sleep floor, average
    power collapses with the duty cycle, whereas a platform whose sleep
    power exceeds tinySDR's *transmit* power gains nothing.

    Raises:
        ValueError: if the active time exceeds the period or is negative.
    """
    if period_s <= 0.0:
        raise ValueError(f"period must be positive, got {period_s!r}")
    if not 0.0 <= active_time_s <= period_s:
        raise ValueError(
            f"active time {active_time_s!r} must lie within period {period_s!r}")
    duty = active_time_s / period_s
    return active_power_w * duty + sleep_power_w * (1.0 - duty)


def battery_lifetime_s(capacity_mah: float, voltage_v: float,
                       average_power_w: float) -> float:
    """Ideal battery lifetime in seconds for a given average power draw.

    Raises:
        ValueError: for non-positive capacity, voltage or power.
    """
    if capacity_mah <= 0.0 or voltage_v <= 0.0:
        raise ValueError("battery capacity and voltage must be positive")
    if average_power_w <= 0.0:
        raise ValueError(f"average power must be positive, got {average_power_w!r}")
    energy_j = capacity_mah * 1e-3 * 3600.0 * voltage_v
    return energy_j / average_power_w
