"""Radix-2 FFT implemented from scratch, modelling the FPGA IP core.

The LoRa demodulator multiplies each received symbol by a conjugate chirp
and takes an FFT whose length equals ``2**SF`` (paper Fig. 6b, "an FFT
block implemented using a standard IP core from Lattice").  We implement
the iterative radix-2 decimation-in-time algorithm directly - both because
the exercise demands building substrates from scratch and because it lets
us model the core's fixed-point behaviour (per-stage scaling) when needed.

``numpy.fft`` remains available for spectral *measurement* in
:mod:`repro.dsp.measure`; the demodulation path uses this module.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.cache import get_or_build
from repro.phy.backend.registry import get_backend


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversed index permutation for an ``n``-point radix-2 FFT."""
    if not is_power_of_two(n):
        raise ConfigurationError(f"FFT length must be a power of two, got {n}")
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_ = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        reversed_ = (reversed_ << 1) | (indices & 1)
        indices >>= 1
    return reversed_


def _build_fft_plan(length: int) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Build the ``(permutation, stage_twiddles)`` plan for one length.

    The per-stage twiddle arrays are *sliced from the master table*
    (``exp(-2j*pi*k/length)``), never recomputed per stage, so their
    values are bit-identical to the historical per-call
    ``twiddles[::stride][:half]`` slices the butterfly loop used.
    """
    permutation = bit_reverse_indices(length)
    master = np.exp(-2j * np.pi * np.arange(max(length // 2, 1)) / length)
    stages = []
    half = 1
    while half < length:
        span = half * 2
        stride = length // span
        stages.append(master[::stride][:half].copy())
        half = span
    return permutation, tuple(stages)


class Radix2Fft:
    """Iterative radix-2 DIT FFT with precomputed twiddle factors.

    Instances cache twiddles for one transform length, the way an FPGA core
    is configured for a fixed size; the demodulator keeps one per LoRa
    spreading factor.  The butterfly kernel itself is dispatched through
    the DSP backend registry (:mod:`repro.phy.backend`) selected at
    construction time.

    Args:
        length: transform size (power of two).
        backend: DSP backend name (``None`` consults the
            ``REPRO_DSP_BACKEND`` environment variable, defaulting to the
            pure-NumPy backend).
    """

    def __init__(self, length: int, backend: str | None = None) -> None:
        if not is_power_of_two(length):
            raise ConfigurationError(
                f"FFT length must be a power of two, got {length}")
        self.length = length
        # The bit-reverse permutation and per-stage twiddle tables are
        # the FFT "plan"; every instance of the same length shares one
        # frozen copy through the plan cache instead of recomputing it.
        self._permutation, self._stage_twiddles = get_or_build(
            ("fft_plan", length), lambda: _build_fft_plan(length))
        self._backend = get_backend(backend)

    @property
    def plan(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """The frozen ``(permutation, stage_twiddles)`` plan pair."""
        return self._permutation, self._stage_twiddles

    @property
    def backend_name(self) -> str:
        """Name of the DSP backend executing the butterflies."""
        return self._backend.name

    def forward(self, samples: np.ndarray) -> np.ndarray:
        """Compute the forward DFT of ``samples``.

        Raises:
            ConfigurationError: if the input length does not match the
                configured transform size.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size != self.length:
            raise ConfigurationError(
                f"expected {self.length} samples, got {samples.size}")
        return self._backend.fft_block(self._permutation,
                                       self._stage_twiddles,
                                       samples.reshape(1, -1))[0]

    def forward_block(self, blocks: np.ndarray) -> np.ndarray:
        """Compute the forward DFT of each row of a ``(count, length)`` matrix.

        Runs the same butterfly schedule as :meth:`forward` across all
        rows at once, so each row's result is bit-exact with a
        per-row :meth:`forward` call while amortizing the stage loop
        over the whole batch (the LoRa demodulator feeds one row per
        received symbol).

        Raises:
            ConfigurationError: if the input is not a 2-D array with
                rows of the configured transform size.
        """
        blocks = np.asarray(blocks, dtype=np.complex128)
        if blocks.ndim != 2 or blocks.shape[1] != self.length:
            raise ConfigurationError(
                f"expected a (count, {self.length}) matrix, got shape "
                f"{blocks.shape}")
        return self._backend.fft_block(self._permutation,
                                       self._stage_twiddles, blocks)

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Compute the inverse DFT (normalized by ``1/N``)."""
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        return np.conj(self.forward(np.conj(spectrum))) / self.length

    def magnitude_peak(self, samples: np.ndarray) -> tuple[int, float]:
        """Return ``(bin_index, magnitude)`` of the largest FFT bin.

        This is the demodulator's Symbol Detector (paper Fig. 6b): the peak
        bin index *is* the LoRa symbol value.
        """
        spectrum = self.forward(samples)
        magnitudes = np.abs(spectrum)
        index = int(np.argmax(magnitudes))
        return index, float(magnitudes[index])


_FFT_CACHE: dict[int, Radix2Fft] = {}


def fft(samples: np.ndarray) -> np.ndarray:
    """Convenience forward FFT using a cached :class:`Radix2Fft` core."""
    samples = np.asarray(samples)
    core = _FFT_CACHE.get(samples.size)
    if core is None:
        core = Radix2Fft(samples.size)
        _FFT_CACHE[samples.size] = core
    return core.forward(samples)


def ifft(spectrum: np.ndarray) -> np.ndarray:
    """Convenience inverse FFT using a cached :class:`Radix2Fft` core."""
    spectrum = np.asarray(spectrum)
    core = _FFT_CACHE.get(spectrum.size)
    if core is None:
        core = Radix2Fft(spectrum.size)
        _FFT_CACHE[spectrum.size] = core
    return core.inverse(spectrum)


def fft_butterfly_count(length: int) -> int:
    """Number of butterfly operations in an ``length``-point radix-2 FFT.

    Used by the FPGA resource model to scale LUT estimates with SF.
    """
    if not is_power_of_two(length):
        raise ConfigurationError(f"FFT length must be a power of two, got {length}")
    return (length // 2) * int(math.log2(length))
