"""Digital signal processing substrate.

Everything the tinySDR FPGA does to samples - NCO chirp synthesis, FIR
filtering, FFT demodulation, Gaussian pulse shaping - plus the fixed-point
quantization those blocks impose and the measurement tools used to
characterize the results.
"""

from repro.dsp.fft import Radix2Fft, fft, fft_butterfly_count, ifft
from repro.dsp.filters import StreamingFir, design_lowpass, filter_block
from repro.dsp.fixedpoint import (
    from_codes,
    quantization_snr_db,
    quantize,
    quantize_complex,
    to_codes,
)
from repro.dsp.measure import (
    envelope,
    estimate_snr_db,
    periodogram,
    scale_to_power,
    signal_power,
    signal_power_dbm,
    spurious_free_dynamic_range_db,
)
from repro.dsp.nco import Nco, NcoConfig
from repro.dsp.resample import decimate, interpolate, resample_power_of_two
from repro.dsp.pulse import (
    frequency_to_phase,
    gaussian_taps,
    shape_bits,
    upsample,
)

__all__ = [
    "Nco",
    "NcoConfig",
    "Radix2Fft",
    "StreamingFir",
    "decimate",
    "design_lowpass",
    "envelope",
    "estimate_snr_db",
    "fft",
    "fft_butterfly_count",
    "filter_block",
    "frequency_to_phase",
    "from_codes",
    "gaussian_taps",
    "ifft",
    "interpolate",
    "periodogram",
    "quantization_snr_db",
    "quantize",
    "quantize_complex",
    "resample_power_of_two",
    "scale_to_power",
    "shape_bits",
    "signal_power",
    "signal_power_dbm",
    "spurious_free_dynamic_range_db",
    "to_codes",
    "upsample",
]
