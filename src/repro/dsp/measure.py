"""Signal measurement: power, SNR and spectra.

These utilities stand in for the paper's bench instruments - the
MDO4104B-6 spectrum analyzer behind Fig. 8 and the Fluke meter behind the
power sweeps - on the simulated signal chains.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import linear_to_db


def signal_power(samples: np.ndarray) -> float:
    """Mean power of a complex baseband signal (linear units)."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise ConfigurationError("cannot measure power of an empty signal")
    return float(np.mean(np.abs(samples) ** 2))


def signal_power_dbm(samples: np.ndarray, full_scale_dbm: float = 0.0) -> float:
    """Signal power in dBm relative to a full-scale reference."""
    power = signal_power(samples)
    return linear_to_db(power) + full_scale_dbm


def scale_to_power(samples: np.ndarray, target_power: float) -> np.ndarray:
    """Scale a signal to a target mean power (linear units)."""
    if target_power < 0.0:
        raise ConfigurationError(
            f"target power must be non-negative, got {target_power!r}")
    current = signal_power(samples)
    if current == 0.0:
        raise ConfigurationError("cannot scale an all-zero signal")
    return np.asarray(samples) * np.sqrt(target_power / current)


def periodogram(samples: np.ndarray, sample_rate_hz: float,
                nfft: int | None = None,
                window: str = "hann") -> tuple[np.ndarray, np.ndarray]:
    """Windowed periodogram of a complex baseband signal.

    Returns ``(frequencies_hz, psd_db)`` with frequencies spanning
    ``[-Fs/2, Fs/2)`` (fftshifted) and the PSD normalized so that a
    full-scale tone reads 0 dB.

    Raises:
        ConfigurationError: for an empty signal or non-positive rate.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size == 0:
        raise ConfigurationError("cannot compute spectrum of an empty signal")
    if sample_rate_hz <= 0.0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz!r}")
    if nfft is None:
        nfft = samples.size
    if window == "hann":
        win = np.hanning(samples.size)
    elif window == "rectangular":
        win = np.ones(samples.size)
    else:
        raise ConfigurationError(f"unknown window {window!r}")
    coherent_gain = np.sum(win) / win.size
    windowed = samples * win / coherent_gain
    spectrum = np.fft.fftshift(np.fft.fft(windowed, n=nfft)) / samples.size
    psd = np.abs(spectrum) ** 2
    freqs = np.fft.fftshift(np.fft.fftfreq(nfft, d=1.0 / sample_rate_hz))
    floor = np.max(psd) * 1e-16 + 1e-300
    return freqs, 10.0 * np.log10(np.maximum(psd, floor))


def spurious_free_dynamic_range_db(samples: np.ndarray,
                                   sample_rate_hz: float,
                                   tone_hz: float,
                                   exclusion_hz: float) -> float:
    """SFDR: carrier power minus the strongest spur outside the exclusion.

    Fig. 8's claim is qualitative ("no unexpected harmonics introduced by
    the modulator"); this turns it into a number we can regress on.
    """
    freqs, psd_db = periodogram(samples, sample_rate_hz)
    in_tone = np.abs(freqs - tone_hz) <= exclusion_hz
    if not np.any(in_tone):
        raise ConfigurationError(
            f"tone at {tone_hz!r} Hz not inside the measured band")
    carrier_db = float(np.max(psd_db[in_tone]))
    spurs = psd_db[~in_tone]
    if spurs.size == 0:
        raise ConfigurationError("exclusion window covers the whole band")
    return carrier_db - float(np.max(spurs))


def estimate_snr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """SNR of ``noisy`` given the clean reference ``signal``."""
    signal = np.asarray(signal)
    noisy = np.asarray(noisy)
    if signal.shape != noisy.shape:
        raise ConfigurationError("signal and noisy arrays must match in shape")
    noise = noisy - signal
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0.0:
        raise ConfigurationError("signals are identical; SNR is unbounded")
    return linear_to_db(signal_power(signal) / noise_power)


def envelope(samples: np.ndarray, smoothing_samples: int = 1) -> np.ndarray:
    """Magnitude envelope, optionally smoothed with a moving average.

    Models the 2.4 GHz envelope detector used to time BLE channel hops in
    paper Fig. 13.
    """
    magnitude = np.abs(np.asarray(samples))
    if smoothing_samples < 1:
        raise ConfigurationError(
            f"smoothing window must be >= 1 sample, got {smoothing_samples}")
    if smoothing_samples == 1:
        return magnitude
    kernel = np.ones(smoothing_samples) / smoothing_samples
    return np.convolve(magnitude, kernel, mode="same")
