"""Fixed-point quantization helpers.

The tinySDR signal path is fixed-point end to end: the AT86RF215 exposes
13-bit I/Q samples, the FPGA chirp generator uses quantized sin/cos lookup
tables, and the FFT core works on bounded-width words.  These helpers model
that arithmetic on top of numpy float arrays so the PHY simulations exhibit
the same quantization noise the hardware does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def quantize(values: np.ndarray, bits: int, full_scale: float = 1.0,
             saturate: bool = True) -> np.ndarray:
    """Quantize real values to a signed two's-complement grid.

    Values are mapped to the grid ``full_scale * k / 2**(bits-1)`` for
    integer ``k`` in ``[-2**(bits-1), 2**(bits-1) - 1]``.

    Args:
        values: real array (any shape).
        bits: total word width including the sign bit; must be >= 2.
        full_scale: the analog value mapped to the most negative code.
        saturate: clip out-of-range values to the rails instead of wrapping.

    Returns:
        A float array on the quantized grid, same shape as ``values``.

    Raises:
        ConfigurationError: for a word width below 2 bits or a non-positive
            full-scale value.
    """
    if bits < 2:
        raise ConfigurationError(f"need at least 2 bits (sign + value), got {bits}")
    if full_scale <= 0.0:
        raise ConfigurationError(f"full scale must be positive, got {full_scale!r}")
    levels = 2 ** (bits - 1)
    codes = np.round(np.asarray(values, dtype=np.float64) / full_scale * levels)
    if saturate:
        codes = np.clip(codes, -levels, levels - 1)
    else:
        span = 2.0 * levels
        codes = ((codes + levels) % span) - levels
    return codes * full_scale / levels


def quantize_complex(values: np.ndarray, bits: int, full_scale: float = 1.0,
                     saturate: bool = True) -> np.ndarray:
    """Quantize the real and imaginary parts of a complex array."""
    values = np.asarray(values)
    real = quantize(values.real, bits, full_scale, saturate)
    imag = quantize(values.imag, bits, full_scale, saturate)
    return real + 1j * imag


def to_codes(values: np.ndarray, bits: int, full_scale: float = 1.0) -> np.ndarray:
    """Convert real values to integer ADC codes (saturating).

    Returns ``int64`` codes in ``[-2**(bits-1), 2**(bits-1) - 1]``.
    """
    if bits < 2:
        raise ConfigurationError(f"need at least 2 bits (sign + value), got {bits}")
    levels = 2 ** (bits - 1)
    codes = np.round(np.asarray(values, dtype=np.float64) / full_scale * levels)
    return np.clip(codes, -levels, levels - 1).astype(np.int64)


def from_codes(codes: np.ndarray, bits: int, full_scale: float = 1.0) -> np.ndarray:
    """Convert integer ADC codes back to analog values."""
    levels = 2 ** (bits - 1)
    return np.asarray(codes, dtype=np.float64) * full_scale / levels


def quantization_snr_db(bits: int) -> float:
    """Ideal quantization SNR for a full-scale sine: ``6.02*bits + 1.76`` dB."""
    if bits < 1:
        raise ConfigurationError(f"bits must be positive, got {bits}")
    return 6.02 * bits + 1.76
