"""Pulse shaping for GFSK modulation.

BLE advertisements are GFSK with BT = 0.5 and modulation index 0.45-0.55
(paper section 4.2): a binary frequency-shift keyed signal whose square
frequency pulses are smoothed by a Gaussian filter before the frequency is
integrated into phase.  This module provides the Gaussian pulse design and
the upsample-and-shape pipeline the paper describes: "First, we upsample
and apply a Gaussian filter to the bitstream."
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def gaussian_taps(bt_product: float, samples_per_symbol: int,
                  span_symbols: int = 3) -> np.ndarray:
    """Gaussian filter taps for GFSK pulse shaping.

    The filter is the Gaussian low-pass defined by the bandwidth-time
    product ``BT`` (0.5 for BLE), sampled over ``span_symbols`` symbol
    periods and normalized to unity sum so symbol amplitudes are preserved.

    Raises:
        ConfigurationError: for non-positive BT, oversampling or span.
    """
    if bt_product <= 0.0:
        raise ConfigurationError(f"BT product must be positive, got {bt_product!r}")
    if samples_per_symbol < 1:
        raise ConfigurationError(
            f"need at least 1 sample per symbol, got {samples_per_symbol}")
    if span_symbols < 1:
        raise ConfigurationError(f"span must be >= 1 symbol, got {span_symbols}")
    # Standard Gaussian pulse: h(t) ~ exp(-2*pi^2*B^2*t^2 / ln(2)) with
    # B = BT / T; time normalized to symbol periods.
    num_taps = span_symbols * samples_per_symbol + 1
    t = (np.arange(num_taps) - (num_taps - 1) / 2.0) / samples_per_symbol
    alpha = 2.0 * math.pi * bt_product / math.sqrt(math.log(2.0))
    taps = np.exp(-0.5 * (alpha * t) ** 2)
    return taps / np.sum(taps)


def upsample(bits: np.ndarray, samples_per_symbol: int,
             levels: tuple[float, float] = (-1.0, 1.0)) -> np.ndarray:
    """Map bits to NRZ levels and repeat each for one symbol period."""
    if samples_per_symbol < 1:
        raise ConfigurationError(
            f"need at least 1 sample per symbol, got {samples_per_symbol}")
    bits = np.asarray(bits, dtype=np.int64)
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ConfigurationError("bit array must contain only 0s and 1s")
    nrz = np.where(bits == 0, levels[0], levels[1]).astype(np.float64)
    return np.repeat(nrz, samples_per_symbol)


def shape_bits(bits: np.ndarray, bt_product: float, samples_per_symbol: int,
               span_symbols: int = 3) -> np.ndarray:
    """Upsample a bitstream and apply the Gaussian filter.

    Returns the smoothed NRZ frequency waveform, padded so that filter
    transients at both ends are included (length
    ``len(bits)*sps + span*sps``).
    """
    nrz = upsample(bits, samples_per_symbol)
    taps = gaussian_taps(bt_product, samples_per_symbol, span_symbols)
    # Extend with the edge values so the first/last symbols reach full
    # deviation instead of ramping from zero.
    if nrz.size == 0:
        return nrz
    pad = taps.size // 2
    padded = np.concatenate([
        np.full(pad, nrz[0]), nrz, np.full(pad, nrz[-1])])
    return np.convolve(padded, taps, mode="valid")


def frequency_to_phase(frequency_waveform: np.ndarray,
                       deviation_hz: float,
                       sample_rate_hz: float) -> np.ndarray:
    """Integrate a normalized frequency waveform into phase.

    ``phase[n] = 2*pi*deviation/Fs * cumsum(freq[:n])`` - the integration
    step of the paper's pipeline ("we integrate to get the phase").

    Raises:
        ConfigurationError: for non-positive deviation or sample rate.
    """
    if deviation_hz <= 0.0:
        raise ConfigurationError(
            f"deviation must be positive, got {deviation_hz!r}")
    if sample_rate_hz <= 0.0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz!r}")
    step = 2.0 * math.pi * deviation_hz / sample_rate_hz
    return step * np.cumsum(np.asarray(frequency_waveform, dtype=np.float64))
