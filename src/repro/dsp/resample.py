"""Multirate DSP: decimation and interpolation.

The concurrent receiver's secondary branches bring the shared wide
sample stream down to their own bandwidth with a decimator (the
``DECIMATOR`` block of the FPGA resource model); the radio's DAC path
upsamples baseband to the 4 MHz interface rate.  This module implements
both directions with proper anti-alias/anti-image filtering.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import design_lowpass
from repro.errors import ConfigurationError


def decimate(samples: np.ndarray, factor: int,
             num_taps: int = 49) -> np.ndarray:
    """Anti-alias filter and keep every ``factor``-th sample.

    Args:
        samples: input stream at rate ``fs``.
        factor: integer decimation ratio.
        num_taps: anti-alias FIR length.

    Returns:
        The stream at ``fs / factor``, aligned to the filter's group
        delay so decimated and original streams line up.

    Raises:
        ConfigurationError: for a factor below 1.
    """
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    samples = np.asarray(samples, dtype=np.complex128)
    if factor == 1:
        return samples.copy()
    taps = design_lowpass(num_taps, cutoff_hz=0.45 / factor,
                          sample_rate_hz=1.0)
    filtered = np.convolve(samples, taps)
    delay = (num_taps - 1) // 2
    aligned = filtered[delay:delay + samples.size]
    return aligned[::factor]


def interpolate(samples: np.ndarray, factor: int,
                num_taps: int = 49) -> np.ndarray:
    """Zero-stuff by ``factor`` and suppress the spectral images.

    Returns:
        The stream at ``fs * factor`` with unity passband gain.

    Raises:
        ConfigurationError: for a factor below 1.
    """
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    samples = np.asarray(samples, dtype=np.complex128)
    if factor == 1:
        return samples.copy()
    stuffed = np.zeros(samples.size * factor, dtype=np.complex128)
    stuffed[::factor] = samples
    taps = design_lowpass(num_taps, cutoff_hz=0.45 / factor,
                          sample_rate_hz=1.0) * factor
    filtered = np.convolve(stuffed, taps)
    delay = (num_taps - 1) // 2
    return filtered[delay:delay + stuffed.size]


def resample_power_of_two(samples: np.ndarray, from_rate_hz: float,
                          to_rate_hz: float) -> np.ndarray:
    """Rate-convert between power-of-two-related rates.

    The standard LoRa bandwidths are successive doublings, so the
    concurrent receiver only ever needs 2^k conversions.

    Raises:
        ConfigurationError: when the ratio is not a power of two.
    """
    if from_rate_hz <= 0 or to_rate_hz <= 0:
        raise ConfigurationError("rates must be positive")
    if to_rate_hz >= from_rate_hz:
        ratio = to_rate_hz / from_rate_hz
        factor = int(round(ratio))
        if abs(ratio - factor) > 1e-9 or factor & (factor - 1):
            raise ConfigurationError(
                f"ratio {ratio!r} is not a power of two")
        return interpolate(samples, factor)
    ratio = from_rate_hz / to_rate_hz
    factor = int(round(ratio))
    if abs(ratio - factor) > 1e-9 or factor & (factor - 1):
        raise ConfigurationError(f"ratio {ratio!r} is not a power of two")
    return decimate(samples, factor)
