"""FIR filter design and streaming evaluation.

The tinySDR LoRa demodulator (paper Fig. 6b) runs received I/Q samples
through a 14-tap FIR low-pass filter before buffering them.  This module
provides windowed-sinc design (the standard way such a filter is produced
for an FPGA), a block convolution entry point, and a streaming filter that
preserves state across calls the way the hardware pipeline does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.backend.registry import get_backend


def design_lowpass(num_taps: int, cutoff_hz: float, sample_rate_hz: float,
                   window: str = "hamming") -> np.ndarray:
    """Design a linear-phase FIR low-pass filter by the window method.

    Args:
        num_taps: filter length; the paper's demodulator uses 14.
        cutoff_hz: -6 dB cutoff frequency.
        sample_rate_hz: sampling rate of the signal the filter will see.
        window: ``"hamming"``, ``"hann"``, ``"blackman"`` or
            ``"rectangular"``.

    Returns:
        Tap array of length ``num_taps`` normalized to unity DC gain.

    Raises:
        ConfigurationError: for invalid lengths, cutoffs or window names.
    """
    if num_taps < 1:
        raise ConfigurationError(f"filter needs at least 1 tap, got {num_taps}")
    if sample_rate_hz <= 0.0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz!r}")
    if not 0.0 < cutoff_hz < sample_rate_hz / 2.0:
        raise ConfigurationError(
            f"cutoff {cutoff_hz!r} Hz must be within (0, Nyquist) for "
            f"{sample_rate_hz!r} Hz sampling")
    normalized = cutoff_hz / sample_rate_hz
    n = np.arange(num_taps, dtype=np.float64) - (num_taps - 1) / 2.0
    taps = 2.0 * normalized * np.sinc(2.0 * normalized * n)
    taps *= _window(window, num_taps)
    return taps / np.sum(taps)


def _window(name: str, length: int) -> np.ndarray:
    """Return a window function by name."""
    if name == "rectangular":
        return np.ones(length)
    if name == "hamming":
        return np.hamming(length)
    if name == "hann":
        return np.hanning(length)
    if name == "blackman":
        return np.blackman(length)
    raise ConfigurationError(f"unknown window {name!r}")


def filter_block(taps: np.ndarray, samples: np.ndarray,
                 backend: str | None = None) -> np.ndarray:
    """Filter one block of samples, returning the same-length aligned output.

    The output is delayed by the filter's group delay and truncated to the
    input length, so a caller can filter a buffered packet without having to
    track alignment (this is what the demodulator does with the FIFO
    contents).  Evaluation runs on the selected DSP backend; every
    backend produces bit-identical output (tap-major accumulation, see
    :mod:`repro.phy.backend`).
    """
    taps = np.asarray(taps, dtype=np.float64)
    samples = np.asarray(samples)
    if samples.size == 0:
        return samples.copy()
    return get_backend(backend).fir_aligned(taps, samples)


def filter_block_reference(taps: np.ndarray,
                           samples: np.ndarray) -> np.ndarray:
    """Scalar twin of :func:`filter_block` (tap-major accumulation order)."""
    taps = np.asarray(taps, dtype=np.float64)
    samples = np.asarray(samples)
    if samples.size == 0:
        return samples.copy()
    delay = (taps.size - 1) // 2
    out = np.empty(samples.size, dtype=np.complex128)
    for i in range(samples.size):
        acc = 0.0 + 0.0j
        for k in range(taps.size):
            m = i + delay - k
            if 0 <= m < samples.size:
                acc = acc + taps[k] * complex(samples[m])
        out[i] = acc
    return out


class StreamingFir:
    """FIR filter that preserves its delay line across calls.

    Mirrors the FPGA pipeline, where samples stream through the filter
    continuously rather than in isolated blocks.  The per-chunk kernel
    runs on the selected DSP backend; any chunking of the input yields
    the bit-exact whole-stream convolution.
    """

    def __init__(self, taps: np.ndarray, backend: str | None = None) -> None:
        taps = np.asarray(taps, dtype=np.float64)
        if taps.size < 1:
            raise ConfigurationError("filter needs at least 1 tap")
        self._taps = taps
        self._state = np.zeros(taps.size - 1, dtype=np.complex128)
        self._backend = get_backend(backend)

    @property
    def taps(self) -> np.ndarray:
        """The filter's tap array (copy)."""
        return self._taps.copy()

    def reset(self) -> None:
        """Clear the delay line."""
        self._state[:] = 0.0

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter a block of samples, carrying state from previous blocks."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size == 0:
            return samples.copy()
        output = self._backend.fir_carry(self._taps, self._state, samples)
        if self._state.size:
            extended = np.concatenate([self._state, samples])
            self._state = extended[-self._state.size:].copy()
        return output


def frequency_response(taps: np.ndarray, frequencies_hz: np.ndarray,
                       sample_rate_hz: float) -> np.ndarray:
    """Complex frequency response of an FIR filter at given frequencies."""
    if sample_rate_hz <= 0.0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz!r}")
    taps = np.asarray(taps, dtype=np.float64)
    omega = 2.0 * np.pi * np.asarray(frequencies_hz) / sample_rate_hz
    n = np.arange(taps.size)
    return np.exp(-1j * np.outer(omega, n)) @ taps
