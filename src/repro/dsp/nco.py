"""Numerically-controlled oscillator with quantized sin/cos lookup tables.

The paper's LoRa chirp generator (Fig. 6a) produces I/Q samples with "a
squared phase accumulator and two lookup tables for Sin and Cos".  This
module reproduces that structure: an integer phase accumulator of
configurable width addressing sin/cos tables of configurable depth and
amplitude resolution.  The imperfect orthogonality the paper measures in
Fig. 15a ("chirps are created in the digital domain with discrete frequency
steps which introduces some non-orthogonality") falls out of exactly this
quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.cache import get_or_build


@dataclass(frozen=True)
class NcoConfig:
    """Quantization parameters of an FPGA NCO.

    Attributes:
        phase_bits: width of the phase accumulator; phase resolution is
            ``2*pi / 2**phase_bits``.
        table_address_bits: log2 of the sin/cos LUT depth.  The accumulator's
            top bits address the table.
        amplitude_bits: word width of the LUT entries.
    """

    phase_bits: int = 32
    table_address_bits: int = 10
    amplitude_bits: int = 13

    def __post_init__(self) -> None:
        if self.phase_bits < 4 or self.phase_bits > 64:
            raise ConfigurationError(
                f"phase accumulator width must be 4..64 bits, got {self.phase_bits}")
        if self.table_address_bits < 2 or self.table_address_bits > self.phase_bits:
            raise ConfigurationError(
                "LUT address width must be 2..phase_bits, got "
                f"{self.table_address_bits}")
        if self.amplitude_bits < 2:
            raise ConfigurationError(
                f"amplitude width must be >= 2 bits, got {self.amplitude_bits}")


class Nco:
    """Phase-accumulator oscillator producing quantized complex samples.

    The oscillator holds an integer phase register.  Each call to
    :meth:`mix` or :meth:`tone` advances it by a per-sample phase increment
    and reads the quantized sin/cos tables.
    """

    def __init__(self, config: NcoConfig | None = None) -> None:
        self.config = config or NcoConfig()
        self._phase_modulus = 1 << self.config.phase_bits
        self._table_size = 1 << self.config.table_address_bits
        self._address_shift = self.config.phase_bits - self.config.table_address_bits
        # Sin/cos LUTs depend only on the config; all oscillators with
        # the same quantization share one frozen pair via the plan cache.
        self._cos_table, self._sin_table = get_or_build(
            ("nco_tables", self.config), self._build_tables)
        self._phase = 0

    def _build_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Quantized sin/cos lookup tables for this configuration."""
        angles = 2.0 * np.pi * np.arange(self._table_size) / self._table_size
        scale = (1 << (self.config.amplitude_bits - 1)) - 1
        cos_table = np.round(np.cos(angles) * scale) / scale
        sin_table = np.round(np.sin(angles) * scale) / scale
        return cos_table, sin_table

    @property
    def phase(self) -> int:
        """Current integer phase register value."""
        return self._phase

    def reset(self, phase: int = 0) -> None:
        """Reset the phase accumulator."""
        self._phase = phase % self._phase_modulus

    def phase_increment(self, frequency_hz: float, sample_rate_hz: float) -> int:
        """Integer phase increment for a target frequency.

        Raises:
            ConfigurationError: if the sample rate is not positive or the
                frequency violates Nyquist.
        """
        if sample_rate_hz <= 0.0:
            raise ConfigurationError(
                f"sample rate must be positive, got {sample_rate_hz!r}")
        if abs(frequency_hz) > sample_rate_hz / 2.0:
            raise ConfigurationError(
                f"frequency {frequency_hz!r} Hz exceeds Nyquist for "
                f"{sample_rate_hz!r} Hz sampling")
        return round(frequency_hz / sample_rate_hz * self._phase_modulus)

    def lookup(self, phases: np.ndarray) -> np.ndarray:
        """Read the quantized tables for an array of integer phases."""
        addresses = (np.asarray(phases, dtype=np.int64) % self._phase_modulus
                     ) >> self._address_shift
        return self._cos_table[addresses] + 1j * self._sin_table[addresses]

    def tone(self, frequency_hz: float, sample_rate_hz: float,
             num_samples: int) -> np.ndarray:
        """Generate a complex tone, advancing the internal phase register."""
        if num_samples < 0:
            raise ConfigurationError(f"sample count must be >= 0, got {num_samples}")
        increment = self.phase_increment(frequency_hz, sample_rate_hz)
        phases = self._phase + increment * np.arange(num_samples, dtype=np.int64)
        samples = self.lookup(phases)
        self._phase = int((self._phase + increment * num_samples)
                          % self._phase_modulus)
        return samples

    def from_phase_sequence(self, integer_phases: np.ndarray) -> np.ndarray:
        """Map an externally computed integer phase sequence to I/Q samples.

        The LoRa chirp generator computes a *squared* phase sequence and
        feeds it through the same LUTs; this entry point supports that.
        """
        return self.lookup(np.asarray(integer_phases, dtype=np.int64))

    def quadratic_phase(self, num_samples: int, initial_frequency_hz: float,
                        chirp_rate_hz_per_s: float,
                        sample_rate_hz: float) -> np.ndarray:
        """Integer phase sequence of a linear chirp (squared accumulator).

        ``phi[n] = 2*pi*(f0*n/Fs + 0.5*k*(n/Fs)**2)`` quantized to the
        accumulator grid, mirroring the FPGA's squared phase accumulator.
        """
        if sample_rate_hz <= 0.0:
            raise ConfigurationError(
                f"sample rate must be positive, got {sample_rate_hz!r}")
        n = np.arange(num_samples, dtype=np.float64)
        t = n / sample_rate_hz
        cycles = initial_frequency_hz * t + 0.5 * chirp_rate_hz_per_s * t * t
        return np.round(cycles * self._phase_modulus).astype(np.int64)
