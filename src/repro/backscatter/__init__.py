"""Backscatter reader/tag building blocks (paper section 7)."""

from repro.backscatter.system import (
    BackscatterConfig,
    BackscatterReader,
    BackscatterTag,
    reader_link,
)

__all__ = [
    "BackscatterConfig",
    "BackscatterReader",
    "BackscatterTag",
    "reader_link",
]
