"""Backscatter reader built from tinySDR primitives (paper section 7).

"Many of these proposals require either a single-tone generator or a
custom receiver to decode the backscatter transmissions.  TinySDR can be
used as a building block to achieve a battery-operated backscatter
signal generation and receiver."

The system modelled here is the classic subcarrier backscatter link:

* the **reader TX** emits a single tone (tinySDR's Fig. 8 modulator);
* a passive **tag** reflects that tone, switching its antenna impedance
  at a subcarrier frequency and ON-OFF keying data bits onto the
  switching - no radio of its own, just a multiplexer;
* the **reader RX** sees the huge direct carrier plus the tiny tag
  reflection shifted to +-subcarrier; it nulls the carrier, filters at
  the subcarrier offset, and envelope-detects the bits.

Self-interference, the tag's reflection loss and noise are all explicit
so the link budget is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import design_lowpass, filter_block
from repro.errors import ConfigurationError, DemodulationError
from repro.units import db_to_linear


@dataclass(frozen=True)
class BackscatterConfig:
    """Link parameters.

    Attributes:
        sample_rate_hz: reader baseband rate (the radio's 4 MHz).
        subcarrier_hz: tag switching frequency; moves the tag signal
            away from the carrier's phase noise skirt.
        bit_rate_bps: tag data rate (subcarrier cycles per bit =
            subcarrier / bit_rate).
        tag_loss_db: carrier-to-reflection conversion loss at the tag.
    """

    sample_rate_hz: float = 4e6  # units: Hz, the radio's 4 MHz I/Q rate
    subcarrier_hz: float = 100e3
    bit_rate_bps: float = 10e3
    tag_loss_db: float = 30.0

    def __post_init__(self) -> None:
        if self.subcarrier_hz <= 0 or self.subcarrier_hz \
                >= self.sample_rate_hz / 2:
            raise ConfigurationError(
                f"subcarrier {self.subcarrier_hz!r} must be inside "
                "(0, Nyquist)")
        if self.bit_rate_bps <= 0:
            raise ConfigurationError(
                f"bit rate must be positive, got {self.bit_rate_bps!r}")
        cycles = self.subcarrier_hz / self.bit_rate_bps
        if cycles < 2:
            raise ConfigurationError(
                "need >= 2 subcarrier cycles per bit, got "
                f"{cycles:.1f}")

    @property
    def samples_per_bit(self) -> int:
        """Samples in one tag bit."""
        return int(round(self.sample_rate_hz / self.bit_rate_bps))


class BackscatterTag:
    """A passive tag: ON-OFF keyed subcarrier reflection."""

    def __init__(self, config: BackscatterConfig) -> None:
        self.config = config

    def reflect(self, carrier: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Reflection waveform for a carrier and a tag bit sequence.

        A '1' bit reflects the carrier multiplied by a square-wave
        subcarrier; a '0' bit absorbs (no reflection).  The reflection is
        attenuated by the tag's conversion loss.

        Raises:
            ConfigurationError: if the carrier is shorter than the bits.
        """
        bits = np.asarray(bits, dtype=np.int64)
        carrier = np.asarray(carrier, dtype=np.complex128)
        spb = self.config.samples_per_bit
        needed = bits.size * spb
        if carrier.size < needed:
            raise ConfigurationError(
                f"carrier of {carrier.size} samples cannot carry "
                f"{bits.size} tag bits")
        n = np.arange(needed)
        square = np.sign(np.sin(
            2.0 * np.pi * self.config.subcarrier_hz
            / self.config.sample_rate_hz * n))
        gating = np.repeat(bits, spb).astype(np.float64)
        loss = np.sqrt(db_to_linear(-self.config.tag_loss_db))
        return carrier[:needed] * square * gating * loss


class BackscatterReader:
    """Reader-side receive chain: carrier null, subcarrier mix, OOK."""

    def __init__(self, config: BackscatterConfig) -> None:
        self.config = config
        self._lowpass = design_lowpass(
            63, cutoff_hz=config.bit_rate_bps * 1.5,
            sample_rate_hz=config.sample_rate_hz)

    def demodulate(self, received: np.ndarray, num_bits: int) -> np.ndarray:
        """Recover tag bits from the reader's receive stream.

        The stream contains the direct carrier (self-interference), the
        tag reflection at +-subcarrier, and noise.  The receiver removes
        the DC carrier (high-pass by mean subtraction), mixes the
        subcarrier down to DC, low-pass filters to the bit bandwidth and
        threshold-detects the envelope.

        Raises:
            DemodulationError: if the capture is too short.
        """
        received = np.asarray(received, dtype=np.complex128)
        spb = self.config.samples_per_bit
        needed = num_bits * spb
        if received.size < needed:
            raise DemodulationError(
                f"capture of {received.size} samples cannot supply "
                f"{num_bits} bits")
        working = received[:needed] - np.mean(received[:needed])
        n = np.arange(needed)
        mixed = working * np.exp(
            -2j * np.pi * self.config.subcarrier_hz
            / self.config.sample_rate_hz * n)
        envelope = np.abs(filter_block(self._lowpass, mixed))
        levels = envelope.reshape(num_bits, spb).mean(axis=1)
        threshold = (levels.max() + levels.min()) / 2.0
        return (levels > threshold).astype(np.int64)


def reader_link(config: BackscatterConfig, bits: np.ndarray,
                carrier_to_noise_db: float,
                self_interference_db: float,
                rng: np.random.Generator) -> np.ndarray:
    """Assemble one reader capture: carrier + tag reflection + noise.

    Args:
        config: link parameters.
        bits: tag data.
        carrier_to_noise_db: carrier power over the in-band noise floor.
        self_interference_db: how much direct carrier leaks into the
            receiver relative to unit power (0 dB = full).
        rng: noise source.
    """
    bits = np.asarray(bits, dtype=np.int64)
    num_samples = bits.size * config.samples_per_bit
    carrier = np.ones(num_samples, dtype=np.complex128)
    tag = BackscatterTag(config)
    reflection = tag.reflect(carrier, bits)
    leak = np.sqrt(db_to_linear(self_interference_db))
    noise_power = db_to_linear(-carrier_to_noise_db)
    noise = (rng.normal(0.0, np.sqrt(noise_power / 2), num_samples)
             + 1j * rng.normal(0.0, np.sqrt(noise_power / 2), num_samples))
    return carrier * leak + reflection + noise
