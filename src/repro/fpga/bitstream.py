"""Synthetic ECP5 bitstream generation.

The OTA evaluation (paper section 5.3) hinges on bitstream properties:
raw programming files are 579 kB regardless of design, but their miniLZO
compressibility tracks FPGA utilization - the LoRa demodulator design
(11 % of LUTs) compresses to 99 kB while the BLE design (3 %) compresses
to 40 kB.  We cannot ship Lattice's proprietary bitstreams, so this
module generates synthetic ones with the property that matters: a fixed
container size whose configured fraction carries high-entropy
configuration frames and whose unused fraction is structured fill.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

BITSTREAM_BYTES = 579 * 1024  # paper: section 5.3 (579 kB programming file)
"""'Raw programming files for our FPGA are 579 kB' (paper 5.3)."""

FRAME_BYTES = 64  # datasheet: Lattice ECP5 configuration frame granularity
_HEADER = b"\xff\x00LFE5U-25F-synthetic\x00"

ROUTING_OVERHEAD = 1.29  # paper: section 5.3 (compressed-size calibration)
"""Configuration-frame footprint per unit of LUT utilization.  A design
does not only configure its LUTs: routing, I/O and clocking multiply the
touched-frame fraction.  Solving the paper's two (utilization, compressed
size) data points - 11 % -> 99 kB and 3 % -> 40 kB - for a common factor
gives 1.29 for both, which is the consistency check behind this value."""

_MARKER_PERIOD = 288
"""Unused fabric is not perfectly uniform: frame addresses/CRCs recur at
this period, costing the compressor ~2 bytes each - the residual ~3 %
floor that keeps an empty bitstream from compressing to nothing."""


def generate_bitstream(utilization: float, seed: int = 0,
                       size_bytes: int = BITSTREAM_BYTES,
                       rng: np.random.Generator | None = None) -> bytes:
    """Create a synthetic bitstream for a design of given LUT utilization.

    The stream is a header followed by configuration frames.  A fraction
    ``utilization`` of the frames (spread uniformly, as placed logic is)
    contains pseudo-random configuration bits; the rest holds the
    repetitive default-frame pattern real unused fabric produces.

    Args:
        utilization: fraction of the fabric carrying logic, in [0, 1].
        seed: deterministic content seed (used when ``rng`` is omitted).
        size_bytes: total container size.
        rng: explicit generator; overrides ``seed`` when given.

    Raises:
        ConfigurationError: for utilization outside [0, 1] or a container
            smaller than the header.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ConfigurationError(
            f"utilization must be in [0, 1], got {utilization!r}")
    if size_bytes <= len(_HEADER):
        raise ConfigurationError(
            f"bitstream must exceed the {len(_HEADER)}-byte header")
    body_bytes = size_bytes - len(_HEADER)
    num_frames = body_bytes // FRAME_BYTES
    remainder = body_bytes - num_frames * FRAME_BYTES
    if rng is None:
        rng = np.random.default_rng(seed)
    touched = min(1.0, utilization * ROUTING_OVERHEAD)
    used = rng.random(num_frames) < touched
    frames = bytearray()
    for frame_used in used:
        if frame_used:
            frames += rng.integers(0, 256, FRAME_BYTES,
                                   dtype=np.uint8).tobytes()
        else:
            frames += bytes(FRAME_BYTES)
    frames += b"\x00" * remainder
    # Frame address/CRC markers recur through used and unused fabric alike.
    for offset in range(0, len(frames) - 1, _MARKER_PERIOD):
        marker = int(rng.integers(0, 1 << 16))
        frames[offset] = marker & 0xFF
        frames[offset + 1] = marker >> 8
    return _HEADER + bytes(frames)


def bitstream_fingerprint(bitstream: bytes) -> str:
    """Stable content hash for verifying flash/OTA integrity end to end."""
    return hashlib.sha256(bitstream).hexdigest()


def generate_mcu_program(size_bytes: int = 78 * 1024, seed: int = 1,
                         code_fraction: float = 0.35,
                         rng: np.random.Generator | None = None) -> bytes:
    """Synthetic MCU firmware image (paper: ~78 kB for LoRa and BLE).

    Compiled Cortex-M code mixes dense opcode regions with tables and
    zero-initialized data; ``code_fraction`` controls the high-entropy
    share, chosen so miniLZO lands near the paper's 24 kB compressed size.
    """
    if size_bytes <= 0:
        raise ConfigurationError(f"size must be positive, got {size_bytes}")
    if not 0.0 <= code_fraction <= 1.0:
        raise ConfigurationError(
            f"code fraction must be in [0, 1], got {code_fraction!r}")
    if rng is None:
        rng = np.random.default_rng(seed)
    code_bytes = int(size_bytes * code_fraction)
    code = rng.integers(0, 256, code_bytes, dtype=np.uint8).tobytes()
    filler = (b"\x00\x00\x00\x00\xaa\x55" * (size_bytes // 6 + 1))
    data = filler[:size_bytes - code_bytes]
    return code + data
