"""Sample FIFO built on the FPGA's embedded SRAM (paper section 3.2.2).

The deserialized I/Q samples are written into a FIFO implemented with the
ECP5's embedded block RAM; the paper notes the SRAM can buffer up to
126 kB and runs far faster than the 4 MHz sample rate, so it never limits
real-time processing.  This model enforces the capacity and surfaces
overflow/underflow - the failure mode a real-time pipeline must avoid.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError, FifoOverflowError, FifoUnderflowError

DEFAULT_CAPACITY_BYTES = 126 * 1024  # paper: section 3.1.1 (126 kB buffer)
BYTES_PER_SAMPLE = 4  # paper: Fig. 4 (one 32-bit word per I/Q sample)
"""13-bit I + 13-bit Q + framing, stored as one 32-bit word."""


class SampleFifo:
    """Bounded FIFO of complex samples with byte-capacity accounting."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES) -> None:
        if capacity_bytes < BYTES_PER_SAMPLE:
            raise ConfigurationError(
                f"capacity must hold at least one sample, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.capacity_samples = capacity_bytes // BYTES_PER_SAMPLE
        self._queue: deque[complex] = deque()
        self.overflow_count = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def free_samples(self) -> int:
        """Remaining capacity in samples."""
        return self.capacity_samples - len(self._queue)

    def write(self, samples: np.ndarray, drop_on_overflow: bool = False) -> int:
        """Append samples.

        Args:
            samples: complex samples to enqueue.
            drop_on_overflow: drop excess samples (counting them) instead
                of raising - the behaviour of a hardware FIFO whose write
                enable is simply ignored when full.

        Returns:
            Number of samples actually written.

        Raises:
            FifoOverflowError: on overflow when ``drop_on_overflow`` is
                False (a missed real-time deadline).
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size > self.free_samples:
            if not drop_on_overflow:
                raise FifoOverflowError(
                    f"writing {samples.size} samples into {self.free_samples} "
                    "free slots - real-time deadline missed")
            writable = self.free_samples
            self.overflow_count += samples.size - writable
            samples = samples[:writable]
        self._queue.extend(samples.tolist())
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
        return samples.size

    def read(self, count: int) -> np.ndarray:
        """Dequeue ``count`` samples.

        Raises:
            FifoUnderflowError: if fewer than ``count`` samples are queued.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count > len(self._queue):
            raise FifoUnderflowError(
                f"reading {count} samples from a FIFO holding "
                f"{len(self._queue)}")
        return np.asarray([self._queue.popleft() for _ in range(count)],
                          dtype=np.complex128)

    def clear(self) -> None:
        """Drop all queued samples (overflow/peak statistics persist)."""
        self._queue.clear()

    def max_buffer_duration_s(self, sample_rate_hz: float) -> float:
        """How long the FIFO can absorb a stalled consumer."""
        if sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be positive, got {sample_rate_hz!r}")
        return self.capacity_samples / sample_rate_hz
