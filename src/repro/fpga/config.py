"""FPGA configuration: quad-SPI boot from external flash.

The LFE5U-25F is SRAM-based and boots from the external MX25R6435F flash:
"it automatically reads its firmware directly from the flash memory using
a 62 MHz quad SPI interface and programs itself ... programming times of
22 ms" (paper section 3.4).  This module models that configuration path
and its timing, which dominates tinySDR's 22 ms wake-up latency (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, FpgaError
from repro.fpga.bitstream import BITSTREAM_BYTES, bitstream_fingerprint
from repro.power import profiles
from repro.sim import FPGA_CONFIG, Timeline

NODE_FPGA = "fpga"
"""Timeline component name for the ECP5 fabric."""

QUAD_SPI_CLOCK_HZ = 62_000_000  # paper: section 3.1.3 (62 MHz quad-SPI)
QUAD_SPI_LANES = 4  # paper: section 3.1.3 (quad-SPI configuration port)

CONFIG_OVERHEAD_S = 3.3e-3  # paper: section 5.3 (22 ms total calibration)
"""Preamble/wake/CRC-check overhead beyond raw bit transfer, calibrated so
a 579 kB image completes in the paper's 22 ms."""


def transfer_time_s(num_bytes: int,
                    clock_hz: float = QUAD_SPI_CLOCK_HZ,
                    lanes: int = QUAD_SPI_LANES) -> float:
    """Raw quad-SPI transfer time for ``num_bytes``.

    Raises:
        ConfigurationError: for non-positive sizes, clocks or lane counts.
    """
    if num_bytes <= 0:
        raise ConfigurationError(f"byte count must be positive, got {num_bytes}")
    if clock_hz <= 0 or lanes <= 0:
        raise ConfigurationError("clock and lane count must be positive")
    bits = num_bytes * 8
    return bits / (clock_hz * lanes)


def programming_time_s(bitstream_bytes: int = BITSTREAM_BYTES) -> float:
    """Total FPGA configuration time: transfer plus fixed overhead."""
    return transfer_time_s(bitstream_bytes) + CONFIG_OVERHEAD_S


@dataclass
class FpgaConfigurator:
    """Stateful FPGA configuration port.

    Tracks which bitstream is loaded and whether the fabric is running,
    so the platform model can enforce 'no samples before configuration'.
    """

    configured: bool = False
    active_fingerprint: str | None = None
    timeline: Timeline = field(default_factory=Timeline, repr=False,
                               compare=False)

    @property
    def total_config_time_s(self) -> float:
        """Cumulative configuration time, replayed from the ledger."""
        return self.timeline.time_s(kinds={FPGA_CONFIG},
                                    component=NODE_FPGA)

    @property
    def config_count(self) -> int:
        """Boots performed, counted from the ledger."""
        return self.timeline.count(kinds={FPGA_CONFIG},
                                   component=NODE_FPGA)

    def program(self, bitstream: bytes) -> float:
        """Load a bitstream; returns the configuration time consumed.

        Raises:
            FpgaError: for an empty bitstream.
        """
        if not bitstream:
            raise FpgaError("cannot configure from an empty bitstream")
        elapsed = programming_time_s(len(bitstream))
        self.configured = True
        self.active_fingerprint = bitstream_fingerprint(bitstream)
        self.timeline.record(FPGA_CONFIG, NODE_FPGA,
                             label=f"{len(bitstream)} B quad-SPI load",
                             duration_s=elapsed,
                             power_w=profiles.FPGA_STATIC_W)
        return elapsed

    def shutdown(self) -> None:
        """Power-gate the fabric; SRAM configuration is lost."""
        self.configured = False
        self.active_fingerprint = None

    def require_configured(self) -> None:
        """Raise unless a design is loaded and running.

        Raises:
            FpgaError: when the fabric is unconfigured.
        """
        if not self.configured:
            raise FpgaError(
                "FPGA is not configured; program a bitstream first")
