"""FPGA substrate: resources, sample FIFO, bitstreams and configuration."""

from repro.fpga.bitstream import (
    BITSTREAM_BYTES,
    bitstream_fingerprint,
    generate_bitstream,
    generate_mcu_program,
)
from repro.fpga.config import (
    CONFIG_OVERHEAD_S,
    FpgaConfigurator,
    QUAD_SPI_CLOCK_HZ,
    programming_time_s,
    transfer_time_s,
)
from repro.fpga.fifo import (
    BYTES_PER_SAMPLE,
    DEFAULT_CAPACITY_BYTES,
    SampleFifo,
)
from repro.fpga.resources import (
    Block,
    DesignReport,
    FFT_LUTS_BY_SF,
    LFE5U_25F_BRAM_BITS,
    LFE5U_25F_LUTS,
    ble_tx_design,
    concurrent_rx_design,
    fft_block,
    lora_rx_design,
    lora_tx_design,
    table6,
)

__all__ = [
    "BITSTREAM_BYTES",
    "BYTES_PER_SAMPLE",
    "Block",
    "CONFIG_OVERHEAD_S",
    "DEFAULT_CAPACITY_BYTES",
    "DesignReport",
    "FFT_LUTS_BY_SF",
    "FpgaConfigurator",
    "LFE5U_25F_BRAM_BITS",
    "LFE5U_25F_LUTS",
    "QUAD_SPI_CLOCK_HZ",
    "SampleFifo",
    "ble_tx_design",
    "bitstream_fingerprint",
    "concurrent_rx_design",
    "fft_block",
    "generate_bitstream",
    "generate_mcu_program",
    "lora_rx_design",
    "lora_tx_design",
    "programming_time_s",
    "table6",
    "transfer_time_s",
]
