"""FPGA resource accounting for the LFE5U-25F (paper Table 6).

TinySDR's FPGA is a Lattice ECP5 LFE5U-25F with 24k LUTs.  The paper
reports the utilization of each case-study design: the LoRa modulator
takes 976 LUTs (4 %) at every SF; the demodulator grows with SF from
2656 LUTs (10 %, SF6) to 2818 LUTs (11 %, SF12) because the FFT block
scales; BLE beacon generation takes 3 %; and the concurrent dual-LoRa
receiver takes 17 %.

The model composes designs from a library of blocks whose LUT budgets
are calibrated so the composed totals reproduce Table 6 exactly, while
still letting users price out *new* designs (more branches, other SFs)
the way the paper's section 6 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ResourceExhaustedError

LFE5U_25F_LUTS = 24_000  # paper: section 3.1.1 ('24 k logic units')
"""Logic capacity of the LFE5U-25F ('24 k logic units', paper 3.1.1)."""

LFE5U_25F_BRAM_BITS = 1_008 * 1024  # datasheet: Lattice ECP5 LFE5U-25F sysMEM
"""Embedded SRAM: the paper buffers up to 126 kB = 1008 kbit."""


@dataclass(frozen=True)
class Block:
    """One synthesizable block and its resource cost.

    Attributes:
        name: block identifier.
        luts: 4-input LUT count.
        bram_bits: embedded RAM bits.
    """

    name: str
    luts: int
    bram_bits: int = 0

    def __post_init__(self) -> None:
        if self.luts < 0 or self.bram_bits < 0:
            raise ConfigurationError(
                f"block {self.name!r} has negative resources")


# Block library.  LUT budgets are calibrated so composed designs land on
# the totals of paper: Table 6; see the design functions below.
IQ_DESERIALIZER = Block("iq_deserializer", luts=140)
IQ_SERIALIZER = Block("iq_serializer", luts=160)
FIR_LOWPASS_14TAP = Block("fir_lowpass_14tap", luts=390)
FIFO_CONTROLLER = Block("fifo_controller", luts=90, bram_bits=64 * 1024 * 8)
COMPLEX_MULTIPLIER = Block("complex_multiplier", luts=120)
CHIRP_GENERATOR = Block("chirp_generator", luts=420, bram_bits=2 * 1024 * 13)
SYMBOL_DETECTOR = Block("symbol_detector", luts=130)
PACKET_GENERATOR = Block("packet_generator", luts=180)
TX_CONTROL = Block("tx_control", luts=156)
RX_CONTROL = Block("rx_control", luts=110)
PLL_CLOCKING = Block("pll_clocking", luts=60)

# BLE blocks (together 720 LUTs = 3 % of the device, paper: section 5.2).
BLE_CRC24 = Block("ble_crc24", luts=80)
BLE_WHITENER = Block("ble_whitener", luts=50)
BLE_HEADER_BUILDER = Block("ble_header_builder", luts=70)
BLE_GAUSSIAN_FILTER = Block("ble_gaussian_filter", luts=150)
BLE_PHASE_INTEGRATOR = Block("ble_phase_integrator", luts=50)
BLE_NCO = Block("ble_nco", luts=100, bram_bits=2 * 1024 * 13)
BLE_TX_CONTROL = Block("ble_tx_control", luts=60)

# Secondary-branch blocks of the concurrent receiver: a second parameter
# set for the shared chirp tables, a decimator bringing the wide stream
# down to the branch bandwidth, and an FFT that reuses the primary
# branch's twiddle ROMs.  Calibrated against paper: Table 6.
DECIMATOR = Block("decimator", luts=60)
CHIRP_GENERATOR_SECONDARY = Block("chirp_generator_secondary", luts=140)
FFT_TWIDDLE_SHARING_LUTS = 380  # paper: Table 6 (concurrent RX calibration)
"""LUTs saved per secondary FFT by reusing the primary's twiddle ROMs."""

# FFT core LUT usage per spreading factor, calibrated from paper: Table 6
# as fft(SF) = RX_total(SF) - fixed RX pipeline (1400 LUTs).
FFT_LUTS_BY_SF = {
    6: 1256, 7: 1270, 8: 1300, 9: 1342, 10: 1386, 11: 1394, 12: 1418,
}


def fft_block(spreading_factor: int, oversampling: int = 1) -> Block:
    """The Lattice FFT IP core sized for ``2**SF * oversampling`` points.

    Each doubling of the transform length adds one butterfly stage; the
    per-stage increment is taken from the calibrated SF ladder.
    """
    if not 6 <= spreading_factor <= 12:
        raise ConfigurationError(
            f"spreading factor must be 6..12, got {spreading_factor}")
    if oversampling < 1 or (oversampling & (oversampling - 1)):
        raise ConfigurationError(
            f"oversampling must be a power of two, got {oversampling}")
    luts = FFT_LUTS_BY_SF[spreading_factor]
    extra_stages = oversampling.bit_length() - 1
    per_stage = 24  # mean Table 6 increment per added stage
    length = (2 ** spreading_factor) * oversampling
    return Block(f"fft_{length}", luts=luts + per_stage * extra_stages,
                 bram_bits=length * 2 * 16)


@dataclass(frozen=True)
class DesignReport:
    """Resource usage summary of a composed design."""

    name: str
    blocks: tuple[Block, ...]

    @property
    def luts(self) -> int:
        """Total LUTs."""
        return sum(b.luts for b in self.blocks)

    @property
    def bram_bits(self) -> int:
        """Total BRAM bits."""
        return sum(b.bram_bits for b in self.blocks)

    @property
    def lut_utilization(self) -> float:
        """Fraction of the LFE5U-25F's LUTs consumed."""
        return self.luts / LFE5U_25F_LUTS

    def check_fits(self) -> None:
        """Raise if the design exceeds the device.

        Raises:
            ResourceExhaustedError: when LUTs or BRAM run out.
        """
        if self.luts > LFE5U_25F_LUTS:
            raise ResourceExhaustedError(
                f"design {self.name!r} needs {self.luts} LUTs, device has "
                f"{LFE5U_25F_LUTS}")
        if self.bram_bits > LFE5U_25F_BRAM_BITS:
            raise ResourceExhaustedError(
                f"design {self.name!r} needs {self.bram_bits} BRAM bits, "
                f"device has {LFE5U_25F_BRAM_BITS}")


def lora_tx_design(spreading_factor: int = 8) -> DesignReport:
    """LoRa modulator design (Table 6: 976 LUTs at every SF).

    The modulator's chirp generator is SF-agnostic ("supports all LoRa
    configurations with different SF with no additional cost").
    """
    if not 6 <= spreading_factor <= 12:
        raise ConfigurationError(
            f"spreading factor must be 6..12, got {spreading_factor}")
    return DesignReport(
        name=f"lora_tx_sf{spreading_factor}",
        blocks=(PACKET_GENERATOR, CHIRP_GENERATOR, IQ_SERIALIZER,
                PLL_CLOCKING, TX_CONTROL))


def lora_rx_design(spreading_factor: int,
                   oversampling: int = 1) -> DesignReport:
    """LoRa demodulator design (Table 6: 2656-2818 LUTs, SF 6-12)."""
    return DesignReport(
        name=f"lora_rx_sf{spreading_factor}",
        blocks=(IQ_DESERIALIZER, FIR_LOWPASS_14TAP, FIFO_CONTROLLER,
                COMPLEX_MULTIPLIER, CHIRP_GENERATOR,
                fft_block(spreading_factor, oversampling),
                SYMBOL_DETECTOR, RX_CONTROL))


def ble_tx_design() -> DesignReport:
    """BLE beacon generator design (paper: 3 % of the FPGA)."""
    return DesignReport(
        name="ble_tx",
        blocks=(BLE_HEADER_BUILDER, BLE_CRC24, BLE_WHITENER,
                BLE_GAUSSIAN_FILTER, BLE_PHASE_INTEGRATOR, BLE_NCO,
                IQ_SERIALIZER, BLE_TX_CONTROL))


def concurrent_rx_design(spreading_factors: list[int]) -> DesignReport:
    """Parallel multi-branch LoRa receiver (paper section 6: 17 % for two).

    The I/Q deserializer, FIR front-end, FIFO and control are shared.
    The primary branch is a full demodulator; each further branch adds a
    decimator (bringing the shared wide stream down to its bandwidth), a
    secondary chirp parameter set reusing the sin/cos tables, a complex
    multiplier, an FFT sharing the primary's twiddle ROMs, and a symbol
    detector.

    Args:
        spreading_factors: one SF per branch (first entry is primary).

    Raises:
        ConfigurationError: for an empty branch list.
        ResourceExhaustedError: if the composition exceeds the device.
    """
    if not spreading_factors:
        raise ConfigurationError("need at least one branch")
    blocks: list[Block] = [IQ_DESERIALIZER, FIR_LOWPASS_14TAP,
                           FIFO_CONTROLLER, RX_CONTROL]
    for index, sf in enumerate(spreading_factors):
        fft = fft_block(sf, 1)
        if index == 0:
            blocks.extend([CHIRP_GENERATOR, COMPLEX_MULTIPLIER, fft,
                           SYMBOL_DETECTOR])
        else:
            shared_fft = Block(
                fft.name + "_shared",
                luts=max(fft.luts - FFT_TWIDDLE_SHARING_LUTS, 0),
                bram_bits=fft.bram_bits)
            blocks.extend([DECIMATOR, CHIRP_GENERATOR_SECONDARY,
                           COMPLEX_MULTIPLIER, shared_fft, SYMBOL_DETECTOR])
    report = DesignReport(
        name=f"concurrent_rx_x{len(spreading_factors)}", blocks=tuple(blocks))
    report.check_fits()
    return report


def table6() -> dict[int, tuple[int, int]]:
    """Reproduce paper Table 6: ``{SF: (TX LUTs, RX LUTs)}``."""
    return {sf: (lora_tx_design(sf).luts, lora_rx_design(sf).luts)
            for sf in range(6, 13)}
