"""MSP432P401R microcontroller model.

TinySDR's MCU (paper section 3.1.1): a 32-bit Cortex M4F with 64 kB of
SRAM, 256 kB of flash, sub-microamp sleep current, and SPI/I2C/ADC
peripherals.  It runs the MAC protocols, controls every other chip, and
performs the OTA decompression - which is why the OTA pipeline works in
30 kB blocks: that is what fits in SRAM next to the runtime (paper 3.4).

The model tracks memory budgets and power state; the OTA and power
simulations consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, MemoryError_
from repro.sim import MCU_MODE, MCU_RUN, Timeline

NODE_MCU = "mcu"
"""Timeline component name for the MSP432."""

SRAM_BYTES = 64 * 1024
FLASH_BYTES = 256 * 1024


class McuMode(enum.Enum):
    """Power modes of the MSP432 (subset the platform uses)."""

    ACTIVE = "active"
    LPM3 = "lpm3"
    LPM45 = "lpm4.5"


MODE_POWER_W = {
    McuMode.ACTIVE: 0.0145,   # ~4.6 mA/MHz class core running at ~48 MHz
    McuMode.LPM3: 0.85e-6 * 3.0,   # RTC + wakeup timer alive
    McuMode.LPM45: 0.025e-6 * 3.0,
}


@dataclass
class MemoryRegion:
    """A named allocation inside SRAM or flash."""

    name: str
    size_bytes: int


@dataclass
class MemoryBank:
    """Byte-budget accounting for one memory (SRAM or flash)."""

    name: str
    capacity_bytes: int
    regions: dict[str, MemoryRegion] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        """Total allocated bytes."""
        return sum(region.size_bytes for region in self.regions.values())

    @property
    def free_bytes(self) -> int:
        """Remaining budget."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, name: str, size_bytes: int) -> MemoryRegion:
        """Reserve a region.

        Raises:
            MemoryError_: on duplicate names or exhausted capacity.
        """
        if size_bytes <= 0:
            raise ConfigurationError(
                f"allocation size must be positive, got {size_bytes}")
        if name in self.regions:
            raise MemoryError_(f"region {name!r} already allocated in {self.name}")
        if size_bytes > self.free_bytes:
            raise MemoryError_(
                f"{self.name}: allocating {size_bytes} B with only "
                f"{self.free_bytes} B free")
        region = MemoryRegion(name=name, size_bytes=size_bytes)
        self.regions[name] = region
        return region

    def release(self, name: str) -> None:
        """Free a region.

        Raises:
            MemoryError_: if the region does not exist.
        """
        if name not in self.regions:
            raise MemoryError_(f"region {name!r} not allocated in {self.name}")
        del self.regions[name]

    def utilization(self) -> float:
        """Fraction of the bank in use."""
        return self.used_bytes / self.capacity_bytes


class Msp432:
    """Behavioural MSP432 model: memory banks plus a power-mode timeline.

    All time/energy state lives on a :class:`~repro.sim.Timeline`: every
    :meth:`run` dwell is an ``mcu.run`` event at the current mode's
    power, every :meth:`set_mode` a zero-duration ``mcu.mode`` marker,
    and :meth:`energy_consumed_j` is a replayed view over the ledger.
    """

    def __init__(self, timeline: Timeline | None = None) -> None:
        self.sram = MemoryBank("sram", SRAM_BYTES)
        self.flash = MemoryBank("flash", FLASH_BYTES)
        self.mode = McuMode.ACTIVE
        self.timeline = timeline if timeline is not None else Timeline()
        self._since = self.timeline.checkpoint()
        self._start_s = self.timeline.now_s

    @property
    def clock_s(self) -> float:
        """Time this MCU has spent running, per the shared timeline."""
        return self.timeline.now_s - self._start_s

    def set_mode(self, mode: McuMode) -> None:
        """Switch power mode (instantaneous; MSP432 wakes in ~10 us)."""
        self.mode = mode
        self.timeline.record(MCU_MODE, NODE_MCU, label=mode.value)

    def run(self, duration_s: float) -> None:
        """Advance time, recording a dwell at the current mode's power.

        Raises:
            ConfigurationError: for negative durations.
        """
        self.timeline.record(MCU_RUN, NODE_MCU, label=self.mode.value,
                             duration_s=duration_s,
                             power_w=MODE_POWER_W[self.mode])

    def energy_consumed_j(self) -> float:
        """Total energy drawn so far (replayed from the ledger)."""
        return self.timeline.energy_j(kinds={MCU_RUN}, component=NODE_MCU,
                                      since=self._since)

    def power_w(self) -> float:
        """Instantaneous power in the current mode."""
        return MODE_POWER_W[self.mode]


def firmware_footprint_report(mcu: Msp432) -> dict[str, float]:
    """Summarize resource use the way paper section 5.2 does.

    "TTN protocol together with control for the I/Q radio, backbone
    radio, FPGA, PMU and decompression algorithm for OTA take only 18 %
    of MCU resources."
    """
    return {
        "flash_used_bytes": float(mcu.flash.used_bytes),
        "flash_utilization": mcu.flash.utilization(),
        "sram_used_bytes": float(mcu.sram.used_bytes),
        "sram_utilization": mcu.sram.utilization(),
    }
