"""Discrete-event timer scheduler.

The MCU "pre-programs a timer to periodically turn off the FPGA and
switch ... to the backbone radio to listen for new firmware updates"
(paper section 3.4).  Duty cycling, OTA wake windows and the testbed
campaign all run on this small deterministic event queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim import SCHEDULER_FIRE, Timeline

SCHEDULER_COMPONENT = "scheduler"
"""Timeline component name for fired scheduler events."""


@dataclass(order=True)
class _Event:
    time_s: float
    sequence: int
    name: str = field(compare=False)
    action: Callable[["EventScheduler"], None] = field(compare=False)


class EventScheduler:
    """Minimal deterministic discrete-event loop.

    Events fire in time order (FIFO among ties).  Actions receive the
    scheduler and may schedule further events, which is how periodic
    timers are expressed.
    """

    def __init__(self, timeline: Timeline | None = None) -> None:
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self.timeline = timeline if timeline is not None else Timeline()
        self.fired: list[tuple[float, str]] = []

    @property
    def now_s(self) -> float:
        """Current simulation time, per the shared timeline."""
        return self.timeline.now_s

    def schedule_at(self, time_s: float, name: str,
                    action: Callable[["EventScheduler"], None]) -> None:
        """Schedule an absolute-time event.

        Raises:
            ConfigurationError: for events in the past.
        """
        if time_s < self.now_s:
            raise ConfigurationError(
                f"cannot schedule {name!r} at {time_s} before now {self.now_s}")
        heapq.heappush(self._queue,
                       _Event(time_s, next(self._counter), name, action))

    def schedule_after(self, delay_s: float, name: str,
                       action: Callable[["EventScheduler"], None]) -> None:
        """Schedule an event ``delay_s`` from now."""
        if delay_s < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay_s!r}")
        self.schedule_at(self.now_s + delay_s, name, action)

    def schedule_every(self, period_s: float, name: str,
                       action: Callable[["EventScheduler"], None],
                       start_s: float | None = None) -> None:
        """Schedule a periodic event (re-arms itself after each firing)."""
        if period_s <= 0:
            raise ConfigurationError(
                f"period must be positive, got {period_s!r}")

        def wrapper(scheduler: "EventScheduler") -> None:
            action(scheduler)
            scheduler.schedule_after(period_s, name, wrapper)

        self.schedule_at(self.now_s + period_s if start_s is None else start_s,
                         name, wrapper)

    def run_until(self, end_time_s: float, max_events: int = 1_000_000) -> int:
        """Process events up to ``end_time_s``; returns the count fired.

        Raises:
            ConfigurationError: when the event budget is exhausted (a
                runaway self-scheduling loop).
        """
        count = 0
        while self._queue and self._queue[0].time_s <= end_time_s:
            if count >= max_events:
                raise ConfigurationError(
                    f"exceeded {max_events} events before {end_time_s}")
            event = heapq.heappop(self._queue)
            if event.time_s > self.timeline.now_s:
                self.timeline.advance_to(event.time_s)
            self.timeline.record(SCHEDULER_FIRE, SCHEDULER_COMPONENT,
                                 label=event.name, advance=False,
                                 t_start_s=event.time_s)
            self.fired.append((event.time_s, event.name))
            event.action(self)
            count += 1
        if end_time_s > self.timeline.now_s:
            self.timeline.advance_to(end_time_s)
        return count

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)
