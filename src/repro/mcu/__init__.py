"""MCU substrate: the MSP432 model and its timer/event scheduler."""

from repro.mcu.msp432 import (
    FLASH_BYTES,
    McuMode,
    MemoryBank,
    MemoryRegion,
    MODE_POWER_W,
    Msp432,
    SRAM_BYTES,
    firmware_footprint_report,
)
from repro.mcu.scheduler import EventScheduler
from repro.mcu.watchdog import WATCHDOG_COMPONENT, Watchdog

__all__ = [
    "EventScheduler",
    "WATCHDOG_COMPONENT",
    "Watchdog",
    "FLASH_BYTES",
    "MODE_POWER_W",
    "McuMode",
    "MemoryBank",
    "MemoryRegion",
    "Msp432",
    "SRAM_BYTES",
    "firmware_footprint_report",
]
