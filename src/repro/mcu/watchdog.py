"""Watchdog timer model: the last line of defence against MCU hangs.

A hung node cannot be reflashed over the air - someone has to climb the
light pole.  The hardened OTA path therefore arms a watchdog around the
decompress/install phase: the firmware kicks it at every unit of
progress, and a missed deadline fires a reset that reboots the node
onto whatever image last verified (the golden image via
:meth:`repro.ota.bank.FirmwareBanks.boot`).

The model runs on the deterministic :class:`~repro.mcu.scheduler.\
EventScheduler` using the re-arm pattern: each check event fires at the
earliest possible deadline and, when a kick arrived in the meantime,
re-schedules itself for the new deadline instead of resetting.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.mcu.scheduler import EventScheduler
from repro.sim import WATCHDOG_RESET

WATCHDOG_COMPONENT = "watchdog"


class Watchdog:
    """A kick-or-reset deadline timer on the deterministic scheduler."""

    def __init__(self, scheduler: EventScheduler, timeout_s: float,
                 on_timeout: Callable[["Watchdog"], None] | None = None,
                 name: str = "watchdog") -> None:
        if timeout_s <= 0:
            raise ConfigurationError(
                f"watchdog timeout must be positive, got {timeout_s!r}")
        self.scheduler = scheduler
        self.timeout_s = timeout_s
        self.on_timeout = on_timeout
        self.name = name
        self.armed = False
        self.expired = False
        self.resets = 0
        self._last_kick_s = 0.0

    def start(self) -> None:
        """Arm the timer; the first deadline is one timeout from now."""
        self.armed = True
        self.expired = False
        self._last_kick_s = self.scheduler.now_s
        self._schedule_check(self._last_kick_s + self.timeout_s)

    def kick(self) -> None:
        """Feed the dog: pushes the deadline one timeout past now."""
        self._last_kick_s = self.scheduler.now_s

    def stop(self) -> None:
        """Disarm; any in-flight check event becomes a no-op."""
        self.armed = False

    @property
    def deadline_s(self) -> float:
        """Absolute time the dog bites unless kicked again."""
        return self._last_kick_s + self.timeout_s

    def _schedule_check(self, at_s: float) -> None:
        self.scheduler.schedule_at(at_s, f"{self.name} deadline check",
                                   self._check)

    def _check(self, scheduler: EventScheduler) -> None:
        if not self.armed:
            return
        if scheduler.now_s < self.deadline_s:
            # A kick moved the deadline - re-arm for the new one.
            self._schedule_check(self.deadline_s)
            return
        self.armed = False
        self.expired = True
        self.resets += 1
        scheduler.timeline.record(
            WATCHDOG_RESET, WATCHDOG_COMPONENT,
            label=f"{self.name} expired after {self.timeout_s:g} s "
                  "without a kick")
        if self.on_timeout is not None:
            self.on_timeout(self)
