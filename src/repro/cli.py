"""Command-line interface for the tinySDR reproduction.

Gives shell access to the experiments a testbed operator runs most:

* ``repro info`` - platform summary (timings, cost, FPGA budgets).
* ``repro power`` - battery power in every platform state.
* ``repro sweep-lora`` - chirp SER vs RSSI for a LoRa configuration.
* ``repro sweep-ble`` - BLE beacon BER vs RSSI.
* ``repro campaign`` - OTA-program a simulated campus testbed.
* ``repro fleet`` - vectorized fleet-scale OTA campaign (100k+ nodes).
* ``repro adr`` - rate-adaptation study across the deployment.

Install the package and run ``python -m repro.cli <command>``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.timing import platform_timings
    from repro.fpga import LFE5U_25F_LUTS, lora_rx_design, lora_tx_design
    from repro.platforms import total_cost_usd

    print("tinySDR platform summary")
    print(f"  unit cost (1000 units):   ${total_cost_usd():.2f}")
    print(f"  FPGA:                     LFE5U-25F, {LFE5U_25F_LUTS} LUTs")
    print(f"  LoRa modem (SF8):         TX {lora_tx_design(8).luts} / "
          f"RX {lora_rx_design(8).luts} LUTs")
    print("  operation timings:")
    for operation, milliseconds in platform_timings().as_table():
        print(f"    {operation:26s} {milliseconds:8.3f} ms")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.power import PlatformState, PowerManagementUnit

    pmu = PowerManagementUnit()
    rows = [(PlatformState.SLEEP, {}),
            (PlatformState.MCU_ONLY, {}),
            (PlatformState.IQ_TX, {"tx_power_dbm": args.tx_power}),
            (PlatformState.IQ_RX, {}),
            (PlatformState.CONCURRENT_RX, {}),
            (PlatformState.BACKBONE_RX, {}),
            (PlatformState.BACKBONE_TX, {})]
    print(f"{'state':16s} {'battery power':>14s}")
    for state, kwargs in rows:
        pmu.enter_state(state, **kwargs)
        power = pmu.battery_power_w()
        unit = "uW" if power < 1e-3 else "mW"
        value = power * (1e6 if unit == "uW" else 1e3)
        print(f"{state.value:16s} {value:10.1f} {unit}")
    return 0


def _cmd_sweep_lora(args: argparse.Namespace) -> int:
    from repro.core.sweeps import lora_symbol_error_rate
    from repro.phy.lora import LoRaParams

    rng = np.random.default_rng(args.seed)
    params = LoRaParams(args.sf, args.bandwidth * 1e3)
    print(f"chirp SER vs RSSI for {params.describe()} "
          f"({args.symbols} symbols/point)")
    for rssi in np.arange(args.start, args.stop - 0.5, -args.step):
        point = lora_symbol_error_rate(params, float(rssi), args.symbols,
                                       rng)
        bar = "#" * int(point.error_rate * 40)
        print(f"  {rssi:7.1f} dBm  {point.error_rate * 100:6.2f}%  {bar}")
    return 0


def _cmd_sweep_ble(args: argparse.Namespace) -> int:
    from repro.core.sweeps import ble_beacon_error_rate

    rng = np.random.default_rng(args.seed)
    print(f"BLE beacon BER vs RSSI ({args.packets} packets/point)")
    for rssi in np.arange(args.start, args.stop - 0.5, -args.step):
        point = ble_beacon_error_rate(float(rssi), args.packets, rng)
        marker = " <-- 1e-3" if point.error_rate > 1e-3 else ""
        print(f"  {rssi:7.1f} dBm  BER {point.error_rate:.5f}{marker}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.fpga import generate_bitstream
    from repro.testbed import campus_deployment, run_campaign

    rng = np.random.default_rng(args.seed)
    deployment = campus_deployment(num_nodes=args.nodes)
    utilization = {"lora": 0.1125, "ble": 0.03}[args.image]
    image = generate_bitstream(utilization, seed=42)
    print(f"programming {args.nodes} nodes with the {args.image} image "
          f"({len(image) // 1024} kB raw)...")
    campaign = run_campaign(deployment, image, args.image, rng)
    durations = campaign.durations_s()
    print(f"  programmed {durations.size}/{args.nodes} nodes")
    print(f"  mean {campaign.mean_duration_s():.0f} s, "
          f"min {durations.min():.0f} s, max {durations.max():.0f} s")
    print(f"  fleet energy {campaign.total_node_energy_j():.0f} J")
    return 0 if durations.size == args.nodes else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.ota.fleet import (
        FleetBurstLoss,
        FleetCampaignConfig,
        run_fleet_campaign_sharded,
        write_fleet_spill,
    )

    config = FleetCampaignConfig(
        num_nodes=args.nodes, image_bytes=args.image_bytes, seed=args.seed,
        loss=FleetBurstLoss() if args.loss else None,
        verify_failure_prob=args.verify_failure_prob)
    report = run_fleet_campaign_sharded(config, shards=args.shards,
                                        processes=args.processes)
    print(f"fleet campaign: {args.nodes} nodes, "
          f"{config.num_fragments} fragments x {args.image_bytes} B image, "
          f"seed {args.seed}, {args.shards} shard(s)")
    for label, count in report.outcome_counts().items():
        print(f"  {label:12s} {count:>9d}")
    print(f"  {'events':12s} {report.total_events:>9d}")
    print(f"  {'energy':12s} {report.total_energy_j:>11.1f} J")
    if args.spill:
        stats = write_fleet_spill(report, args.spill)
        print(f"  spilled {stats['rows_written']} rows to {args.spill} "
              f"({stats['max_buffered']} max resident)")
    abandoned = report.outcome_counts()["abandoned"]
    return 0 if abandoned < args.nodes else 1


def _cmd_adr(args: argparse.Namespace) -> int:
    from repro.protocols.lorawan.adr import fixed_rate_cost, simulate_adr
    from repro.testbed import campus_deployment

    rng = np.random.default_rng(args.seed)
    deployment = campus_deployment()
    _, baseline = fixed_rate_cost(12, 14.0)
    print(f"{'node':>4s} {'path loss':>10s} {'converged':>14s} "
          f"{'saving':>8s} {'delivery':>9s}")
    for node in deployment.nodes:
        path_loss = (deployment.ap_tx_power_dbm
                     + deployment.ap_antenna_gain_dbi
                     - deployment.downlink_rssi_dbm(node, rng))
        result = simulate_adr(path_loss, rng)
        saving = baseline / result.energy_j_per_packet
        print(f"{node.node_id:4d} {path_loss:7.0f} dB "
              f"SF{result.final_sf}/{result.final_tx_power_dbm:4.0f} dBm "
              f"{saving:7.1f}x {result.delivery_ratio:9.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="tinySDR reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="platform summary").set_defaults(
        func=_cmd_info)

    power = sub.add_parser("power", help="power per platform state")
    power.add_argument("--tx-power", type=float, default=14.0,
                       help="radio output power for TX states (dBm)")
    power.set_defaults(func=_cmd_power)

    lora = sub.add_parser("sweep-lora", help="LoRa SER vs RSSI sweep")
    lora.add_argument("--sf", type=int, default=8)
    lora.add_argument("--bandwidth", type=float, default=125.0,
                      help="kHz")
    lora.add_argument("--start", type=float, default=-110.0)
    lora.add_argument("--stop", type=float, default=-134.0)
    lora.add_argument("--step", type=float, default=3.0)
    lora.add_argument("--symbols", type=int, default=150)
    lora.add_argument("--seed", type=int, default=0)
    lora.set_defaults(func=_cmd_sweep_lora)

    ble = sub.add_parser("sweep-ble", help="BLE BER vs RSSI sweep")
    ble.add_argument("--start", type=float, default=-80.0)
    ble.add_argument("--stop", type=float, default=-98.0)
    ble.add_argument("--step", type=float, default=3.0)
    ble.add_argument("--packets", type=int, default=8)
    ble.add_argument("--seed", type=int, default=0)
    ble.set_defaults(func=_cmd_sweep_ble)

    campaign = sub.add_parser("campaign", help="simulate an OTA campaign")
    campaign.add_argument("--image", choices=("lora", "ble"),
                          default="ble")
    campaign.add_argument("--nodes", type=int, default=20)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.set_defaults(func=_cmd_campaign)

    fleet = sub.add_parser("fleet",
                           help="vectorized fleet-scale OTA campaign")
    fleet.add_argument("--nodes", type=int, default=100_000)
    fleet.add_argument("--image-bytes", type=int, default=1800,
                       help="update image size (fragmented for transfer)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--shards", type=int, default=1,
                       help="contiguous node ranges simulated separately "
                            "(results are shard-count invariant)")
    fleet.add_argument("--processes", type=int, default=None,
                       help="multiprocessing pool size (default: "
                            "run shards sequentially in-process)")
    fleet.add_argument("--loss", action="store_true",
                       help="enable the bursty-loss downlink channel")
    fleet.add_argument("--verify-failure-prob", type=float, default=0.0,
                       help="post-transfer image verification failure "
                            "probability (drives rollbacks)")
    fleet.add_argument("--spill", default=None, metavar="PATH",
                       help="stream the campaign report to this JSONL "
                            "file via the bounded-memory writer")
    fleet.set_defaults(func=_cmd_fleet)

    adr = sub.add_parser("adr", help="rate-adaptation study")
    adr.add_argument("--seed", type=int, default=0)
    adr.set_defaults(func=_cmd_adr)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
