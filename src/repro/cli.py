"""Command-line interface for the tinySDR reproduction.

Gives shell access to the experiments a testbed operator runs most:

* ``repro info`` - platform summary (timings, cost, FPGA budgets).
* ``repro power`` - battery power in every platform state.
* ``repro sweep-lora`` - chirp SER vs RSSI for a LoRa configuration.
* ``repro sweep-ble`` - BLE beacon BER vs RSSI.
* ``repro campaign`` - OTA-program a simulated campus testbed.
* ``repro fleet`` - vectorized fleet-scale OTA campaign (100k+ nodes).
* ``repro adr`` - rate-adaptation study across the deployment.
* ``repro service`` - submit one job through the full resilient
  service stack (optionally journaled for crash recovery).

Install the package and run ``python -m repro.cli <command>``.

Every subcommand is a *thin client* of the campaign service: it builds
a typed :class:`~repro.service.JobSpec`, submits it to a
:class:`~repro.service.CampaignService`, and renders the resulting
payload.  No engine is imported here — that is the REPRO014
service-discipline boundary — so anything the CLI can do, a queued
multi-tenant job can do identically (and dedupes through the
content-addressed result cache when seeded the same way).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.service import (
    JOB_COMPLETED,
    CampaignService,
    Job,
    JobJournal,
    JobSpec,
)

_FAILURE_EVENT_TAIL = 5
"""Trailing ``service.*`` events echoed when a job does not complete."""


def _run_job(kind: str, config: dict,
             seed: int = 0) -> tuple[CampaignService, Job]:
    """Submit one spec to a fresh service and drain the queue.

    The CLI is a single-shot client: one process, one service, one job.
    A failed or rejected job surfaces its reason on stderr and the
    caller maps it to exit code 1.
    """
    service = CampaignService()
    job = service.submit_and_run(
        JobSpec(kind=kind, config=config, seed=seed))
    return service, job


def _payload(service: CampaignService, job: Job) -> dict | None:
    """The completed job's payload, or ``None`` after printing why not.

    A failed, rejected or quarantined job prints a one-line reason plus
    the tail of its ``service.*`` event stream, so the operator sees
    *how* it died (retries, watchdog resets, breaker trips) without
    digging through a timeline dump.
    """
    if job.state != JOB_COMPLETED or job.result is None:
        print(f"repro: job {job.state}: {job.detail}", file=sys.stderr)
        for event in service.job_events(job.job_id)[-_FAILURE_EVENT_TAIL:]:
            print(f"repro:   [{event.t_start_s:.6f}s] {event.kind}: "
                  f"{event.label}", file=sys.stderr)
        return None
    return job.result.payload_mapping()


def _cmd_info(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job("info", {}))
    if payload is None:
        return 1
    print("tinySDR platform summary")
    print(f"  unit cost (1000 units):   ${payload['unit_cost_usd']:.2f}")
    print(f"  FPGA:                     LFE5U-25F, "
          f"{payload['fpga_luts']} LUTs")
    print(f"  LoRa modem (SF{payload['modem_sf']}):         "
          f"TX {payload['lora_tx_luts']} / "
          f"RX {payload['lora_rx_luts']} LUTs")
    print("  operation timings:")
    for operation, milliseconds in payload["timings_ms"].items():
        print(f"    {operation:26s} {milliseconds:8.3f} ms")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job(
        "power", {"tx_power_dbm": args.tx_power}))
    if payload is None:
        return 1
    print(f"{'state':16s} {'battery power':>14s}")
    for state, power in payload["states"].items():
        unit = "uW" if power < 1e-3 else "mW"
        value = power * (1e6 if unit == "uW" else 1e3)
        print(f"{state:16s} {value:10.1f} {unit}")
    return 0


def _cmd_sweep_lora(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job(
        "sweep-lora",
        {"spreading_factor": args.sf, "bandwidth_khz": args.bandwidth,
         "start_dbm": args.start, "stop_dbm": args.stop,
         "step_db": args.step, "symbols": args.symbols},
        seed=args.seed))
    if payload is None:
        return 1
    print(f"chirp SER vs RSSI for {payload['describe']} "
          f"({payload['symbols']} symbols/point)")
    for point in payload["points"]:
        bar = "#" * int(point["error_rate"] * 40)
        print(f"  {point['rssi_dbm']:7.1f} dBm  "
              f"{point['error_rate'] * 100:6.2f}%  {bar}")
    return 0


def _cmd_sweep_ble(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job(
        "sweep-ble",
        {"start_dbm": args.start, "stop_dbm": args.stop,
         "step_db": args.step, "packets": args.packets},
        seed=args.seed))
    if payload is None:
        return 1
    print(f"BLE beacon BER vs RSSI ({payload['packets']} packets/point)")
    for point in payload["points"]:
        marker = " <-- 1e-3" if point["error_rate"] > 1e-3 else ""
        print(f"  {point['rssi_dbm']:7.1f} dBm  "
              f"BER {point['error_rate']:.5f}{marker}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job(
        "campaign", {"image": args.image, "nodes": args.nodes},
        seed=args.seed))
    if payload is None:
        return 1
    print(f"programming {payload['nodes']} nodes with the "
          f"{payload['image']} image ({payload['image_kib']} kB raw)...")
    print(f"  programmed {payload['programmed']}/{payload['nodes']} nodes")
    print(f"  mean {payload['mean_duration_s']:.0f} s, "
          f"min {payload['min_duration_s']:.0f} s, "
          f"max {payload['max_duration_s']:.0f} s")
    print(f"  fleet energy {payload['total_node_energy_j']:.0f} J")
    return 0 if payload["programmed"] == payload["nodes"] else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    config = {"nodes": args.nodes, "image_bytes": args.image_bytes,
              "shards": args.shards, "processes": args.processes,
              "loss": args.loss,
              "verify_failure_prob": args.verify_failure_prob,
              "spill": args.spill}
    payload = _payload(*_run_job("fleet", config, seed=args.seed))
    if payload is None:
        return 1
    print(f"fleet campaign: {payload['nodes']} nodes, "
          f"{payload['num_fragments']} fragments x "
          f"{payload['image_bytes']} B image, "
          f"seed {args.seed}, {payload['shards']} shard(s)")
    for label, count in payload["outcomes"].items():
        print(f"  {label:12s} {count:>9d}")
    print(f"  {'events':12s} {payload['total_events']:>9d}")
    print(f"  {'energy':12s} {payload['total_energy_j']:>11.1f} J")
    if "spill" in payload:
        spill = payload["spill"]
        print(f"  spilled {spill['rows_written']} rows to "
              f"{spill['path']} ({spill['max_buffered']} max resident)")
    abandoned = payload["outcomes"]["abandoned"]
    return 0 if abandoned < payload["nodes"] else 1


def _cmd_service(args: argparse.Namespace) -> int:
    try:
        config = json.loads(args.config)
    except ValueError as exc:
        print(f"repro: --config is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    if not isinstance(config, dict):
        print(f"repro: --config must be a JSON object, "
              f"got {type(config).__name__}", file=sys.stderr)
        return 1
    try:
        journal = JobJournal(args.journal) if args.journal else None
        service = CampaignService(journal=journal)
        job = service.submit_and_run(
            JobSpec(kind=args.kind, config=config, seed=args.seed))
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    payload = _payload(service, job)
    if payload is None:
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    stats = service.stats()
    print(f"repro: job{job.job_id} completed "
          f"{'from cache' if job.cache_hit else 'by the engine'} at "
          f"t={job.completed_at_s:.6f}s "
          f"(invocations: {stats.invocations})", file=sys.stderr)
    return 0


def _cmd_adr(args: argparse.Namespace) -> int:
    payload = _payload(*_run_job("adr", {}, seed=args.seed))
    if payload is None:
        return 1
    print(f"{'node':>4s} {'path loss':>10s} {'converged':>14s} "
          f"{'saving':>8s} {'delivery':>9s}")
    for row in payload["nodes"]:
        print(f"{row['node_id']:4d} {row['path_loss_db']:7.0f} dB "
              f"SF{row['final_sf']}/{row['final_tx_power_dbm']:4.0f} dBm "
              f"{row['saving']:7.1f}x {row['delivery_ratio']:9.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="tinySDR reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="platform summary").set_defaults(
        func=_cmd_info)

    power = sub.add_parser("power", help="power per platform state")
    power.add_argument("--tx-power", type=float, default=14.0,
                       help="radio output power for TX states (dBm)")
    power.set_defaults(func=_cmd_power)

    lora = sub.add_parser("sweep-lora", help="LoRa SER vs RSSI sweep")
    lora.add_argument("--sf", type=int, default=8)
    lora.add_argument("--bandwidth", type=float, default=125.0,
                      help="kHz")
    lora.add_argument("--start", type=float, default=-110.0)
    lora.add_argument("--stop", type=float, default=-134.0)
    lora.add_argument("--step", type=float, default=3.0)
    lora.add_argument("--symbols", type=int, default=150)
    lora.add_argument("--seed", type=int, default=0)
    lora.set_defaults(func=_cmd_sweep_lora)

    ble = sub.add_parser("sweep-ble", help="BLE BER vs RSSI sweep")
    ble.add_argument("--start", type=float, default=-80.0)
    ble.add_argument("--stop", type=float, default=-98.0)
    ble.add_argument("--step", type=float, default=3.0)
    ble.add_argument("--packets", type=int, default=8)
    ble.add_argument("--seed", type=int, default=0)
    ble.set_defaults(func=_cmd_sweep_ble)

    campaign = sub.add_parser("campaign", help="simulate an OTA campaign")
    campaign.add_argument("--image", choices=("lora", "ble"),
                          default="ble")
    campaign.add_argument("--nodes", type=int, default=20)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.set_defaults(func=_cmd_campaign)

    fleet = sub.add_parser("fleet",
                           help="vectorized fleet-scale OTA campaign")
    fleet.add_argument("--nodes", type=int, default=100_000)
    fleet.add_argument("--image-bytes", type=int, default=1800,
                       help="update image size (fragmented for transfer)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--shards", type=int, default=1,
                       help="contiguous node ranges simulated separately "
                            "(results are shard-count invariant)")
    fleet.add_argument("--processes", type=int, default=None,
                       help="multiprocessing pool size (default: "
                            "run shards sequentially in-process)")
    fleet.add_argument("--loss", action="store_true",
                       help="enable the bursty-loss downlink channel")
    fleet.add_argument("--verify-failure-prob", type=float, default=0.0,
                       help="post-transfer image verification failure "
                            "probability (drives rollbacks)")
    fleet.add_argument("--spill", default=None, metavar="PATH",
                       help="stream the campaign report to this JSONL "
                            "file via the bounded-memory writer")
    fleet.set_defaults(func=_cmd_fleet)

    adr = sub.add_parser("adr", help="rate-adaptation study")
    adr.add_argument("--seed", type=int, default=0)
    adr.set_defaults(func=_cmd_adr)

    service = sub.add_parser(
        "service",
        help="submit one job through the resilient campaign service")
    service.add_argument("--kind", required=True,
                         help="registered workload kind (e.g. info)")
    service.add_argument("--config", default="{}",
                         help="job configuration as a JSON object")
    service.add_argument("--seed", type=int, default=0)
    service.add_argument("--journal", default=None, metavar="PATH",
                         help="write-ahead job journal for crash "
                              "recovery (JSONL)")
    service.set_defaults(func=_cmd_service)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
