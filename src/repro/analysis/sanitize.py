"""Runtime sanitizers for the bit-exactness invariants.

The static rules catch mutation patterns the AST can see; this module
catches the rest at runtime.  With ``REPRO_SANITIZE=1`` in the
environment (checked when :mod:`repro.perf` is imported) every value
handed out by :meth:`repro.perf.cache.PlanCache.get_or_build` is
deep-verified: each numpy array reachable through tuples, lists and
dicts must already be frozen (``writeable=False``).  A writable array
means some build path bypassed the freezer — the exact corruption vector
the plan cache exists to prevent — and raises :class:`SanitizerError`
immediately rather than letting one consumer silently corrupt another's
plan.

Because cached arrays are frozen, caller mutation of a sanitized value
raises numpy's own ``ValueError: assignment destination is read-only``;
the sanitizer's job is to guarantee that property actually holds for
every return path.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Hashable, Iterator

import numpy as np

from repro.errors import ReproError

ENV_VAR = "REPRO_SANITIZE"

#: Opt-in flag for the double-run determinism check (see
#: :mod:`repro.analysis.determinism`).
DETERMINISM_ENV_VAR = "REPRO_DETERMINISM"


class SanitizerError(ReproError):
    """A runtime invariant check failed under REPRO_SANITIZE=1."""


def determinism_enabled(environ: dict[str, str] | None = None) -> bool:
    """Whether ``REPRO_DETERMINISM=1`` asks for double-run diffing."""
    env = os.environ if environ is None else environ
    return env.get(DETERMINISM_ENV_VAR, "") == "1"


def iter_arrays(value: Any) -> Iterator[np.ndarray]:
    """Yield every numpy array reachable through common containers."""
    if isinstance(value, np.ndarray):
        yield value
    elif isinstance(value, (tuple, list, set, frozenset)):
        for item in value:
            yield from iter_arrays(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_arrays(item)


def assert_frozen(value: Any, context: str = "cached plan") -> None:
    """Raise :class:`SanitizerError` if ``value`` holds a writable array."""
    for array in iter_arrays(value):
        if array.flags.writeable:
            raise SanitizerError(
                f"{context}: writable array (dtype={array.dtype}, "
                f"shape={array.shape}) escaped the plan-cache freezer; "
                f"shared plans must be setflags(write=False)")


_original_get_or_build: Callable[..., Any] | None = None


def install() -> None:
    """Wrap ``PlanCache.get_or_build`` with the frozen-plan check.

    Idempotent; importing :mod:`repro.perf` calls this automatically
    when ``REPRO_SANITIZE=1``.
    """
    global _original_get_or_build
    if _original_get_or_build is not None:
        return
    from repro.perf.cache import PlanCache

    original = PlanCache.get_or_build

    def sanitized_get_or_build(self: Any, key: Hashable,
                               builder: Callable[[], Any]) -> Any:
        value = original(self, key, builder)
        assert_frozen(value, context=f"plan cache key {key!r}")
        return value

    sanitized_get_or_build.__wrapped__ = original  # type: ignore[attr-defined]
    PlanCache.get_or_build = sanitized_get_or_build  # type: ignore[method-assign]
    _original_get_or_build = original


def uninstall() -> None:
    """Restore the unwrapped ``get_or_build`` (test isolation)."""
    global _original_get_or_build
    if _original_get_or_build is None:
        return
    from repro.perf.cache import PlanCache

    PlanCache.get_or_build = _original_get_or_build  # type: ignore[method-assign]
    _original_get_or_build = None


def installed() -> bool:
    """Whether the sanitizer wrapper is currently active."""
    return _original_get_or_build is not None


def install_from_env(environ: dict[str, str] | None = None) -> bool:
    """Install the sanitizer when ``REPRO_SANITIZE=1``; returns whether."""
    env = os.environ if environ is None else environ
    if env.get(ENV_VAR, "") == "1":
        install()
        return True
    return False
