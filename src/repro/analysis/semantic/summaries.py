"""Per-function taint summaries, iterated to a fixpoint.

A :class:`FunctionSummary` answers, for one function, the two questions
a caller needs without re-analysing the callee's body:

* which parameters (by index) flow into the return value, and what
  intrinsic taint the return value carries regardless of arguments;
* which parameters flow into a determinism sink inside the callee (or
  transitively inside anything *it* calls).

:func:`compute_summaries` re-analyses every function against the
current summary map until no summary changes (bounded by
``MAX_ROUNDS``, far above the call-chain depth of this repo).  Sink
hits are collected from one final pass with the stable summaries, so a
source defined *after* its use site — or three modules away — is still
charged at the sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.semantic.symbols import SymbolTable
from repro.analysis.semantic.taint import SinkHit, TaintSet, analyze_function

MAX_ROUNDS = 10


@dataclass(frozen=True)
class FunctionSummary:
    """Caller-visible taint behaviour of one function.

    Attributes:
        param_to_return: parameter indices whose taint reaches the
            return value.
        intrinsic_return: concrete taint the return value always
            carries (sources inside the function or its callees).
        param_to_sink: parameter index -> sink labels the parameter
            reaches inside the function (transitively).
    """

    param_to_return: frozenset[int] = frozenset()
    intrinsic_return: TaintSet = frozenset()
    param_to_sink: Mapping[int, frozenset[str]] = field(
        default_factory=dict)

    def __hash__(self) -> int:  # Mapping field needs a manual hash
        return hash((self.param_to_return, self.intrinsic_return,
                     tuple(sorted((k, v) for k, v in
                           self.param_to_sink.items()))))


def compute_summaries(table: SymbolTable
                      ) -> tuple[dict[str, FunctionSummary],
                                 list[SinkHit]]:
    """Fixpoint over all project functions.

    Returns the stable summary map and the deduplicated sink hits from
    the final round, sorted by location.
    """
    summaries: dict[str, FunctionSummary] = {}
    order: Iterable[str] = sorted(table.functions)
    hits: dict[tuple[str, int, int, str], SinkHit] = {}
    for _ in range(MAX_ROUNDS):
        changed = False
        hits.clear()
        for qualname in order:
            summary, produced = analyze_function(
                table.functions[qualname], table, summaries)
            if summaries.get(qualname) != summary:
                summaries[qualname] = summary
                changed = True
            for hit in produced:
                hits[(hit.relpath, hit.line, hit.col, hit.sink)] = hit
        if not changed:
            break
    ordered = sorted(hits.values(),
                     key=lambda h: (h.relpath, h.line, h.col, h.sink))
    return summaries, ordered
