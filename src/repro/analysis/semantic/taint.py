"""Determinism-taint dataflow: sources, propagation, sinks.

The pass is intraprocedural with call summaries.  Inside one function
it runs a forward may-analysis over the statement list (two iterations,
which stabilises simple loop-carried flow), mapping local names to sets
of :class:`Taint` atoms.  Three taint kinds exist:

* ``value`` — the value itself is nondeterministic (``time.time()``,
  ``os.urandom``, unseeded ``random.*``/``numpy.random.*``, ``id()``,
  environment reads, process/thread identity).
* ``order`` — the value was *derived from* hash-seed-dependent
  iteration order (something iterated a ``set``/``frozenset``);
  ``sorted``/``min``/``max``/``sum``/``len`` launder order-taint,
  nothing launders value-taint.
* ``set`` — latent: the value *is* a hash-ordered collection.  It only
  becomes ``order`` taint when the collection is observably iterated
  (``for``/comprehension, ``list()``/``tuple()``/``iter()``-style
  conversion, ``.join``, argless ``.pop()``, ``*``-unpack).  Membership
  tests, ``len``, and attribute projection are order-independent and
  drop it — so ``kinds={A, B}`` used for ``event.kind in kinds`` stays
  clean.
* ``param`` — the taint is conditional on what the caller passes in;
  these atoms never produce findings directly, they become the
  function's summary (see :mod:`repro.analysis.semantic.summaries`).

Sinks are where nondeterminism becomes a reproducibility bug: timeline
``record(...)`` calls, ``SimEvent`` payloads, ``get_or_build`` plan
cache keys, and the fleet cohort buffer allocators.  A sink fed only
``param`` taint charges the parameter in the summary; concrete taint
reaching a sink is an immediate :class:`SinkHit` — the raw material of
rule REPRO011.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.analysis.astutil import canonical_name
from repro.analysis.semantic.symbols import FunctionSymbol, SymbolTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.semantic.summaries import FunctionSummary

KIND_VALUE = "value"
KIND_ORDER = "order"
KIND_SET = "set"
KIND_PARAM = "param"


@dataclass(frozen=True)
class Taint:
    """One taint atom: a kind plus a human-readable provenance."""

    kind: str
    reason: str


TaintSet = frozenset[Taint]
EMPTY: TaintSet = frozenset()

#: Canonical callables whose return value is nondeterministic.
VALUE_SOURCES: dict[str, str] = {
    "time.time": "wall clock time.time()",
    "time.time_ns": "wall clock time.time_ns()",
    "time.monotonic": "monotonic clock time.monotonic()",
    "time.monotonic_ns": "monotonic clock time.monotonic_ns()",
    "time.perf_counter": "wall clock time.perf_counter()",
    "time.perf_counter_ns": "wall clock time.perf_counter_ns()",
    "os.urandom": "os.urandom()",
    "os.getenv": "environment read os.getenv()",
    "os.getpid": "process identity os.getpid()",
    "os.getloadavg": "host load os.getloadavg()",
    "os.listdir": "unsorted directory listing os.listdir()",
    "id": "object identity id()",
    "hash": "hash-seed-dependent hash()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.randbits": "secrets.randbits()",
    "threading.get_ident": "thread identity threading.get_ident()",
    "multiprocessing.current_process": "process identity "
                                       "multiprocessing.current_process()",
}

#: Canonical prefixes that hit process-global RNG state.  Anything
#: under these is a value source unless exempted below (constructors of
#: *seeded* generator objects are the sanctioned alternative).
VALUE_SOURCE_PREFIXES: dict[str, str] = {
    "random.": "process-global random.*",
    "numpy.random.": "process-global numpy.random.*",
}

#: Names under a source prefix that are only nondeterministic when
#: called with no seed argument (unseeded constructors).
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.RandomState",
})

#: Builtins whose result does not depend on the argument's iteration
#: order — they launder ``order`` taint (but never ``value`` taint).
ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len"})

#: Builtins that observably iterate their argument: latent ``set``
#: taint passing through them becomes active ``order`` taint.
ITERATING_BUILTINS = frozenset({
    "list", "tuple", "iter", "next", "enumerate", "reversed", "map",
    "filter", "zip",
})

#: Builtin constructors producing a hash-ordered collection.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

_SET_REASON = "set iteration order"
SET_TAINT: TaintSet = frozenset({Taint(KIND_SET, _SET_REASON)})


def _activate_order(taint: TaintSet) -> TaintSet:
    """Iteration observed: latent set-ness becomes order taint."""
    if not any(t.kind == KIND_SET for t in taint):
        return taint
    return frozenset(Taint(KIND_ORDER, t.reason)
                     if t.kind == KIND_SET else t for t in taint)


def _drop_set(taint: TaintSet) -> TaintSet:
    """Order-independent observation: latent set-ness is irrelevant."""
    return frozenset(t for t in taint if t.kind != KIND_SET)

#: Attribute reads that are themselves nondeterministic values.
ATTRIBUTE_SOURCES: dict[str, str] = {
    "os.environ": "environment read os.environ",
    "sys.argv": "process arguments sys.argv",
}

#: Method names that are determinism sinks when the callee cannot be
#: resolved to a project function (resolved callees are handled through
#: their summaries instead, so sinks are never double-counted).
#: ``None`` means every argument is checked; otherwise the listed
#: positional indices plus keyword names.
SINK_METHODS: dict[str, tuple[str, tuple[int, ...] | None,
                              frozenset[str]]] = {
    "record": ("timeline record", None, frozenset()),
    "get_or_build": ("plan-cache key", (0,), frozenset({"key"})),
}

#: Constructors/callables that are sinks by canonical name.
SINK_CALLS: dict[str, str] = {
    "SimEvent": "SimEvent payload",
}

#: Canonical prefix marking the fleet cohort buffer allocators.
FLEET_BUFFER_PREFIX = "repro.ota.fleet.buffers."


@dataclass(frozen=True)
class SinkHit:
    """Concrete (non-``param``) taint arriving at a sink call."""

    relpath: str
    line: int
    col: int
    sink: str
    reasons: tuple[str, ...]
    function: str
    via: str = ""

    def describe(self) -> str:
        """One-phrase description used in finding messages."""
        sources = ", ".join(self.reasons)
        text = f"nondeterministic value from {sources} reaches {self.sink}"
        if self.via:
            text += f" via call to {self.via}"
        return text


def _source_taint(canonical: str | None, call: ast.Call) -> TaintSet:
    """Taint produced by calling ``canonical`` (may be empty)."""
    if canonical is None:
        return EMPTY
    if canonical in VALUE_SOURCES:
        return frozenset({Taint(KIND_VALUE, VALUE_SOURCES[canonical])})
    if canonical in SEEDED_CONSTRUCTORS:
        if not call.args and not call.keywords:
            return frozenset({Taint(KIND_VALUE,
                                    f"unseeded {canonical}()")})
        return EMPTY
    for prefix, reason in VALUE_SOURCE_PREFIXES.items():
        if canonical.startswith(prefix):
            return frozenset({Taint(KIND_VALUE,
                                    f"{reason} ({canonical})")})
    return EMPTY


class _FunctionTaint(ast.NodeVisitor):
    """One function's taint environment and sink collection."""

    def __init__(self, symbol: FunctionSymbol, table: SymbolTable,
                 summaries: Mapping[str, "FunctionSummary"]) -> None:
        self.symbol = symbol
        self.table = table
        self.mod = table.modules[symbol.module]
        self.summaries = summaries
        self.env: dict[str, TaintSet] = {}
        self.return_taint: set[Taint] = set()
        self.sink_hits: dict[tuple[int, int, str], SinkHit] = {}
        self.param_sinks: dict[int, set[str]] = {}
        self.param_names = self._bind_params()

    # -- setup ---------------------------------------------------------

    def _bind_params(self) -> list[str]:
        args = self.symbol.node.args
        ordered = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg is not None:
            ordered.append(args.vararg.arg)
        ordered.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg is not None:
            ordered.append(args.kwarg.arg)
        for index, name in enumerate(ordered):
            self.env[name] = frozenset({Taint(KIND_PARAM, str(index))})
        return ordered

    def run(self) -> None:
        """Two forward passes over the body (loop-carried stabilising)."""
        for _ in range(2):
            for stmt in self.symbol.node.body:
                self.visit(stmt)

    # -- expression evaluation -----------------------------------------

    def taint_of(self, node: ast.AST | None) -> TaintSet:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            dotted = canonical_name(node, self.mod.aliases)
            if dotted in ATTRIBUTE_SOURCES:
                return frozenset({Taint(KIND_VALUE,
                                        ATTRIBUTE_SOURCES[dotted])})
            # Projecting an attribute yields a different object; the
            # receiver's latent set-ness does not survive it.
            return _drop_set(self.taint_of(node.value))
        if isinstance(node, ast.Call):
            return self._taint_of_call(node)
        if isinstance(node, (ast.Set,)):
            return self._union(node.elts) | SET_TAINT
        if isinstance(node, ast.SetComp):
            return self._comp_taint(node) | SET_TAINT
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comp_taint(node)
        if isinstance(node, ast.DictComp):
            return (self._comp_taint(node, values=(node.key, node.value)))
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._union(node.elts)
        if isinstance(node, ast.Dict):
            parts = [k for k in node.keys if k is not None] + node.values
            return self._union(parts)
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left) | self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values)
        if isinstance(node, ast.Compare):
            # Membership / equality against a set is order-independent.
            return _drop_set(self.taint_of(node.left)
                             | self._union(node.comparators))
        if isinstance(node, ast.IfExp):
            return (self.taint_of(node.body) | self.taint_of(node.orelse)
                    | self.taint_of(node.test))
        if isinstance(node, ast.JoinedStr):
            return self._union([v.value for v in node.values
                                if isinstance(v, ast.FormattedValue)])
        if isinstance(node, ast.Subscript):
            # Sets are not subscriptable, so the receiver proved itself
            # order-addressed; latent set-ness is dropped.
            return (_drop_set(self.taint_of(node.value))
                    | self.taint_of(node.slice))
        if isinstance(node, ast.Starred):
            return _activate_order(self.taint_of(node.value))
        if isinstance(node, ast.NamedExpr):
            taint = self.taint_of(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = taint
            return taint
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return EMPTY

    def _union(self, nodes: list[ast.AST] | list[ast.expr]) -> TaintSet:
        taint: TaintSet = EMPTY
        for node in nodes:
            taint = taint | self.taint_of(node)
        return taint

    def _comp_taint(self, node: ast.AST,
                    values: tuple[ast.AST, ...] | None = None) -> TaintSet:
        taint: TaintSet = EMPTY
        for comp in node.generators:
            iter_taint = _activate_order(self.taint_of(comp.iter))
            for name in ast.walk(comp.target):
                if isinstance(name, ast.Name):
                    self.env[name.id] = iter_taint
            taint = taint | iter_taint
        if values is None:
            values = (node.elt,)
        for value in values:
            taint = taint | self.taint_of(value)
        return taint

    # -- calls ---------------------------------------------------------

    def _arg_taints(self, call: ast.Call) -> list[tuple[str | None,
                                                        TaintSet]]:
        """(keyword-or-None, taint) for every argument, in order."""
        pairs: list[tuple[str | None, TaintSet]] = []
        for arg in call.args:
            pairs.append((None, self.taint_of(arg)))
        for keyword in call.keywords:
            pairs.append((keyword.arg, self.taint_of(keyword.value)))
        return pairs

    def _record_sink(self, call: ast.Call, label: str, taints: TaintSet,
                     via: str = "") -> None:
        concrete = sorted({t.reason for t in taints
                           if t.kind in (KIND_VALUE, KIND_ORDER)})
        params = {int(t.reason) for t in taints if t.kind == KIND_PARAM}
        if concrete:
            key = (call.lineno, call.col_offset, label)
            self.sink_hits[key] = SinkHit(
                relpath=self.symbol.relpath, line=call.lineno,
                col=call.col_offset, sink=label,
                reasons=tuple(concrete), function=self.symbol.display,
                via=via)
        for index in params:
            self.param_sinks.setdefault(index, set()).add(label)

    def _summary_call(self, call: ast.Call, callee: FunctionSymbol,
                      summary: "FunctionSummary",
                      pairs: list[tuple[str | None, TaintSet]]) -> TaintSet:
        """Apply a project callee's summary at this call site."""
        callee_params = _param_names(callee)
        offset = 1 if callee.class_name is not None and _is_method_call(
            call) else 0
        by_index: dict[int, TaintSet] = {}
        spilled: TaintSet = EMPTY
        position = offset
        for keyword, taint in pairs:
            if keyword is None:
                by_index[position] = by_index.get(position, EMPTY) | taint
                position += 1
            elif keyword in callee_params:
                index = callee_params.index(keyword)
                by_index[index] = by_index.get(index, EMPTY) | taint
            else:
                spilled = spilled | taint
        result = set(summary.intrinsic_return)
        for index in summary.param_to_return:
            result.update(by_index.get(index, EMPTY))
            result.update(spilled)
        for index, labels in summary.param_to_sink.items():
            incoming = by_index.get(index, EMPTY) | spilled
            if incoming:
                for label in sorted(labels):
                    self._record_sink(call, label, incoming,
                                      via=callee.display)
        return frozenset(result)

    def _pattern_sinks(self, call: ast.Call, canonical: str | None,
                       pairs: list[tuple[str | None, TaintSet]],
                       arg_taint: TaintSet) -> None:
        """Structural sink checks (run whether or not the callee resolved)."""
        simple: str | None = None
        if isinstance(call.func, ast.Attribute):
            simple = call.func.attr
        elif isinstance(call.func, ast.Name):
            simple = call.func.id
        if simple in SINK_METHODS:
            label, positions, keywords = SINK_METHODS[simple]
            checked: TaintSet = EMPTY
            position = 0
            for keyword, taint in pairs:
                if positions is None:
                    checked = checked | taint
                elif keyword is None:
                    if position in positions:
                        checked = checked | taint
                    position += 1
                elif keyword in keywords:
                    checked = checked | taint
            if checked:
                self._record_sink(call, label, checked)
        if (simple in SINK_CALLS and arg_taint
                and canonical in (simple, f"repro.sim.events.{simple}",
                                  f"repro.sim.{simple}")):
            self._record_sink(call, SINK_CALLS[simple], arg_taint)
        if (canonical is not None and arg_taint
                and canonical.startswith(FLEET_BUFFER_PREFIX)):
            self._record_sink(call, "fleet cohort buffer", arg_taint)

    def _taint_of_call(self, call: ast.Call) -> TaintSet:
        canonical = canonical_name(call.func, self.mod.aliases)
        source = _source_taint(canonical, call)
        if source:
            # Arguments may still flow through (rare for real sources).
            return source

        pairs = self._arg_taints(call)
        arg_taint: TaintSet = EMPTY
        for _, taint in pairs:
            arg_taint = arg_taint | taint
        self._pattern_sinks(call, canonical, pairs, arg_taint)

        callee = self.table.resolve_call(self.mod, self.symbol.class_name,
                                         call)
        if callee is not None and callee.qualname in self.summaries:
            return self._summary_call(call, callee,
                                      self.summaries[callee.qualname],
                                      pairs)

        func_taint = (self.taint_of(call.func.value)
                      if isinstance(call.func, ast.Attribute) else EMPTY)
        combined = arg_taint | func_taint
        if canonical in ORDER_SANITIZERS:
            return frozenset(t for t in combined
                             if t.kind not in (KIND_ORDER, KIND_SET))
        if canonical in SET_CONSTRUCTORS:
            return _drop_set(combined) | SET_TAINT
        if canonical in ITERATING_BUILTINS:
            return _activate_order(combined)
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            # ``sep.join(s)`` serialises iteration order; ``s.pop()``
            # with no argument removes an arbitrary element.
            if attr == "join" or (attr == "pop" and not call.args):
                return _activate_order(combined)
        return combined

    # -- statements ----------------------------------------------------

    def _assign_target(self, target: ast.AST, taint: TaintSet) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taint)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, EMPTY) | taint

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = self.taint_of(node.value)
        for target in node.targets:
            self._assign_target(target, taint)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._assign_target(node.target, self.taint_of(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self.taint_of(node.value)
        if isinstance(node.target, ast.Name):
            taint = taint | self.env.get(node.target.id, EMPTY)
        self._assign_target(node.target, taint)

    def visit_Return(self, node: ast.Return) -> None:
        self.return_taint.update(self.taint_of(node.value))

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        # `x.sort()` launders order taint in place.
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "sort"
                and isinstance(value.func.value, ast.Name)):
            name = value.func.value.id
            self.env[name] = frozenset(
                t for t in self.env.get(name, EMPTY)
                if t.kind not in (KIND_ORDER, KIND_SET))
            return
        self.taint_of(value)

    def visit_For(self, node: ast.For) -> None:
        self._assign_target(node.target,
                            _activate_order(self.taint_of(node.iter)))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit_For(node)  # type: ignore[arg-type]

    def visit_While(self, node: ast.While) -> None:
        self.taint_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_If(self, node: ast.If) -> None:
        self.taint_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            taint = self.taint_of(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, taint)
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self.visit_With(node)  # type: ignore[arg-type]

    def visit_Try(self, node: ast.Try) -> None:
        for stmt in (node.body + node.orelse + node.finalbody):
            self.visit(stmt)
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)

    def visit_Match(self, node: ast.AST) -> None:  # pragma: no cover
        for case in node.cases:
            for stmt in case.body:
                self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs: analyse the body in the enclosing environment
        # (closures read outer locals); their params start clean.
        for arg in node.args.posonlyargs + node.args.args:
            self.env.setdefault(arg.arg, EMPTY)
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.expr):
            self.taint_of(node)
        else:
            super().generic_visit(node)


def _param_names(symbol: FunctionSymbol) -> list[str]:
    args = symbol.node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _is_method_call(call: ast.Call) -> bool:
    """Whether the call goes through an instance (skipping ``self``)."""
    return (isinstance(call.func, ast.Attribute)
            and not (isinstance(call.func.value, ast.Name)
                     and call.func.value.id == "cls"))


def analyze_function(symbol: FunctionSymbol, table: SymbolTable,
                     summaries: Mapping[str, "FunctionSummary"]
                     ) -> tuple["FunctionSummary", list[SinkHit]]:
    """Analyse one function body against the current summaries.

    Returns the function's (possibly updated) summary and the concrete
    sink hits observed inside it.
    """
    from repro.analysis.semantic.summaries import FunctionSummary

    analysis = _FunctionTaint(symbol, table, summaries)
    analysis.run()
    param_to_return = frozenset(
        int(t.reason) for t in analysis.return_taint
        if t.kind == KIND_PARAM)
    intrinsic = frozenset(t for t in analysis.return_taint
                          if t.kind != KIND_PARAM)
    param_to_sink = {index: frozenset(labels)
                     for index, labels in sorted(
                         analysis.param_sinks.items())}
    summary = FunctionSummary(
        param_to_return=param_to_return,
        intrinsic_return=intrinsic,
        param_to_sink=param_to_sink)
    hits = sorted(analysis.sink_hits.values(),
                  key=lambda h: (h.relpath, h.line, h.col, h.sink))
    return summary, hits
