"""Whole-program semantic analysis for the reprolint engine.

The per-file rules (REPRO001-010) pattern-match one AST at a time and
cannot see a nondeterministic value flowing *between* modules.  This
subpackage closes that gap with a small, deliberately conservative
semantic layer built from the very ASTs the engine already parses:

* :mod:`~repro.analysis.semantic.symbols` — a project-wide symbol
  table: every module, function and method keyed by dotted qualname,
  with import aliases resolved through package re-exports.
* :mod:`~repro.analysis.semantic.callgraph` — the import/call graph
  over those symbols, with breadth-first reachability queries.
* :mod:`~repro.analysis.semantic.taint` — an intraprocedural dataflow
  pass tracking "determinism taint" from sources (``time.time``,
  ``os.urandom``, unseeded ``random.*``/``np.random.*``, set iteration
  order, ``id()``, environment reads) into sinks (timeline records,
  ``SimEvent`` payloads, plan-cache keys, fleet cohort buffers).
* :mod:`~repro.analysis.semantic.summaries` — per-function call
  summaries (which parameters flow to the return value or into a sink)
  iterated to a fixpoint, which is what makes the taint pass
  effectively interprocedural.
* :mod:`~repro.analysis.semantic.queries` — the high-level questions
  the project rules ask: tainted-sink findings (REPRO011), parity
  signature drift and dead twins (REPRO012), shard-unsafe module state
  (REPRO013).

The model is built once per lint run (see
:meth:`repro.analysis.engine.Project.semantic`) and shared by every
semantic rule.
"""

from repro.analysis.semantic.callgraph import CallGraph, build_call_graph
from repro.analysis.semantic.queries import (
    ParityPair,
    SemanticModel,
    ShardHazard,
    build_model,
    parity_pairs,
    shard_state_findings,
    signature_drift,
)
from repro.analysis.semantic.summaries import (
    FunctionSummary,
    compute_summaries,
)
from repro.analysis.semantic.symbols import (
    FunctionSymbol,
    ModuleSymbols,
    SymbolTable,
    build_symbol_table,
    module_name_for,
)
from repro.analysis.semantic.taint import SinkHit, Taint, analyze_function

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "FunctionSymbol",
    "ModuleSymbols",
    "ParityPair",
    "SemanticModel",
    "ShardHazard",
    "SinkHit",
    "SymbolTable",
    "Taint",
    "analyze_function",
    "build_call_graph",
    "build_model",
    "build_symbol_table",
    "compute_summaries",
    "module_name_for",
    "parity_pairs",
    "shard_state_findings",
    "signature_drift",
]
