"""Call graph over the project symbol table.

Edges are resolved call expressions plus bare references (a function
passed as a value — ``pool.map(_shard_worker, tasks)`` — counts as an
edge, because the callee will run).  Reachability is a plain BFS; the
semantic rules use it to ask "is this twin reachable from a parity
test" (REPRO012) and "is this helper reachable from the fleet entry
point" (REPRO013).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.semantic.symbols import FunctionSymbol, SymbolTable


@dataclass(frozen=True)
class CallGraph:
    """Immutable qualname -> callee-qualnames adjacency."""

    edges: Mapping[str, frozenset[str]]

    def callees(self, qualname: str) -> frozenset[str]:
        """Direct callees of ``qualname`` (empty when unknown)."""
        return self.edges.get(qualname, frozenset())

    def reachable(self, roots: Iterable[str]) -> frozenset[str]:
        """Every qualname reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue = deque(root for root in roots if root in self.edges)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, frozenset()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return frozenset(seen)


def _function_edges(table: SymbolTable,
                    symbol: FunctionSymbol) -> frozenset[str]:
    mod = table.modules[symbol.module]
    targets: set[str] = set()
    for node in ast.walk(symbol.node):
        resolved: FunctionSymbol | None = None
        if isinstance(node, ast.Call):
            resolved = table.resolve_call(mod, symbol.class_name, node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            resolved = table.resolve_name(mod, node.id)
        if resolved is not None and resolved.qualname != symbol.qualname:
            targets.add(resolved.qualname)
    return frozenset(targets)


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call/reference in every function body to edges."""
    edges = {qualname: _function_edges(table, symbol)
             for qualname, symbol in table.functions.items()}
    return CallGraph(edges=edges)
