"""Project-wide symbol table built from the engine's parsed ASTs.

Every lint target contributes one :class:`ModuleSymbols`: its functions
and methods as :class:`FunctionSymbol` records keyed by dotted qualname
(``repro.ota.mac.run_stop_and_wait``,
``repro.sim.timeline.Timeline.record``), its import aliases, and its
module-level assignments.  The :class:`SymbolTable` stitches the
modules together and resolves dotted references *through package
re-exports*: ``from repro.ota.fleet import run_fleet_campaign`` lands
on ``repro.ota.fleet.engine.run_fleet_campaign`` because the package
``__init__`` re-exports it, and resolution follows that alias chain.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterable

from repro.analysis.astutil import (
    assigned_names,
    canonical_name,
    import_aliases,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import FileContext

#: Leading path components stripped before a relpath becomes a module
#: name (``src/repro/ota/mac.py`` -> ``repro.ota.mac``).
_SOURCE_PREFIXES = ("src", "lib")

#: Attribute names too generic for the unique-simple-name call
#: fallback: ``payload.update(...)`` on a dict must not resolve to the
#: one project method that happens to be called ``update``.  These are
#: the stdlib container/IO protocol names.
_COMMON_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "discard",
    "extend", "get", "index", "insert", "items", "join", "keys", "open",
    "pop", "popitem", "put", "read", "remove", "reverse", "run", "send",
    "setdefault", "sort", "split", "start", "stop", "strip", "update",
    "values", "write",
})


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative POSIX path."""
    parts = PurePosixPath(relpath).with_suffix("").parts
    if parts and parts[0] in _SOURCE_PREFIXES:
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relpath


@dataclass(frozen=True)
class FunctionSymbol:
    """One module-level function or class method.

    Attributes:
        qualname: dotted name, ``module.func`` or ``module.Class.func``.
        module: dotted module name.
        name: the bare function name.
        class_name: enclosing class name, or ``None`` for free functions.
        relpath: repo-relative path of the defining file.
        node: the ``ast`` definition node.
    """

    qualname: str
    module: str
    name: str
    class_name: str | None
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(compare=False,
                                                        hash=False)

    @property
    def display(self) -> str:
        """Short human name (``Class.func`` or ``func``)."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


class ModuleSymbols:
    """Symbols defined by one module.

    Attributes:
        ctx: the engine :class:`~repro.analysis.engine.FileContext`.
        module: dotted module name.
        functions: qualname -> :class:`FunctionSymbol` (module-level
            functions and class methods; nested defs belong to their
            enclosing function's body).
        aliases: local name -> canonical dotted target, from imports.
        module_assigns: module-level bindings, name -> value AST node.
    """

    def __init__(self, ctx: "FileContext") -> None:
        self.ctx = ctx
        self.module = module_name_for(ctx.relpath)
        self.aliases = import_aliases(ctx.tree)
        self.functions: dict[str, FunctionSymbol] = {}
        self.module_assigns: dict[str, ast.AST] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        self._add_function(sub, class_name=stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in assigned_names(target):
                        self.module_assigns[name] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                for name in assigned_names(stmt.target):
                    self.module_assigns[name] = stmt.value

    def _add_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str | None) -> None:
        scope = f"{self.module}.{class_name}" if class_name else self.module
        qualname = f"{scope}.{node.name}"
        self.functions[qualname] = FunctionSymbol(
            qualname=qualname, module=self.module, name=node.name,
            class_name=class_name, relpath=self.ctx.relpath, node=node)


class SymbolTable:
    """All modules of a lint run, with cross-module name resolution."""

    def __init__(self, modules: dict[str, ModuleSymbols]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionSymbol] = {}
        self.by_simple_name: dict[str, list[FunctionSymbol]] = defaultdict(
            list)
        for mod in modules.values():
            for symbol in mod.functions.values():
                self.functions[symbol.qualname] = symbol
                self.by_simple_name[symbol.name].append(symbol)

    def _split_module(self, dotted: str) -> tuple[str | None, str]:
        """Split ``dotted`` at its longest known-module prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return None, dotted

    def resolve_qualname(self, dotted: str) -> FunctionSymbol | None:
        """Resolve a dotted reference, following re-export aliases."""
        seen: set[str] = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            symbol = self.functions.get(current)
            if symbol is not None:
                return symbol
            module, rest = self._split_module(current)
            if module is None or not rest:
                return None
            head, _, tail = rest.partition(".")
            target = self.modules[module].aliases.get(head)
            if target is None:
                # module.Class.method with no alias indirection
                return self.functions.get(current)
            current = f"{target}.{tail}" if tail else target
        return None

    def resolve_call(self, mod: ModuleSymbols, class_name: str | None,
                     call: ast.Call, *,
                     unique_name_fallback: bool = True
                     ) -> FunctionSymbol | None:
        """Resolve a call expression to a project function, if possible.

        Resolution order: same-module functions, import aliases (with
        re-export chasing), ``self.``/``cls.`` methods of the enclosing
        class, then — when ``unique_name_fallback`` — a method call
        ``obj.name(...)`` whose attribute names exactly one project
        function (class-hierarchy-analysis lite).
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(mod, func.id)
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                    and class_name is not None):
                symbol = self.functions.get(
                    f"{mod.module}.{class_name}.{func.attr}")
                if symbol is not None:
                    return symbol
            dotted = canonical_name(func, mod.aliases)
            if dotted is not None:
                symbol = self.resolve_qualname(dotted)
                if symbol is not None:
                    return symbol
            if (unique_name_fallback
                    and func.attr not in _COMMON_METHOD_NAMES):
                candidates = self.by_simple_name.get(func.attr, [])
                if len(candidates) == 1:
                    return candidates[0]
        return None

    def resolve_name(self, mod: ModuleSymbols,
                     name: str) -> FunctionSymbol | None:
        """Resolve a bare name used inside ``mod`` to a project function."""
        symbol = self.functions.get(f"{mod.module}.{name}")
        if symbol is not None:
            return symbol
        target = mod.aliases.get(name)
        if target is not None:
            return self.resolve_qualname(target)
        return None


def build_symbol_table(contexts: Iterable["FileContext"]) -> SymbolTable:
    """Build the project symbol table from parsed lint targets."""
    modules: dict[str, ModuleSymbols] = {}
    for ctx in contexts:
        mod = ModuleSymbols(ctx)
        modules[mod.module] = mod
    return SymbolTable(modules)
