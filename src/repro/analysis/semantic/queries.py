"""High-level semantic queries: the questions the project rules ask.

This module assembles the :class:`SemanticModel` (symbol table + call
graph + summaries + sink hits) and exposes the three derived analyses
behind rules REPRO011-013:

* :attr:`SemanticModel.sink_findings` — concrete determinism taint
  arriving at a ledger/cache/buffer sink (REPRO011).
* :func:`parity_pairs` / :func:`signature_drift` /
  :func:`reachable_from_tests` — fast/``*_reference`` twin pairing,
  signature comparison, and test-reachability (REPRO012).
* :func:`shard_state_findings` — module-level mutable state accessed
  under the fleet entry points while mutated by function code
  (REPRO013).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.astutil import canonical_name, dotted_name
from repro.analysis.semantic.callgraph import CallGraph, build_call_graph
from repro.analysis.semantic.summaries import (
    FunctionSummary,
    compute_summaries,
)
from repro.analysis.semantic.symbols import (
    FunctionSymbol,
    SymbolTable,
    build_symbol_table,
)
from repro.analysis.semantic.taint import SinkHit

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.engine import FileContext, Project

REFERENCE_SUFFIX = "_reference"


@dataclass(frozen=True)
class SemanticModel:
    """Everything the semantic rules share for one lint run."""

    table: SymbolTable
    graph: CallGraph
    summaries: dict[str, FunctionSummary]
    sink_findings: tuple[SinkHit, ...]


def build_model(project: "Project") -> SemanticModel:
    """Build the whole-program model from a parsed project."""
    table = build_symbol_table(project.contexts)
    graph = build_call_graph(table)
    summaries, hits = compute_summaries(table)
    return SemanticModel(table=table, graph=graph, summaries=summaries,
                         sink_findings=tuple(hits))


# -- REPRO012: parity pairs ---------------------------------------------

@dataclass(frozen=True)
class ParityPair:
    """A fast-path function and its ``*_reference`` twin."""

    fast: FunctionSymbol
    reference: FunctionSymbol


def parity_pairs(table: SymbolTable) -> list[ParityPair]:
    """Every ``foo``/``foo_reference`` pair in the same namespace."""
    pairs: list[ParityPair] = []
    for qualname in sorted(table.functions):
        symbol = table.functions[qualname]
        name = symbol.name
        if not name.endswith(REFERENCE_SUFFIX) or name == REFERENCE_SUFFIX:
            continue
        base = name[: -len(REFERENCE_SUFFIX)]
        if base.startswith("_"):
            continue
        fast_qualname = qualname[: -len(name)] + base
        fast = table.functions.get(fast_qualname)
        if fast is not None:
            pairs.append(ParityPair(fast=fast, reference=symbol))
    return pairs


def _positional(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


def signature_drift(pair: ParityPair) -> str | None:
    """Describe how the twins' signatures diverge, or ``None``.

    The fast path may append *extra* trailing parameters as long as
    they are defaulted (the plan-cache/output-buffer injection idiom);
    everything the reference accepts, the fast path must accept under
    the same name, position and kind.
    """
    fast, ref = pair.fast.node.args, pair.reference.node.args
    fast_pos, ref_pos = _positional(pair.fast.node), _positional(
        pair.reference.node)
    if fast_pos[: len(ref_pos)] != ref_pos:
        return (f"positional parameters differ: fast has {fast_pos}, "
                f"reference has {ref_pos}")
    extra = len(fast_pos) - len(ref_pos)
    if extra > len(fast.defaults):
        return (f"fast path adds {extra} positional parameter(s) without "
                f"defaults beyond the reference's {ref_pos}")
    if (fast.vararg is None) != (ref.vararg is None):
        return "one twin takes *args and the other does not"
    fast_kw = [a.arg for a in fast.kwonlyargs]
    ref_kw = [a.arg for a in ref.kwonlyargs]
    missing = [name for name in ref_kw if name not in fast_kw]
    if missing:
        return (f"fast path is missing keyword-only parameter(s) "
                f"{missing} of the reference")
    for name in fast_kw:
        if name in ref_kw:
            continue
        index = fast_kw.index(name)
        if fast.kw_defaults[index] is None:
            return (f"fast path adds required keyword-only parameter "
                    f"'{name}' absent from the reference")
    if (fast.kwarg is None) != (ref.kwarg is None):
        return "one twin takes **kwargs and the other does not"
    return None


def test_identifiers(ctx: "FileContext") -> frozenset[str]:
    """Every name a test file could use to reach a function."""
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[-1])
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.isidentifier():
                names.add(node.value)
    return frozenset(names)


def reachable_from_tests(model: SemanticModel,
                         test_contexts: Sequence["FileContext"]
                         ) -> frozenset[str]:
    """Qualnames reachable from any name the test corpus mentions."""
    mentioned: set[str] = set()
    for ctx in test_contexts:
        mentioned.update(test_identifiers(ctx))
    roots = [qualname for qualname, symbol in model.table.functions.items()
             if symbol.name in mentioned]
    return model.graph.reachable(roots)


# -- REPRO013: shard safety ---------------------------------------------

#: Call targets whose result is mutable shared state when bound at
#: module level.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.Counter",
    "collections.deque", "collections.OrderedDict",
    "defaultdict", "Counter", "deque", "OrderedDict",
})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
})


def _is_mutable_initializer(node: ast.AST, aliases: dict[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = canonical_name(node.func, aliases) or dotted_name(node.func)
        return name in _MUTABLE_CALLS
    return False


def mutable_module_state(table: SymbolTable) -> dict[str, ast.AST]:
    """Module-level mutable bindings, keyed by ``module.name``."""
    bindings: dict[str, ast.AST] = {}
    for module, mod in table.modules.items():
        for name, value in mod.module_assigns.items():
            if _is_mutable_initializer(value, mod.aliases):
                bindings[f"{module}.{name}"] = value
    return bindings


@dataclass(frozen=True)
class StateAccess:
    """One function touching one module-level mutable binding."""

    binding: str
    function: FunctionSymbol
    line: int
    col: int
    is_write: bool


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 ) -> frozenset[str]:
    """Names the function binds locally (params + any store)."""
    names = set(_positional(node))
    args = node.args
    if args.vararg is not None:
        names.add(args.vararg.arg)
    names.update(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    globals_: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            globals_.update(child.names)
        elif isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)):
            names.add(child.id)
    return frozenset(names - globals_)


def state_accesses(table: SymbolTable) -> list[StateAccess]:
    """Every read/write of a mutable module binding inside a function."""
    bindings = mutable_module_state(table)
    accesses: list[StateAccess] = []
    for qualname in sorted(table.functions):
        symbol = table.functions[qualname]
        mod = table.modules[symbol.module]
        local = _local_names(symbol.node)
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(symbol.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(symbol.node):
            binding: str | None = None
            if isinstance(node, ast.Name) and node.id not in local:
                candidate = f"{symbol.module}.{node.id}"
                if candidate in bindings:
                    binding = candidate
            elif isinstance(node, ast.Attribute):
                candidate = canonical_name(node, mod.aliases)
                if candidate in bindings and candidate.rpartition(
                        ".")[0] != symbol.module:
                    binding = candidate
            if binding is None:
                continue
            accesses.append(StateAccess(
                binding=binding, function=symbol,
                line=node.lineno, col=node.col_offset,
                is_write=_is_mutation(node, parents)))
    return accesses


def _is_mutation(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Whether this reference is the receiver of a mutation."""
    parent = parents.get(node)
    if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                 (ast.Store, ast.Del)):
        return True
    if isinstance(parent, ast.Attribute) and parent.value is node:
        grand = parents.get(parent)
        if (isinstance(grand, ast.Call) and grand.func is parent
                and parent.attr in _MUTATOR_METHODS):
            return True
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
    if isinstance(parent, ast.Subscript) and parent.value is node:
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        grand = parents.get(parent)
        if isinstance(grand, ast.AugAssign) and grand.target is parent:
            return True
    return False


@dataclass(frozen=True)
class ShardHazard:
    """A shard-unsafe access for REPRO013 to report."""

    access: StateAccess
    writers: tuple[str, ...]


def shard_state_findings(model: SemanticModel,
                         root_patterns: Iterable[str]
                         ) -> list[ShardHazard]:
    """Mutable module state touched under the fleet entry points.

    A binding is hazardous when some function mutates it (its value
    then depends on call history, which shard layout changes) and code
    reachable from a ``root_patterns`` entry point touches it.
    """
    accesses = state_accesses(model.table)
    writers: dict[str, set[str]] = {}
    for access in accesses:
        if access.is_write:
            writers.setdefault(access.binding, set()).add(
                access.function.display)
    roots = [qualname
             for qualname, symbol in model.table.functions.items()
             if any(fnmatch(symbol.name, pattern)
                    for pattern in root_patterns)]
    reachable = model.graph.reachable(roots)
    hazards: list[ShardHazard] = []
    seen: set[tuple[str, int, int]] = set()
    for access in accesses:
        if access.binding not in writers:
            continue
        if access.function.qualname not in reachable:
            continue
        key = (access.function.relpath, access.line, access.col)
        if key in seen:
            continue
        seen.add(key)
        hazards.append(ShardHazard(
            access=access,
            writers=tuple(sorted(writers[access.binding]))))
    hazards.sort(key=lambda h: (h.access.function.relpath, h.access.line,
                                h.access.col))
    return hazards
