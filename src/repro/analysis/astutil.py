"""Small AST helpers shared by the reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted module/object they bind.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from numpy import random as nr`` yields ``{"nr": "numpy.random"}``;
    ``from numpy.random import default_rng`` yields
    ``{"default_rng": "numpy.random.default_rng"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (else ``None``)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Like :func:`dotted_name`, with the head resolved through imports.

    ``np.random.normal`` with ``{"np": "numpy"}`` becomes
    ``numpy.random.normal``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return dotted
    return f"{resolved}.{rest}" if rest else resolved


def is_numeric_literal(node: ast.AST) -> bool:
    """True for an int/float ``Constant`` (excluding bools)."""
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def numeric_literals(node: ast.AST) -> Iterator[ast.Constant]:
    """Yield every numeric literal in ``node``'s subtree."""
    for child in ast.walk(node):
        if is_numeric_literal(child):
            yield child


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Yield plain names bound by an assignment target (tuples included)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)


def function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield every function/method definition node in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
