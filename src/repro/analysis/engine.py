"""Core of the ``reprolint`` static-analysis engine.

The engine is deliberately small: it parses every target file once into
an :mod:`ast` tree, wraps each in a :class:`FileContext` carrying the
source text and suppression comments, and hands the contexts to a
registry of domain rules.  Rules come in two flavours:

* :class:`FileRule` — examines one file at a time (RNG discipline,
  dtype contracts, magic numbers...).
* :class:`ProjectRule` — examines the whole tree at once, including the
  test corpus (parity-pair coverage needs to cross-reference ``tests/``).

Findings carry a stable rule ID, a location, and a fix-it hint so the
reporters (:mod:`repro.analysis.reporting`) and the baseline filter
(:mod:`repro.analysis.baseline`) can round-trip them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.errors import ConfigurationError

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule_id: stable identifier, e.g. ``"REPRO001"``.
        path: repo-root-relative POSIX path of the offending file.
        line: 1-based line number.
        col: 0-based column offset.
        message: human-readable statement of the violation.
        hint: short fix-it suggestion (may be empty).
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-insensitive identity used for baseline matching."""
        return (self.rule_id, self.path, self.message)

    def render(self) -> str:
        """One-line ``path:line:col: ID message`` rendering."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text


class FileContext:
    """A parsed source file plus the lookup helpers rules need.

    Attributes:
        path: absolute path on disk.
        relpath: POSIX path relative to the project root.
        source: full file text.
        lines: source split into physical lines.
        tree: the parsed :class:`ast.Module`.
    """

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._suppressions: dict[int, frozenset[str]] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def statement_of(self, node: ast.AST) -> ast.AST:
        """The enclosing statement of an expression node (or the node)."""
        current = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return ancestor
            current = ancestor
        return current

    @property
    def suppressions(self) -> dict[int, frozenset[str]]:
        """Map of line number -> rule IDs suppressed on that line.

        A ``# reprolint: disable=REPRO005`` comment suppresses the named
        rules (comma-separated; ``all`` suppresses every rule) for
        findings reported on that physical line.
        """
        if self._suppressions is None:
            table: dict[int, frozenset[str]] = {}
            for number, line in enumerate(self.lines, start=1):
                match = _SUPPRESS_RE.search(line)
                if match:
                    ids = frozenset(
                        part.strip().upper()
                        for part in match.group(1).split(",") if part.strip())
                    table[number] = ids
            self._suppressions = table
        return self._suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment silences ``finding``."""
        ids = self.suppressions.get(finding.line)
        if ids is None:
            return False
        return "ALL" in ids or finding.rule_id.upper() in ids

    def line_comment(self, line: int) -> str:
        """The comment text (without ``#``) on a 1-based line, or ``""``."""
        if not 1 <= line <= len(self.lines):
            return ""
        text = self.lines[line - 1]
        index = text.find("#")
        return text[index + 1:].strip() if index >= 0 else ""


@dataclass
class Project:
    """Everything a :class:`ProjectRule` may inspect.

    Attributes:
        root: project root directory (where ``pyproject.toml`` lives).
        contexts: the lint targets.
        test_contexts: the parsed test corpus (never linted directly by
            file rules, but cross-referenced by coverage-style rules).
        semantic_cell: shared lazy holder of the whole-program semantic
            model, so every semantic rule in one run reuses one model
            (built from the *full* target set, not one rule's scope).
        semantic_origin: the unscoped parent project the model is built
            from when this instance is a per-rule scoped view.
    """

    root: Path
    contexts: list[FileContext] = field(default_factory=list)
    test_contexts: list[FileContext] = field(default_factory=list)
    semantic_cell: list = field(default_factory=list, repr=False)
    semantic_origin: "Project | None" = field(default=None, repr=False)

    def semantic(self):
        """The cached :class:`~repro.analysis.semantic.SemanticModel`."""
        if not self.semantic_cell:
            from repro.analysis.semantic import build_model
            self.semantic_cell.append(
                build_model(self.semantic_origin or self))
        return self.semantic_cell[0]


class Rule:
    """Base class for all reprolint rules.

    Subclasses define class attributes ``rule_id`` / ``name`` /
    ``description`` and optionally ``default_scope`` (fnmatch patterns a
    file's relpath must match for the rule to run; ``None`` means every
    Python file).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    default_scope: tuple[str, ...] | None = None

    def scope(self, config: LintConfig) -> tuple[str, ...] | None:
        """Effective scope patterns after config overrides."""
        override = config.rule_scopes.get(self.rule_id)
        if override is not None:
            return tuple(override)
        return self.default_scope

    def applies_to(self, ctx: FileContext, config: LintConfig) -> bool:
        """Whether this rule examines ``ctx`` under ``config``."""
        exempt = config.rule_exempt.get(self.rule_id, ())
        if any(fnmatch(ctx.relpath, pattern) for pattern in exempt):
            return False
        patterns = self.scope(config)
        if patterns is None:
            return True
        return any(fnmatch(ctx.relpath, pattern) for pattern in patterns)


class FileRule(Rule):
    """A rule that inspects one file at a time."""

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the whole project at once."""

    def check_project(self, project: Project,
                      config: LintConfig) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        ConfigurationError: on a duplicate or missing rule ID.
    """
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ConfigurationError(
            f"rule {rule_class.__name__} does not define a rule_id")
    if rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> dict[str, type[Rule]]:
    """The registered rules, keyed by rule ID (imports the rule pack)."""
    # The rules subpackage registers itself on import; importing it here
    # keeps `engine` free of import cycles while making the registry
    # self-populating for any entry point.
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return dict(_REGISTRY)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def load_project(root: Path, targets: Iterable[Path],
                 config: LintConfig) -> Project:
    """Parse the lint targets and the test corpus into a :class:`Project`.

    Files that fail to parse are skipped with a synthetic ``REPRO000``
    finding attached later by :func:`run_analysis` (a syntax error in a
    target is itself a violation, not a crash).
    """
    project = Project(root=root)
    seen: set[Path] = set()
    for path in _iter_python_files(targets):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        relpath = _relative_to_root(resolved, root)
        if any(fnmatch(relpath, pattern) for pattern in config.exclude):
            continue
        source = resolved.read_text(encoding="utf-8")
        project.contexts.append(FileContext(resolved, relpath, source))
    tests_dir = root / config.tests_path
    if tests_dir.is_dir():
        for path in _iter_python_files([tests_dir]):
            resolved = path.resolve()
            if resolved in seen:
                continue
            relpath = _relative_to_root(resolved, root)
            source = resolved.read_text(encoding="utf-8")
            try:
                project.test_contexts.append(
                    FileContext(resolved, relpath, source))
            except SyntaxError:
                continue
    return project


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(root: Path, targets: Iterable[Path],
                 config: LintConfig,
                 cache: "LintCache | None" = None) -> list[Finding]:
    """Run every enabled rule over the targets and return raw findings.

    Inline suppressions are honoured here; baseline filtering is the
    caller's responsibility (see :mod:`repro.analysis.baseline`).  With
    a :class:`~repro.analysis.cache.LintCache`, per-file rule results
    for content-unchanged files are served from the cache; project
    rules always run (their answers span files).
    """
    from repro.analysis.cache import file_digest

    project = load_project(root, targets, config)
    rules = [cls() for rule_id, cls in sorted(all_rules().items())
             if config.rule_enabled(rule_id)]
    file_rules = [rule for rule in rules if isinstance(rule, FileRule)]
    project_rules = [rule for rule in rules
                     if isinstance(rule, ProjectRule)]
    for rule in rules:
        if not isinstance(rule, (FileRule, ProjectRule)):
            # pragma: no cover - registry only holds the two kinds
            raise ConfigurationError(
                f"rule {rule.rule_id} is neither a FileRule nor a "
                f"ProjectRule")
    findings: list[Finding] = []
    for ctx in project.contexts:
        cached: list[Finding] | None = None
        digest = ""
        if cache is not None:
            digest = file_digest(ctx.source)
            cached = cache.lookup(ctx.relpath, digest)
        if cached is not None:
            findings.extend(cached)
            continue
        produced: list[Finding] = []
        for rule in file_rules:
            if rule.applies_to(ctx, config):
                produced.extend(rule.check_file(ctx, config))
        if cache is not None:
            cache.store(ctx.relpath, digest, produced)
        findings.extend(produced)
    if cache is not None:
        cache.prune(ctx.relpath for ctx in project.contexts)
    for rule in project_rules:
        scoped = [ctx for ctx in project.contexts
                  if rule.applies_to(ctx, config)]
        sub = Project(root=project.root, contexts=scoped,
                      test_contexts=project.test_contexts,
                      semantic_cell=project.semantic_cell,
                      semantic_origin=project)
        findings.extend(rule.check_project(sub, config))
    by_path = {ctx.relpath: ctx for ctx in project.contexts}
    kept = [finding for finding in findings
            if not (finding.path in by_path
                    and by_path[finding.path].is_suppressed(finding))]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept
