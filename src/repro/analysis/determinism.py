"""``REPRO_DETERMINISM=1``: double-run determinism diffing.

The static taint pass (REPRO011) and shard-safety rule (REPRO013) catch
nondeterminism the AST can see; this module catches the rest by
construction.  It runs the same fleet campaign **twice in separate
interpreters** under different ``PYTHONHASHSEED`` values and different
shard counts, fingerprints everything each run produced (every per-node
result array plus the hierarchical rollup), and raises
:class:`~repro.analysis.sanitize.SanitizerError` unless the hashes are
bit-identical.  A hash-seed difference flushes out any surviving
dict/set iteration-order dependence; a shard-count difference flushes
out any per-process accumulated state — the two runtime failure modes
the fleet engine's ``(seed, node_id, draw_index)`` contract promises
away.

The check is wired into ``examples/fleet_campaign.py``: exporting
``REPRO_DETERMINISM=1`` makes the example re-prove the contract on a
scaled-down copy of its own campaign before reporting success.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.sanitize import SanitizerError, determinism_enabled

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.ota.fleet.config import FleetCampaignConfig
    from repro.ota.fleet.engine import FleetReport

#: Environment knobs the subprocess entry point reads.
ENV_NODES = "REPRO_DET_NODES"
ENV_IMAGE_BYTES = "REPRO_DET_IMAGE_BYTES"
ENV_SEED = "REPRO_DET_SEED"
ENV_VERIFY_P = "REPRO_DET_VERIFY_P"
ENV_LOSS = "REPRO_DET_LOSS"
ENV_SHARDS = "REPRO_DET_SHARDS"

#: (PYTHONHASHSEED, shard count) pairs for the two runs.  Different
#: hash seeds vary dict/set iteration order; different shard counts
#: vary the node partition.  Bit-exactness must survive both.
DEFAULT_RUNS: tuple[tuple[str, int], ...] = (("101", 1), ("202", 3))

#: Node-count cap for the double run — enough nodes to exercise every
#: outcome path while keeping the check a sub-second affair per run.
DEFAULT_MAX_NODES = 2048


def fleet_fingerprint(report: "FleetReport") -> str:
    """Deterministic digest of everything a campaign produced.

    Hashes every per-node result array (name, dtype, shape, raw bytes)
    in field order plus the rollup's sorted spill rows, so any
    divergence anywhere in the report changes the digest.
    """
    import numpy as np

    digest = hashlib.sha256()
    for field in dataclasses.fields(report):
        value = getattr(report, field.name)
        if not isinstance(value, np.ndarray):
            continue
        digest.update(field.name.encode())
        digest.update(value.dtype.str.encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    rows = json.dumps(report.rollup.to_rows(), sort_keys=True)
    digest.update(rows.encode())
    return digest.hexdigest()


def _campaign_env(config: "FleetCampaignConfig",
                  shards: int) -> dict[str, str]:
    """Serialize the campaign knobs the subprocess rebuilds from."""
    return {
        ENV_NODES: str(config.num_nodes),
        ENV_IMAGE_BYTES: str(config.image_bytes),
        ENV_SEED: str(config.seed),
        ENV_VERIFY_P: repr(config.verify_failure_prob),
        ENV_LOSS: "burst" if config.loss is not None else "none",
        ENV_SHARDS: str(shards),
    }


def _campaign_from_env(env: Mapping[str, str]) -> "FleetCampaignConfig":
    from repro.ota.fleet.config import FleetBurstLoss, FleetCampaignConfig

    loss = FleetBurstLoss() if env.get(ENV_LOSS) == "burst" else None
    return FleetCampaignConfig(
        num_nodes=int(env[ENV_NODES]),
        image_bytes=int(env[ENV_IMAGE_BYTES]),
        seed=int(env[ENV_SEED]),
        verify_failure_prob=float(env[ENV_VERIFY_P]),
        loss=loss)


def _fingerprint_main() -> None:
    """Subprocess entry: run the campaign from env, print the digest."""
    from repro.ota.fleet.shard import run_fleet_campaign_sharded

    config = _campaign_from_env(os.environ)
    shards = int(os.environ.get(ENV_SHARDS, "1"))
    # The env *is* the configuration channel here: the parent serialized
    # the campaign knobs through it precisely so this run is replayable.
    report = run_fleet_campaign_sharded(config, shards=shards)  # reprolint: disable=REPRO011
    print(fleet_fingerprint(report))


def double_run_check(config: "FleetCampaignConfig",
                     runs: Sequence[tuple[str, int]] = DEFAULT_RUNS,
                     max_nodes: int = DEFAULT_MAX_NODES) -> str:
    """Run the campaign once per ``(hashseed, shards)`` pair and diff.

    Returns the common fingerprint.

    Raises:
        SanitizerError: when any run's fingerprint diverges, or a run
            fails outright.
    """
    import repro

    if config.num_nodes > max_nodes:
        config = dataclasses.replace(config, num_nodes=max_nodes)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    fingerprints: list[tuple[str, int, str]] = []
    for hashseed, shards in runs:
        env = dict(os.environ)
        env.update(_campaign_env(config, shards))
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.analysis.determinism import _fingerprint_main; "
             "_fingerprint_main()"],
            env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SanitizerError(
                f"determinism run (hashseed={hashseed}, shards={shards}) "
                f"failed: {proc.stderr.strip()[-500:]}")
        fingerprints.append((hashseed, shards, proc.stdout.strip()))
    distinct = {fp for _, _, fp in fingerprints}
    if len(distinct) != 1:
        detail = ", ".join(f"hashseed={h} shards={s} -> {fp[:16]}"
                           for h, s, fp in fingerprints)
        raise SanitizerError(
            f"campaign is not run-deterministic: {detail}; some value "
            f"depends on hash-seed iteration order or per-process state")
    return fingerprints[0][2]


def check_from_env(config: "FleetCampaignConfig",
                   environ: Mapping[str, str] | None = None) -> str | None:
    """Run :func:`double_run_check` when ``REPRO_DETERMINISM=1``.

    Returns the fingerprint when the check ran, ``None`` otherwise.
    """
    if not determinism_enabled(environ):
        return None
    return double_run_check(config)
