"""``REPRO_DETERMINISM=1``: double-run determinism diffing.

The static taint pass (REPRO011) and shard-safety rule (REPRO013) catch
nondeterminism the AST can see; this module catches the rest by
construction.  It runs the same fleet campaign **twice in separate
interpreters** under different ``PYTHONHASHSEED`` values and different
shard counts, fingerprints everything each run produced (every per-node
result array plus the hierarchical rollup), and raises
:class:`~repro.analysis.sanitize.SanitizerError` unless the hashes are
bit-identical.  A hash-seed difference flushes out any surviving
dict/set iteration-order dependence; a shard-count difference flushes
out any per-process accumulated state — the two runtime failure modes
the fleet engine's ``(seed, node_id, draw_index)`` contract promises
away.

The check is wired into ``examples/fleet_campaign.py``: exporting
``REPRO_DETERMINISM=1`` makes the example re-prove the contract on a
scaled-down copy of its own campaign before reporting success.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.sanitize import SanitizerError, determinism_enabled

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.ota.fleet.config import FleetCampaignConfig
    from repro.ota.fleet.engine import FleetReport

#: Environment knobs the subprocess entry point reads.
ENV_NODES = "REPRO_DET_NODES"
ENV_IMAGE_BYTES = "REPRO_DET_IMAGE_BYTES"
ENV_SEED = "REPRO_DET_SEED"
ENV_VERIFY_P = "REPRO_DET_VERIFY_P"
ENV_LOSS = "REPRO_DET_LOSS"
ENV_SHARDS = "REPRO_DET_SHARDS"

#: (PYTHONHASHSEED, shard count) pairs for the two runs.  Different
#: hash seeds vary dict/set iteration order; different shard counts
#: vary the node partition.  Bit-exactness must survive both.
DEFAULT_RUNS: tuple[tuple[str, int], ...] = (("101", 1), ("202", 3))

#: Node-count cap for the double run — enough nodes to exercise every
#: outcome path while keeping the check a sub-second affair per run.
DEFAULT_MAX_NODES = 2048


def fleet_fingerprint(report: "FleetReport") -> str:
    """Deterministic digest of everything a campaign produced.

    Hashes every per-node result array (name, dtype, shape, raw bytes)
    in field order plus the rollup's sorted spill rows, so any
    divergence anywhere in the report changes the digest.
    """
    import numpy as np

    digest = hashlib.sha256()
    for field in dataclasses.fields(report):
        value = getattr(report, field.name)
        if not isinstance(value, np.ndarray):
            continue
        digest.update(field.name.encode())
        digest.update(value.dtype.str.encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    rows = json.dumps(report.rollup.to_rows(), sort_keys=True)
    digest.update(rows.encode())
    return digest.hexdigest()


def _campaign_env(config: "FleetCampaignConfig",
                  shards: int) -> dict[str, str]:
    """Serialize the campaign knobs the subprocess rebuilds from."""
    return {
        ENV_NODES: str(config.num_nodes),
        ENV_IMAGE_BYTES: str(config.image_bytes),
        ENV_SEED: str(config.seed),
        ENV_VERIFY_P: repr(config.verify_failure_prob),
        ENV_LOSS: "burst" if config.loss is not None else "none",
        ENV_SHARDS: str(shards),
    }


def _campaign_from_env(env: Mapping[str, str]) -> "FleetCampaignConfig":
    from repro.ota.fleet.config import FleetBurstLoss, FleetCampaignConfig

    loss = FleetBurstLoss() if env.get(ENV_LOSS) == "burst" else None
    return FleetCampaignConfig(
        num_nodes=int(env[ENV_NODES]),
        image_bytes=int(env[ENV_IMAGE_BYTES]),
        seed=int(env[ENV_SEED]),
        verify_failure_prob=float(env[ENV_VERIFY_P]),
        loss=loss)


def _fingerprint_main() -> None:
    """Subprocess entry: run the campaign from env, print the digest."""
    from repro.ota.fleet.shard import run_fleet_campaign_sharded

    config = _campaign_from_env(os.environ)
    shards = int(os.environ.get(ENV_SHARDS, "1"))
    # The env *is* the configuration channel here: the parent serialized
    # the campaign knobs through it precisely so this run is replayable.
    report = run_fleet_campaign_sharded(config, shards=shards)  # reprolint: disable=REPRO011
    print(fleet_fingerprint(report))


def double_run_check(config: "FleetCampaignConfig",
                     runs: Sequence[tuple[str, int]] = DEFAULT_RUNS,
                     max_nodes: int = DEFAULT_MAX_NODES) -> str:
    """Run the campaign once per ``(hashseed, shards)`` pair and diff.

    Returns the common fingerprint.

    Raises:
        SanitizerError: when any run's fingerprint diverges, or a run
            fails outright.
    """
    import repro

    if config.num_nodes > max_nodes:
        config = dataclasses.replace(config, num_nodes=max_nodes)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    fingerprints: list[tuple[str, int, str]] = []
    for hashseed, shards in runs:
        env = dict(os.environ)
        env.update(_campaign_env(config, shards))
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.analysis.determinism import _fingerprint_main; "
             "_fingerprint_main()"],
            env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SanitizerError(
                f"determinism run (hashseed={hashseed}, shards={shards}) "
                f"failed: {proc.stderr.strip()[-500:]}")
        fingerprints.append((hashseed, shards, proc.stdout.strip()))
    distinct = {fp for _, _, fp in fingerprints}
    if len(distinct) != 1:
        detail = ", ".join(f"hashseed={h} shards={s} -> {fp[:16]}"
                           for h, s, fp in fingerprints)
        raise SanitizerError(
            f"campaign is not run-deterministic: {detail}; some value "
            f"depends on hash-seed iteration order or per-process state")
    return fingerprints[0][2]


def check_from_env(config: "FleetCampaignConfig",
                   environ: Mapping[str, str] | None = None) -> str | None:
    """Run :func:`double_run_check` when ``REPRO_DETERMINISM=1``.

    Returns the fingerprint when the check ran, ``None`` otherwise.
    """
    if not determinism_enabled(environ):
        return None
    return double_run_check(config)


# -- campaign-service double run ------------------------------------------

ENV_SERVICE_SEED = "REPRO_DET_SERVICE_SEED"

#: PYTHONHASHSEED values for the two service runs.  The service has no
#: shard axis; hash-seed variation alone flushes out iteration-order
#: dependence in admission, scheduling, caching and event journaling.
SERVICE_RUNS: tuple[str, ...] = ("101", "202")


def service_session_fingerprint(seed: int) -> str:
    """Run a scripted multi-tenant service session and digest it all.

    The session exercises every decision path the scheduler has:
    priorities out of submission order, a second tenant with tight
    limits, a duplicate seeded spec (a cache hit), and enough
    submissions to trip the tight tenant's quota.  The digest covers
    each job's lifecycle and result fingerprint, every ledger row
    (kind, label, bit-exact timestamps) and the final stats, so *any*
    divergence anywhere in the service changes it.
    """
    from repro.service import (
        PRIORITY_BATCH,
        PRIORITY_HIGH,
        CampaignService,
        JobSpec,
        TenantConfig,
    )

    service = CampaignService(
        seed=seed,
        tenants=(TenantConfig(name="lab", max_pending=2,
                              bucket_capacity=2.0, refill_per_s=1.0),))
    specs = (
        JobSpec(kind="sweep-ble",
                config={"packets": 2, "stop_dbm": -86.0}, seed=seed),
        JobSpec(kind="sweep-lora",
                config={"symbols": 10, "stop_dbm": -116.0,
                        "step_db": 6.0},
                seed=seed, priority=PRIORITY_HIGH),
        JobSpec(kind="campaign", config={"nodes": 3}, seed=seed,
                tenant="lab"),
        JobSpec(kind="sweep-ble",
                config={"packets": 2, "stop_dbm": -86.0}, seed=seed),
        JobSpec(kind="adr", seed=seed, tenant="lab",
                priority=PRIORITY_BATCH),
        JobSpec(kind="info", seed=seed, priority=PRIORITY_BATCH),
        JobSpec(kind="power", seed=seed, tenant="lab"),
    )
    for spec in specs:
        service.submit(spec)
    service.run_until_idle()

    return service_digest(service)


def service_digest(service) -> str:
    """Deterministic digest of everything a service session produced.

    Covers each job's lifecycle (state, attempts, cache verdict,
    detail) and result fingerprint, every ledger row with bit-exact
    float timestamps, and the full stats snapshot.  Any divergence
    anywhere in admission, scheduling, supervision, caching or event
    journaling changes the digest — which is exactly what makes it the
    crash-recovery parity oracle: a recovered session must reproduce
    the uninterrupted session's digest bit-for-bit.
    """
    digest = hashlib.sha256()
    for job in service.jobs():
        digest.update(
            f"{job.job_id}|{job.state}|{int(job.cache_hit)}|"
            f"{job.attempts}|{job.detail}".encode())
        if job.result is not None:
            digest.update(job.result.fingerprint().encode())
    for event in service.timeline:
        digest.update(
            f"{event.kind}|{event.label}|{event.t_start_s.hex()}|"
            f"{event.duration_s.hex()}".encode())
    stats = service.stats()
    digest.update(json.dumps(
        {"submitted": stats.submitted, "admitted": stats.admitted,
         "rejected": stats.rejected, "completed": stats.completed,
         "failed": stats.failed, "quarantined": stats.quarantined,
         "shed": stats.shed, "cache_hits": stats.cache_hits,
         "virtual_now_s": stats.virtual_now_s.hex(),
         "invocations": stats.invocations, "tenants": stats.tenants},
        sort_keys=True).encode())
    return digest.hexdigest()


def _service_fingerprint_main() -> None:
    """Subprocess entry: run the scripted session, print the digest."""
    # The env *is* the configuration channel here: the parent serialized
    # the session seed through it precisely so this run is replayable.
    seed = int(os.environ[ENV_SERVICE_SEED])
    print(service_session_fingerprint(seed))  # reprolint: disable=REPRO011


def service_double_run_check(
        seed: int = 0,
        hashseeds: Sequence[str] = SERVICE_RUNS) -> str:
    """Run the service session once per hash seed and diff the digests.

    Returns the common fingerprint.

    Raises:
        SanitizerError: when any run's fingerprint diverges, or a run
            fails outright.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    fingerprints: list[tuple[str, str]] = []
    for hashseed in hashseeds:
        env = dict(os.environ)
        env[ENV_SERVICE_SEED] = str(seed)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.analysis.determinism import "
             "_service_fingerprint_main; _service_fingerprint_main()"],
            env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SanitizerError(
                f"service determinism run (hashseed={hashseed}) failed: "
                f"{proc.stderr.strip()[-500:]}")
        fingerprints.append((hashseed, proc.stdout.strip()))
    distinct = {fp for _, fp in fingerprints}
    if len(distinct) != 1:
        detail = ", ".join(f"hashseed={h} -> {fp[:16]}"
                           for h, fp in fingerprints)
        raise SanitizerError(
            f"campaign service is not run-deterministic: {detail}; some "
            f"admission, scheduling or caching decision depends on "
            f"hash-seed iteration order")
    return fingerprints[0][1]


def service_check_from_env(
        seed: int = 0,
        environ: Mapping[str, str] | None = None) -> str | None:
    """Run :func:`service_double_run_check` when ``REPRO_DETERMINISM=1``.

    Returns the fingerprint when the check ran, ``None`` otherwise.
    """
    if not determinism_enabled(environ):
        return None
    return service_double_run_check(seed)


# -- resilient-service double run ------------------------------------------

ENV_RESILIENCE_SEED = "REPRO_DET_RESILIENCE_SEED"


def resilient_session_tenants(seed: int):
    """The extra tenants the scripted resilient session registers.

    Exposed separately because a crash-recovery driver must re-add any
    tenant whose journal record the crash ate (tenant *configuration*
    is the operator's input, not derivable service state).
    """
    from repro.service import TenantConfig

    return (TenantConfig(name="lab", max_pending=4,
                         bucket_capacity=8.0, refill_per_s=8.0),)


def resilient_session_service(seed: int, journal=None):
    """A service with the full resilience stack armed, keyed by seed.

    Supervised retries with jittered backoff, a hair-trigger circuit
    breaker, queue-depth load shedding and seeded worker-crash /
    workload-hang chaos — every degradation path the scheduler has, so
    the session fingerprint covers all of them.
    """
    from repro.faults.service import (
        ServiceFaultPlan,
        WorkerCrashModel,
        WorkloadHangModel,
    )
    from repro.ota.mac import RetryPolicy
    from repro.service import (
        BreakerConfig,
        CampaignService,
        SheddingPolicy,
        SupervisorConfig,
    )

    return CampaignService(
        seed=seed,
        journal=journal,
        tenants=resilient_session_tenants(seed),
        supervisor=SupervisorConfig(
            policy=RetryPolicy(max_attempts=3, backoff="exponential",
                               base_delay_s=0.5, jitter_fraction=0.1,
                               seed=seed + 1)),
        breakers=BreakerConfig(seed=seed + 2, failure_threshold=2,
                               open_duration_s=30.0),
        shedding=SheddingPolicy(queue_high_water=6),
        faults=ServiceFaultPlan(
            seed=seed + 3,
            worker_crash=WorkerCrashModel(seed=seed + 3, crash_prob=0.25),
            workload_hang=WorkloadHangModel(seed=seed + 3,
                                            hang_prob=0.2)))


def resilient_session_specs(seed: int):
    """The scripted resilient session's submissions, keyed by seed.

    Exercises every terminal state: cheap completions across two
    tenants, an exact duplicate (a cache hit), a twice-submitted
    always-failing spec (two strikes trip the ``sweep-lora`` breaker,
    so a third identical submission is rejected at dispatch with the
    breaker open), and enough submissions to make shedding reachable.
    """
    from repro.service import PRIORITY_HIGH, JobSpec

    poison = JobSpec(kind="sweep-lora",
                     config={"spreading_factor": 99}, seed=seed)
    return (
        JobSpec(kind="info", seed=seed),
        JobSpec(kind="power", seed=seed, tenant="lab"),
        poison,
        JobSpec(kind="sweep-ble",
                config={"packets": 2, "stop_dbm": -86.0}, seed=seed,
                priority=PRIORITY_HIGH),
        poison,
        JobSpec(kind="info", seed=seed),
        poison,
        JobSpec(kind="power", seed=seed + 1, tenant="lab"),
        JobSpec(kind="info", seed=seed + 1, tenant="lab"),
    )


def resilient_session_fingerprint(seed: int) -> str:
    """Digest of the scripted resilient session (no journal attached).

    The chaos suite's parity oracle: the same session journaled,
    crashed at an arbitrary record boundary and recovered must
    reproduce this exact digest.
    """
    service = resilient_session_service(seed)
    for spec in resilient_session_specs(seed):
        service.submit(spec)
    service.run_until_idle()
    return service_digest(service)


def _resilient_fingerprint_main() -> None:
    """Subprocess entry: run the resilient session, print the digest."""
    # The env *is* the configuration channel here: the parent serialized
    # the session seed through it precisely so this run is replayable.
    seed = int(os.environ[ENV_RESILIENCE_SEED])
    print(resilient_session_fingerprint(seed))  # reprolint: disable=REPRO011


def resilience_double_run_check(
        seed: int = 0,
        hashseeds: Sequence[str] = SERVICE_RUNS) -> str:
    """Run the resilient session once per hash seed and diff digests.

    Returns the common fingerprint.

    Raises:
        SanitizerError: when any run's fingerprint diverges, or a run
            fails outright.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    fingerprints: list[tuple[str, str]] = []
    for hashseed in hashseeds:
        env = dict(os.environ)
        env[ENV_RESILIENCE_SEED] = str(seed)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.analysis.determinism import "
             "_resilient_fingerprint_main; _resilient_fingerprint_main()"],
            env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SanitizerError(
                f"resilience determinism run (hashseed={hashseed}) "
                f"failed: {proc.stderr.strip()[-500:]}")
        fingerprints.append((hashseed, proc.stdout.strip()))
    distinct = {fp for _, fp in fingerprints}
    if len(distinct) != 1:
        detail = ", ".join(f"hashseed={h} -> {fp[:16]}"
                           for h, fp in fingerprints)
        raise SanitizerError(
            f"resilient service is not run-deterministic: {detail}; some "
            f"supervision, breaker, shedding or recovery decision "
            f"depends on hash-seed iteration order")
    return fingerprints[0][1]


def resilience_check_from_env(
        seed: int = 0,
        environ: Mapping[str, str] | None = None) -> str | None:
    """Run :func:`resilience_double_run_check` under ``REPRO_DETERMINISM=1``.

    Returns the fingerprint when the check ran, ``None`` otherwise.
    """
    if not determinism_enabled(environ):
        return None
    return resilience_double_run_check(seed)
