"""REPRO006 — datasheet-constant provenance in component models.

The component models (AT86RF215/SX1276 radios, the ECP5 FPGA, the PMU,
the platform comparison tables) are built almost entirely out of numbers
copied from datasheets and the paper.  A constant without a citation
cannot be audited when a simulation disagrees with the hardware.  Every
UPPER_CASE numeric constant in these modules must carry a provenance
marker — ``# datasheet: ...``, ``# paper: ...`` or ``# spec: ...`` — as
a same-line/preceding comment or in the constant's trailing docstring.
A marker comment above a *contiguous* run of constant assignments (a
calibration table, a register map) covers the whole run — the common
block-library idiom — but any blank line ends its reach.

Constants *derived* from other named constants (no numeric literal in
the right-hand side) inherit their provenance and are exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_MARKERS = ("datasheet:", "paper:", "spec:")

_UPPER_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

_HINT = ("cite the source: '# datasheet: <doc, section>' or "
         "'# paper: <section/figure>'")


def _has_marker(text: str) -> bool:
    lowered = text.lower()
    return any(marker in lowered for marker in _MARKERS)


def _docstring_after(body: list[ast.stmt], index: int) -> str | None:
    """The string expression immediately following ``body[index]``."""
    if index + 1 < len(body):
        candidate = body[index + 1]
        if (isinstance(candidate, ast.Expr)
                and isinstance(candidate.value, ast.Constant)
                and isinstance(candidate.value.value, str)):
            return candidate.value.value
    return None


@register
class ProvenanceRule(FileRule):
    """Component-model constants must cite a datasheet or the paper."""

    rule_id = "REPRO006"
    name = "constant-provenance"
    description = ("numeric constants in component models need a "
                   "'# datasheet:'/'# paper:' provenance marker")
    default_scope = ("*/radio/*.py", "*/fpga/*.py", "*/power/*.py",
                     "*/platforms/*.py")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        yield from self._check_body(ctx, ctx.tree.body)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(ctx, node.body)

    def _check_body(self, ctx: FileContext,
                    body: list[ast.stmt]) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.Assign):
                names = [name for target in stmt.targets
                         for name in astutil.assigned_names(target)]
                value = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)
                  and stmt.value is not None):
                names = [stmt.target.id]
                value = stmt.value
            else:
                continue
            if not names or not all(_UPPER_RE.match(name) for name in names):
                continue
            if not any(True for _ in astutil.numeric_literals(value)):
                continue
            if self._documented(ctx, stmt, body, index):
                continue
            yield Finding(
                rule_id=self.rule_id, path=ctx.relpath,
                line=stmt.lineno, col=stmt.col_offset,
                message=(f"constant '{names[0]}' has no provenance "
                         f"marker"),
                hint=_HINT)

    def _documented(self, ctx: FileContext, stmt: ast.stmt,
                    body: list[ast.stmt], index: int) -> bool:
        for line in range(stmt.lineno, stmt.end_lineno + 1):
            if _has_marker(ctx.line_comment(line)):
                return True
        # Walk upward through the contiguous run this constant belongs
        # to: comment lines and sibling assignment lines extend the run,
        # a blank line or any other statement ends it.
        sibling_lines: set[int] = set()
        for sibling in body:
            if isinstance(sibling, (ast.Assign, ast.AnnAssign)):
                sibling_lines.update(
                    range(sibling.lineno, sibling.end_lineno + 1))
        line = stmt.lineno - 1
        while line >= 1:
            text = ctx.lines[line - 1].strip()
            if text.startswith("#"):
                if _has_marker(text):
                    return True
            elif not (text and line in sibling_lines):
                break
            line -= 1
        docstring = _docstring_after(body, index)
        return docstring is not None and _has_marker(docstring)
