"""REPRO014 — service code reaches engines through the registry.

The campaign service's whole value is that every computation flows
through one door: :meth:`repro.service.registry.WorkloadRegistry.invoke`
counts invocations (the zero-recompute cache proof), journals progress
on the virtual timeline, and keeps the content address honest — a job's
result must be a pure function of its ``(kind, config, seed)`` triple.
A direct engine call from the service or the CLI bypasses all three:
the invocation counter lies, the timeline misses the work, and the
cache can serve a result that no longer matches what the code computes.

Flagged, inside ``repro/service/`` and ``repro/cli.py`` (the adapter
module ``repro/service/workloads.py`` is the single sanctioned caller,
exempted via config):

* imports from the engine namespaces (``repro.core``, ``repro.fpga``,
  ``repro.ota``, ``repro.phy``, ``repro.platforms``, ``repro.power``,
  ``repro.protocols``, ``repro.testbed``);
* calls to the engine entry points by name (``run_campaign``,
  ``run_fleet_campaign_sharded``, ``lora_symbol_error_rate``, ...),
  which catches attribute-qualified calls that dodge the import check.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

#: Package prefixes only workload adapters may import from.
ENGINE_NAMESPACES = (
    "repro.core",
    "repro.fpga",
    "repro.ota",
    "repro.phy",
    "repro.platforms",
    "repro.power",
    "repro.protocols",
    "repro.testbed",
)

#: Engine entry points a thin client must never call directly.
ENGINE_ENTRY_POINTS = frozenset({
    "run_campaign",
    "run_hardened_campaign",
    "run_fleet_campaign",
    "run_fleet_campaign_sharded",
    "write_fleet_spill",
    "lora_symbol_error_rate",
    "ble_beacon_error_rate",
    "simulate_adr",
    "fixed_rate_cost",
    "campus_deployment",
    "generate_bitstream",
    "platform_timings",
    "total_cost_usd",
    "lora_tx_design",
    "lora_rx_design",
})

_HINT = ("route the computation through WorkloadRegistry.invoke (adapters "
         "live in repro/service/workloads.py) so invocation counters, "
         "virtual-time accounting and the result cache stay truthful")


def _engine_namespace(module: str) -> str | None:
    """The engine namespace ``module`` belongs to, if any."""
    for namespace in ENGINE_NAMESPACES:
        if module == namespace or module.startswith(namespace + "."):
            return namespace
    return None


def _called_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class ServiceDisciplineRule(FileRule):
    """Service/CLI code calls engines only via the workload registry."""

    rule_id = "REPRO014"
    name = "service-discipline"
    description = ("service and CLI code must reach engines through the "
                   "WorkloadRegistry, never by importing or calling "
                   "engine modules directly")
    default_scope = ("*/repro/service/*.py", "*/repro/cli.py")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    namespace = _engine_namespace(alias.name)
                    if namespace is not None:
                        yield Finding(
                            rule_id=self.rule_id, path=ctx.relpath,
                            line=node.lineno, col=node.col_offset,
                            message=(f"engine import '{alias.name}' "
                                     f"bypasses the workload registry"),
                            hint=_HINT)
            elif isinstance(node, ast.ImportFrom):
                namespace = _engine_namespace(node.module or "")
                if namespace is not None:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=(f"engine import 'from {node.module} "
                                 f"import ...' bypasses the workload "
                                 f"registry"),
                        hint=_HINT)
            elif isinstance(node, ast.Call):
                name = _called_name(node)
                if name in ENGINE_ENTRY_POINTS:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=(f"direct engine call '{name}(...)' "
                                 f"bypasses the workload registry"),
                        hint=_HINT)
