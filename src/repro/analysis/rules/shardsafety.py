"""REPRO013 — shard safety of the fleet campaign engine.

The fleet engine's contract (PR 5) is shard-count invariance: the same
campaign split across any number of shards or worker processes lands
on bit-identical results.  That only holds if nothing reachable from
``run_fleet_campaign*`` touches module-level mutable state that
function code mutates — such state accumulates *per process*, so its
value at any node depends on which shard the node landed in and what
ran before it in that worker.  This rule combines the call graph
(reachability from the fleet entry points) with a module-state access
scan: any read or write of a function-mutated module-level container
inside fleet-reachable code is flagged.  Read-only module tables
(populated at import time, never mutated by functions) stay legal.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, Project, ProjectRule, register
from repro.analysis.semantic.queries import shard_state_findings


@register
class ShardSafetyRule(ProjectRule):
    """Fleet-reachable code must not touch mutated module state."""

    rule_id = "REPRO013"
    name = "shard-safety"
    description = ("code reachable from run_fleet_campaign* must not read "
                   "module-level mutable state that function code mutates "
                   "(shard-count invariance)")

    #: Entry points whose reachable set must stay shard-pure.
    root_patterns = ("run_fleet_campaign*",)

    def check_project(self, project: Project,
                      config: LintConfig) -> Iterable[Finding]:
        model = project.semantic()
        scoped = {ctx.relpath for ctx in project.contexts}
        for hazard in shard_state_findings(model, self.root_patterns):
            access = hazard.access
            if access.function.relpath not in scoped:
                continue
            verb = "mutates" if access.is_write else "reads"
            writers = ", ".join(hazard.writers)
            yield Finding(
                rule_id=self.rule_id, path=access.function.relpath,
                line=access.line, col=access.col,
                message=(f"'{access.function.display}' (reachable from a "
                         f"fleet entry point) {verb} module-level mutable "
                         f"state '{access.binding}', which is mutated by: "
                         f"{writers}"),
                hint=("thread the state through the campaign config or "
                      "per-shard buffers; module globals are per-process "
                      "and break shard invariance"))
