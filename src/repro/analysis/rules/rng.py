"""REPRO001 — RNG discipline.

Bit-exact reproducibility requires every stochastic code path to draw
from an explicitly threaded :class:`numpy.random.Generator`.  Calls into
the module-global numpy RNG (``np.random.normal`` and friends), the
stdlib ``random`` module, or an *unseeded* ``default_rng()`` make a
simulation unrepeatable from its configuration alone.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

#: numpy.random names that are construction machinery, not global draws.
_ALLOWED_NUMPY = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib random names that are seedable classes, not global draws.
_ALLOWED_STDLIB = frozenset({"Random", "SystemRandom"})

_HINT = ("thread an explicit np.random.Generator parameter "
         "(np.random.default_rng(seed)) through this code path")


@register
class RngDisciplineRule(FileRule):
    """Forbid module-global RNG use and unseeded generators."""

    rule_id = "REPRO001"
    name = "rng-discipline"
    description = ("no module-global np.random/random calls; stochastic "
                   "code must accept an explicit np.random.Generator")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        aliases = astutil.import_aliases(ctx.tree)
        stdlib_random = any(target == "random" or target.startswith("random.")
                            for target in aliases.values())
        yield from self._check_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = astutil.canonical_name(node.func, aliases)
            if canonical is None:
                continue
            yield from self._check_call(ctx, node, canonical, stdlib_random)

    def _check_imports(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            if node.module == "numpy.random":
                allowed = _ALLOWED_NUMPY
            elif node.module == "random":
                allowed = _ALLOWED_STDLIB
            else:
                continue
            for alias in node.names:
                if alias.name not in allowed:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=(f"import of global RNG entry point "
                                 f"'{node.module}.{alias.name}'"),
                        hint=_HINT)

    def _check_call(self, ctx: FileContext, node: ast.Call, canonical: str,
                    stdlib_random: bool) -> Iterator[Finding]:
        if canonical.startswith("numpy.random."):
            attr = canonical.removeprefix("numpy.random.")
            if "." in attr:
                return
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=("unseeded default_rng() draws entropy from "
                                 "the OS and is not reproducible"),
                        hint="seed it explicitly or accept a Generator")
            elif attr not in _ALLOWED_NUMPY:
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"call to module-global RNG "
                             f"'numpy.random.{attr}'"),
                    hint=_HINT)
        elif stdlib_random and (canonical == "random"
                                or canonical.startswith("random.")):
            attr = canonical.removeprefix("random.")
            if not attr or "." in attr or attr in _ALLOWED_STDLIB:
                return
            yield Finding(
                rule_id=self.rule_id, path=ctx.relpath,
                line=node.lineno, col=node.col_offset,
                message=f"call to stdlib global RNG 'random.{attr}'",
                hint=_HINT)
