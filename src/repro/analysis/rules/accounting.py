"""REPRO008 — accounting discipline for simulated time and energy.

The platform model keeps exactly one clock: the
:class:`repro.sim.Timeline` ledger.  A private ``clock += airtime`` or
``self.node_rx_time_s += dwell`` accumulator silently forks that clock —
its totals drift from the trace exporters, can't be audited event by
event, and reintroduce the float-associativity hazards the replay views
were built to control.  Any code that needs to advance time or
accumulate energy should ``record()`` an event and derive totals as a
ledger view.

Flagged: augmented ``+=`` (and the spelled-out ``x = x + ...`` form)
whose target is named ``clock``/``clock_s``/``now_s`` or ends in
``_time_s``/``_energy_j``.  The ledger internals under ``repro/sim/``
are exempt — something has to move the real clock.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_EXACT_NAMES = frozenset({"clock", "clock_s", "now_s"})
_SUFFIXES = ("_time_s", "_energy_j")

_HINT = ("record the interval as a repro.sim Timeline event and derive "
         "the total as a ledger view")


def _target_name(node: ast.expr) -> str | None:
    """The terminal identifier of an assignment target, if simple."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_accounting_name(name: str | None) -> bool:
    if name is None:
        return False
    return name in _EXACT_NAMES or name.endswith(_SUFFIXES)


def _references_name(node: ast.expr, name: str) -> bool:
    """Whether ``name`` appears as a Name or Attribute inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
        if isinstance(child, ast.Attribute) and child.attr == name:
            return True
    return False


@register
class AccountingDisciplineRule(FileRule):
    """Time/energy totals accumulate on the timeline, not in ``+=``."""

    rule_id = "REPRO008"
    name = "accounting-discipline"
    description = ("simulated time/energy must accumulate on the "
                   "repro.sim timeline, not in ad-hoc += counters")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                if not isinstance(node.op, ast.Add):
                    continue
                name = _target_name(node.target)
                if not _is_accounting_name(name):
                    continue
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"ad-hoc accounting accumulator "
                             f"'{name} += ...' bypasses the simulation "
                             "timeline"),
                    hint=_HINT)
            elif isinstance(node, ast.Assign):
                # The spelled-out accumulator: x = x + delta.
                if len(node.targets) != 1:
                    continue
                name = _target_name(node.targets[0])
                if not _is_accounting_name(name):
                    continue
                value = node.value
                if not (isinstance(value, ast.BinOp)
                        and isinstance(value.op, ast.Add)
                        and _references_name(value, name)):
                    continue
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"ad-hoc accounting accumulator "
                             f"'{name} = {name} + ...' bypasses the "
                             "simulation timeline"),
                    hint=_HINT)
