"""REPRO010 — fleet cohort buffers come from the buffer helpers.

The fleet engine's whole performance contract rests on per-node state
living in struct-of-arrays cohort buffers with one dtype policy —
``int64`` counters, ``uint64`` RNG lanes, ``int8`` enums — allocated in
:mod:`repro.ota.fleet.buffers` and nowhere else.  An ad-hoc
``np.zeros(n)`` silently defaults to ``float64`` counters (breaking the
exact integer-times-constant accounting), and a Python list grown with
``.append`` inside the stepping loop reintroduces exactly the
per-node-object overhead the cohort engine exists to remove.

Flagged, inside ``repro/ota/fleet`` modules (the buffer helpers module
itself is exempt via config):

* direct numpy allocator calls (``np.zeros``, ``np.empty``, ``np.ones``,
  ``np.full``, their ``*_like`` variants and ``np.arange``);
* ``.append(...)`` calls inside a loop body.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_NUMPY_MODULES = frozenset({"np", "numpy"})
_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "arange",
})

_ALLOC_HINT = ("allocate cohort state through repro.ota.fleet.buffers "
               "so the dtype policy stays auditable")
_APPEND_HINT = ("keep per-node state in preallocated cohort arrays "
                "instead of growing Python lists per node")


def _is_numpy_allocator(node: ast.Call) -> str | None:
    """The allocator name when ``node`` is ``np.<allocator>(...)``."""
    func = node.func
    if (isinstance(func, ast.Attribute) and func.attr in _ALLOCATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_MODULES):
        return func.attr
    return None


def _inside_loop(ctx: FileContext, node: ast.AST) -> bool:
    return any(isinstance(ancestor, (ast.For, ast.While))
               for ancestor in ctx.ancestors(node))


@register
class FleetBufferDisciplineRule(FileRule):
    """Cohort arrays come from the fleet buffer helpers, not raw numpy."""

    rule_id = "REPRO010"
    name = "fleet-buffer-discipline"
    description = ("fleet cohort state must be allocated via the "
                   "repro.ota.fleet.buffers helpers, never ad-hoc "
                   "numpy allocators or per-node Python lists")
    default_scope = ("*/repro/ota/fleet/*.py",)

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            allocator = _is_numpy_allocator(node)
            if allocator is not None:
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"raw numpy allocator "
                             f"'np.{allocator}(...)' bypasses the fleet "
                             "cohort buffer helpers"),
                    hint=_ALLOC_HINT)
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and _inside_loop(ctx, node)):
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=("per-node list grown with '.append' inside "
                             "a loop defeats the cohort layout"),
                    hint=_APPEND_HINT)
