"""REPRO003 — plan-cache immutability.

Plans returned by :mod:`repro.perf.cache` are shared across every modem
instance with the same configuration; mutating one corrupts all of its
consumers.  The cache freezes numpy arrays at build time, so mutation
raises at runtime — this rule catches the pattern *statically* at the
call site, including in-place mutators (``fill``/``sort``) and attempts
to re-enable writes with ``setflags``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_MUTATORS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "resize", "byteswap",
})

_HINT = ("cached plans are shared; call .copy() for a private mutable "
         "array")


def _is_cache_lookup(node: ast.AST) -> bool:
    """Whether an expression is a ``get_or_build(...)`` call."""
    if not isinstance(node, ast.Call):
        return False
    dotted = astutil.dotted_name(node.func)
    return dotted is not None and dotted.split(".")[-1] == "get_or_build"


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of a (possibly subscripted) expression."""
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


@register
class CacheImmutabilityRule(FileRule):
    """No in-place mutation of values obtained from the plan cache."""

    rule_id = "REPRO003"
    name = "cache-immutability"
    description = ("values returned by repro.perf cache lookups must not "
                   "be mutated in place")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for scope in astutil.function_scopes(ctx.tree):
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext,
                     scope: ast.AST) -> Iterator[Finding]:
        tracked: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_cache_lookup(node.value):
                for target in node.targets:
                    tracked.update(astutil.assigned_names(target))
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                  and _is_cache_lookup(node.value)
                  and isinstance(node.target, ast.Name)):
                tracked.add(node.target.id)
        if not tracked:
            return
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and _root_name(target) in tracked):
                        yield self._finding(
                            ctx, node,
                            f"element assignment into cache-returned "
                            f"'{_root_name(target)}'")
            elif isinstance(node, ast.AugAssign):
                root = _root_name(node.target)
                if root in tracked:
                    yield self._finding(
                        ctx, node,
                        f"in-place augmented assignment on cache-returned "
                        f"'{root}'")
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                root = _root_name(func.value)
                if root not in tracked:
                    continue
                if func.attr == "setflags":
                    yield self._finding(
                        ctx, node,
                        f"setflags() on cache-returned '{root}' defeats "
                        f"plan immutability")
                elif func.attr in _MUTATORS:
                    yield self._finding(
                        ctx, node,
                        f"in-place mutator .{func.attr}() on "
                        f"cache-returned '{root}'")

    def _finding(self, ctx: FileContext, node: ast.AST,
                 message: str) -> Finding:
        return Finding(rule_id=self.rule_id, path=ctx.relpath,
                       line=node.lineno, col=node.col_offset,
                       message=message, hint=_HINT)
