"""REPRO004 — dtype/bit-width contracts in quantized modules.

Modules that model hardware word formats (13-bit I/Q fields, LVDS
words, fixed-point DSP) must manipulate declared-width integer arrays
with *explicit* masks and casts.  An unmasked left shift relies on
numpy's value-dependent promotion and silently wraps or widens; a
narrowing ``astype`` of an arithmetic result truncates without saying
so.  The rule does lightweight local type inference: any name assigned
from an integer-dtype array constructor (``np.asarray(..., dtype=...)``,
``np.zeros(...)``, ``.astype(...)``) is treated as a declared-width
array inside that function.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_INT_DTYPES = frozenset({
    "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64", "uintp",
})

#: numpy dtype strings like "u4", ">u4", "<i8", "=u2".
_DTYPE_STRING = re.compile(r"^[<>=|]?[iu](1|2|4|8)$")

#: astype targets at or below 32 bits are "narrowing" for this codebase
#: (the quantized paths accumulate in int64/uint64).
_NARROW_DTYPES = frozenset({
    "int8", "int16", "int32", "uint8", "uint16", "uint32",
    "i1", "i2", "i4", "u1", "u2", "u4",
})

_ARRAY_CTORS = frozenset({
    "asarray", "array", "empty", "zeros", "ones", "full", "arange",
    "frombuffer", "fromiter",
})

_HINT = "mask with '& MASK' or cast with .astype(...) at the use site"


def _dtype_name(node: ast.AST) -> str | None:
    """The integer dtype named by an expression, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
        if _DTYPE_STRING.match(text):
            return text
        if text in _INT_DTYPES:
            return text
        return None
    dotted = astutil.dotted_name(node)
    if dotted is not None and dotted.split(".")[-1] in _INT_DTYPES:
        return dotted.split(".")[-1]
    return None


def _int_array_call(node: ast.AST) -> bool:
    """Whether a call builds an integer-dtype numpy array."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        targets = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "dtype"]
        return any(_dtype_name(t) is not None for t in targets)
    dotted = astutil.dotted_name(func)
    if dotted is None or dotted.split(".")[-1] not in _ARRAY_CTORS:
        return False
    for keyword in node.keywords:
        if keyword.arg == "dtype" and _dtype_name(keyword.value) is not None:
            return True
    return False


def _int_array_expr(node: ast.AST, tracked: set[str]) -> bool:
    """Whether an expression is (locally) known to be an integer array."""
    if isinstance(node, ast.Name):
        return node.id in tracked
    if _int_array_call(node):
        return True
    if isinstance(node, ast.BinOp):
        return (_int_array_expr(node.left, tracked)
                or _int_array_expr(node.right, tracked))
    return False


@register
class DtypeContractRule(FileRule):
    """Quantized arithmetic must mask/cast explicitly."""

    rule_id = "REPRO004"
    name = "dtype-contracts"
    description = ("declared-width integer arrays must be masked or cast "
                   "explicitly around shifts and narrowing conversions")
    default_scope = ("*/radio/iqword.py", "*/radio/lvds.py",
                     "*/dsp/fixedpoint.py", "*/dsp/nco.py", "*/fpga/*.py")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for scope in astutil.function_scopes(ctx.tree):
            yield from self._check_scope(ctx, scope)

    def _tracked_names(self, scope: ast.AST) -> set[str]:
        tracked: set[str] = set()
        for node in ast.walk(scope):
            value = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            if _int_array_expr(value, tracked):
                for target in targets:
                    tracked.update(astutil.assigned_names(target))
        return tracked

    def _check_scope(self, ctx: FileContext,
                     scope: ast.AST) -> Iterator[Finding]:
        tracked = self._tracked_names(scope)
        for node in ast.walk(scope):
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.LShift)
                    and _int_array_expr(node.left, tracked)
                    and not self._masked_or_cast(ctx, node)):
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=("left shift of declared-width integer array "
                             "without an explicit mask or cast"),
                    hint=_HINT)
            elif isinstance(node, ast.Call):
                yield from self._check_narrowing(ctx, node)

    def _masked_or_cast(self, ctx: FileContext, node: ast.BinOp) -> bool:
        """A shift is fine if masked or cast within its own statement."""
        for child in ast.walk(node.left):
            if isinstance(child, ast.BinOp) and isinstance(child.op,
                                                           ast.BitAnd):
                return True
        statement = ctx.statement_of(node)
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.BinOp) and isinstance(ancestor.op,
                                                              ast.BitAnd):
                return True
            if isinstance(ancestor, ast.Call):
                is_astype = (isinstance(ancestor.func, ast.Attribute)
                             and ancestor.func.attr == "astype")
                if is_astype or _dtype_name(ancestor.func) is not None:
                    return True
            if ancestor is statement:
                break
        return False

    def _check_narrowing(self, ctx: FileContext,
                         node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return
        targets = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "dtype"]
        dtype = next((d for t in targets
                      if (d := _dtype_name(t)) is not None), None)
        if dtype is None or dtype.lstrip("<>=|") not in _NARROW_DTYPES:
            return
        value = func.value
        if not isinstance(value, ast.BinOp):
            return
        arithmetic = isinstance(
            value.op, (ast.Add, ast.Sub, ast.Mult, ast.LShift))
        masked = any(
            isinstance(child, ast.BinOp) and isinstance(child.op, ast.BitAnd)
            for child in ast.walk(value))
        modular = any(
            isinstance(child, ast.BinOp) and isinstance(child.op, ast.Mod)
            for child in ast.walk(value))
        if arithmetic and not masked and not modular:
            yield Finding(
                rule_id=self.rule_id, path=ctx.relpath,
                line=node.lineno, col=node.col_offset,
                message=(f"narrowing .astype({dtype}) of an arithmetic "
                         f"result without an explicit mask"),
                hint=_HINT)
