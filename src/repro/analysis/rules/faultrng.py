"""REPRO009 — fault-discipline.

Injected faults are part of the experiment configuration: a chaos run
must be replayable from its seeds alone.  Every fault model in
:mod:`repro.faults` therefore derives its draw streams from a required
``seed`` argument.  Constructing a :class:`FaultPlan` or one of the
fault models without an explicit ``seed`` (or a pre-built ``rng``)
either fails at runtime or, worse in hand-rolled variants, silently
falls back to OS entropy — making the "failure" unreproducible exactly
when it matters most.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

#: Constructors that must receive an explicit seed or rng keyword.
_FAULT_CONSTRUCTORS = frozenset({
    "FaultPlan",
    "GilbertElliott",
    "CorruptionModel",
    "FlashFaultModel",
    "BrownoutModel",
    "ApOutageModel",
    "HangModel",
    "WorkerCrashModel",
    "WorkloadHangModel",
    "JournalTornWriteModel",
    "ServiceFaultPlan",
})

#: Keywords that satisfy the discipline.
_SEED_KEYWORDS = frozenset({"seed", "rng"})

_HINT = ("pass seed=<int> (or a pre-seeded rng) so the injected faults "
         "replay bit-identically from the run configuration")


@register
class FaultDisciplineRule(FileRule):
    """Fault models must be constructed with an explicit seed."""

    rule_id = "REPRO009"
    name = "fault-discipline"
    description = ("FaultPlan and fault-model constructors must take an "
                   "explicit seed/rng keyword")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        aliases = astutil.import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = astutil.canonical_name(node.func, aliases)
            if canonical is None:
                continue
            tail = canonical.rpartition(".")[2]
            if tail not in _FAULT_CONSTRUCTORS:
                continue
            # Only repro.faults constructors (or bare/star-imported uses)
            # are in scope; an unrelated class sharing the name but
            # imported from elsewhere is not.
            if "." in canonical and not canonical.startswith("repro.faults"):
                continue
            if self._has_seed(node):
                continue
            yield Finding(
                rule_id=self.rule_id, path=ctx.relpath,
                line=node.lineno, col=node.col_offset,
                message=(f"'{tail}' constructed without an explicit "
                         "seed/rng keyword"),
                hint=_HINT)

    @staticmethod
    def _has_seed(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs splat: assume compliant
                return True
            if keyword.arg in _SEED_KEYWORDS:
                return True
        return False
