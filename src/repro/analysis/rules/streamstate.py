"""REPRO015 — streaming-state discipline.

A streaming processor (a class that accepts data in chunks via
``push``/``process`` and ends a capture with ``flush``) carries state
between chunks by construction.  The chunk-invariance contract of
:mod:`repro.phy.lora.streaming` — any chunking produces bit-identical
output — only holds if that carry-over state is *explicit* and fully
re-initialized by ``reset()``, so one instance can be reused across
captures without a stale scalar leaking a decision from the previous
stream.

Two checks, both static:

* a class defining a chunk-feed method and ``flush`` must also define
  ``reset``;
* every instance attribute the class mutates outside ``__init__`` and
  ``reset`` (the carry-over state) must be re-initialized by ``reset``,
  directly or through a same-class helper it calls.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_FEED_METHODS = frozenset({"push", "process"})

_HINT = ("carry-over state must be explicit: re-initialize every "
         "streamed attribute in reset() (directly or via a helper) so "
         "a reused instance cannot leak decisions across captures")


def _self_attr(node: ast.AST) -> str | None:
    """The attribute name for a ``self.<attr>`` store target, if any.

    Subscript stores (``self._carry[:] = 0``) count: they re-initialize
    the attribute's contents, which is what the discipline requires.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _store_targets(node: ast.AST) -> Iterator[ast.AST]:
    """Flatten assignment targets, unpacking tuples/lists."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _store_targets(element)
    else:
        yield node


def _assigned_attrs(func: ast.AST) -> dict[str, int]:
    """Map each ``self.<attr>`` a method stores to its first line."""
    attrs: dict[str, int] = {}
    for node in ast.walk(func):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets.extend(_store_targets(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append(node.target)
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr not in attrs:
                attrs[attr] = node.lineno
    return attrs


def _self_calls(func: ast.AST) -> set[str]:
    """Names of same-instance methods a method calls (``self.m(...)``)."""
    calls: set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            calls.add(node.func.attr)
    return calls


def _reset_closure(methods: dict[str, ast.AST]) -> set[str]:
    """Methods reachable from ``reset`` through same-class calls."""
    closure: set[str] = set()
    frontier = ["reset"]
    while frontier:
        name = frontier.pop()
        if name in closure or name not in methods:
            continue
        closure.add(name)
        frontier.extend(_self_calls(methods[name]))
    return closure


@register
class StreamingStateRule(FileRule):
    """Streaming classes reset every attribute they carry across chunks."""

    rule_id = "REPRO015"
    name = "streaming-state-discipline"
    description = ("streaming processors (push/process + flush) must "
                   "define reset() and re-initialize all carry-over "
                   "state in it")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     node: ast.ClassDef) -> Iterator[Finding]:
        methods = {item.name: item for item in node.body
                   if isinstance(item, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        if "flush" not in methods or not (_FEED_METHODS & set(methods)):
            return
        if "reset" not in methods:
            yield self._finding(
                ctx, node,
                f"streaming class '{node.name}' accepts chunks but "
                f"defines no reset()")
            return
        covered = set()
        for name in _reset_closure(methods):
            covered.update(_assigned_attrs(methods[name]))
        exempt = _reset_closure(methods) | {"__init__"}
        leaks: dict[str, int] = {}
        for name, method in methods.items():
            if name in exempt:
                continue
            for attr, line in _assigned_attrs(method).items():
                if attr not in covered and (attr not in leaks
                                            or line < leaks[attr]):
                    leaks[attr] = line
        for attr, line in sorted(leaks.items(), key=lambda kv: kv[1]):
            yield self._finding(
                ctx, node,
                f"'{node.name}' mutates carry-over attribute "
                f"'self.{attr}' during streaming but reset() never "
                f"re-initializes it", line=line)

    def _finding(self, ctx: FileContext, node: ast.AST, message: str,
                 line: int | None = None) -> Finding:
        return Finding(rule_id=self.rule_id, path=ctx.relpath,
                       line=node.lineno if line is None else line,
                       col=node.col_offset, message=message, hint=_HINT)
