"""REPRO011 — determinism taint.

The whole-program taint pass (:mod:`repro.analysis.semantic`) tracks
nondeterministic values — wall clocks, ``os.urandom``, process-global
RNG state, set iteration order, environment reads — through
assignments, returns and calls.  Any such value arriving at a
reproducibility sink (a timeline ``record``, a ``SimEvent`` payload, a
plan-cache key, a fleet cohort buffer) silently breaks the repo's
bit-exactness contract: two runs of the "same" experiment stop
producing the same ledger.  This rule surfaces every concrete
source-to-sink flow, including flows that cross module boundaries
through call summaries.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, Project, ProjectRule, register


@register
class DeterminismTaintRule(ProjectRule):
    """No nondeterministic value may reach a ledger/cache/buffer sink."""

    rule_id = "REPRO011"
    name = "determinism-taint"
    description = ("no nondeterministic value (clocks, os.urandom, "
                   "process-global RNG, set order, environment) may reach "
                   "a timeline/SimEvent/plan-cache/fleet-buffer sink")

    def check_project(self, project: Project,
                      config: LintConfig) -> Iterable[Finding]:
        model = project.semantic()
        scoped = {ctx.relpath for ctx in project.contexts}
        seen: set[tuple[str, int, int]] = set()
        for hit in model.sink_findings:
            if hit.relpath not in scoped:
                continue
            key = (hit.relpath, hit.line, hit.col)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                rule_id=self.rule_id, path=hit.relpath,
                line=hit.line, col=hit.col,
                message=(f"in '{hit.function}': {hit.describe()}"),
                hint=("derive the value from the experiment's seeded RNG "
                      "stream or configuration instead, or sort the "
                      "iteration"))
