"""REPRO005 — units discipline for magic frequency/time literals.

A bare ``868_100_000`` buried in a call site is a unit bug waiting to
happen (Hz vs kHz vs MHz) and hides the physical meaning the
:mod:`repro.units` helpers exist to preserve.  Large numeric literals
belong in named UPPER_CASE module constants — where the provenance rule
can also see them — or need an inline ``# units:`` note.

Exact powers of ten (scale factors like ``1e6``) and powers of two /
all-ones masks (bit-width arithmetic like ``4096`` or ``0xFFFF_FFFF``)
are exempt: those are structural, not physical, constants.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_COMMENT_MARKERS = ("units:", "datasheet:", "paper:", "spec:")

_HINT = ("name it as an UPPER_CASE module constant or add a "
         "'# units: ...' comment")

_UPPER_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def _is_power_of_ten(value: float) -> bool:
    if value <= 0:
        return False
    while value >= 10 and value == int(value) and int(value) % 10 == 0:
        value /= 10
    return value == 1.0


def _is_power_of_two_ish(value: float) -> bool:
    """Exact powers of two, or all-ones masks (2**k - 1)."""
    if value != int(value) or value <= 0:
        return False
    integer = int(value)
    return (integer & (integer - 1)) == 0 or (integer & (integer + 1)) == 0


def _module_constant_lines(tree: ast.Module) -> set[int]:
    """Line numbers of module-level UPPER_CASE constant assignments."""
    lines: set[int] = set()

    def record(stmt: ast.stmt, names: list[str]) -> None:
        if names and all(_UPPER_RE.match(name) for name in names):
            for node in ast.walk(stmt):
                lines.add(getattr(node, "lineno", stmt.lineno))

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            names = [name for target in stmt.targets
                     for name in astutil.assigned_names(target)]
            record(stmt, names)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                            ast.Name):
            record(stmt, [stmt.target.id])
    return lines


@register
class UnitsDisciplineRule(FileRule):
    """No magic frequency/time-scale literals outside named constants."""

    rule_id = "REPRO005"
    name = "units-discipline"
    description = ("large numeric literals must live in named UPPER_CASE "
                   "constants or carry an inline units note")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        threshold = config.units_threshold
        constant_lines = _module_constant_lines(ctx.tree)
        for node in astutil.numeric_literals(ctx.tree):
            value = abs(float(node.value))
            if value < threshold:
                continue
            if _is_power_of_ten(value) or _is_power_of_two_ish(value):
                continue
            if node.lineno in constant_lines:
                continue
            comment = ctx.line_comment(node.lineno).lower()
            if any(marker in comment for marker in _COMMENT_MARKERS):
                continue
            yield Finding(
                rule_id=self.rule_id, path=ctx.relpath,
                line=node.lineno, col=node.col_offset,
                message=(f"magic number {node.value!r} without a named "
                         f"constant or units note"),
                hint=_HINT)
