"""REPRO012 — parity-signature drift and dead twins.

REPRO002 checks that every fast/``*_reference`` pair is co-exercised
by a test; this rule checks the pair itself stays *usable* as a parity
check.  Two failure modes:

* **Signature drift** — the twins no longer accept the same arguments
  (a renamed parameter, a parameter added to one side only), so a
  parity test cannot call both with one argument list.  The fast twin
  may append extra *defaulted* trailing parameters (the plan-cache /
  output-buffer injection idiom); everything else must match.
* **Dead twin** — a ``*_reference`` implementation that no parity test
  can reach through the call graph: it is not mentioned by any test
  file and nothing reachable from the test corpus calls it.  A dead
  twin is an unchecked invariant masquerading as a checked one.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, Project, ProjectRule, register
from repro.analysis.semantic.queries import (
    parity_pairs,
    reachable_from_tests,
    signature_drift,
    test_identifiers,
)


@register
class ParitySignatureRule(ProjectRule):
    """Twins must share a signature and be reachable from a test."""

    rule_id = "REPRO012"
    name = "parity-signature-drift"
    description = ("fast/*_reference twins must keep matching signatures "
                   "and every reference twin must be reachable from a "
                   "parity test (dead twins flagged)")

    def check_project(self, project: Project,
                      config: LintConfig) -> Iterable[Finding]:
        model = project.semantic()
        scoped = {ctx.relpath for ctx in project.contexts}
        mentioned: set[str] = set()
        for ctx in project.test_contexts:
            mentioned.update(test_identifiers(ctx))
        reachable = reachable_from_tests(model, project.test_contexts)
        for pair in parity_pairs(model.table):
            if pair.reference.relpath not in scoped:
                continue
            drift = signature_drift(pair)
            node = pair.reference.node
            if drift is not None:
                yield Finding(
                    rule_id=self.rule_id, path=pair.reference.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"parity pair '{pair.fast.display}'/"
                             f"'{pair.reference.display}' has drifted "
                             f"signatures: {drift}"),
                    hint=("keep the twins call-compatible so one parity "
                          "test drives both"))
                continue
            if (pair.reference.name not in mentioned
                    and pair.reference.qualname not in reachable):
                yield Finding(
                    rule_id=self.rule_id, path=pair.reference.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"dead twin: '{pair.reference.display}' is "
                             f"not reachable from any test (directly or "
                             f"through the call graph)"),
                    hint=("add a parity test exercising it, or delete "
                          "the stale reference implementation"))
