"""REPRO016 — service except handlers re-raise, record, or retry right.

The campaign service's crash-recovery story rests on a discipline: a
failure is either *propagated* (re-raised for the caller — including
the chaos driver, which must see ``SimulatedCrashError``) or *recorded*
(a ``service.*`` event on the timeline, so the ledger — and therefore
the session fingerprint and the journal replay — knows the failure
happened).  An except handler that does neither makes a failure
invisible to recovery: the journaled replay takes the success path
where the original run silently limped, and fingerprint parity breaks
in a way no test pins to the offending line.

Retries are part of the same discipline: a handler that loops back for
another attempt (``continue``) must price the retry through a
:class:`~repro.ota.mac.RetryPolicy` backoff (``delay_s``), never an
ad-hoc sleep or an immediate spin — unpriced retries don't advance the
virtual clock, so a recovered session disagrees with the original about
*when* everything after the retry happened.

Flagged, inside ``repro/service/``:

* an ``except`` handler whose body neither raises, nor calls a
  ``record``-style sink (``timeline.record(...)``), nor calls a
  module-local helper that transitively does one of those;
* an ``except`` handler that retries via ``continue`` inside a
  function that never consults ``RetryPolicy.delay_s``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_HINT = ("re-raise the error, record a service.* event on the timeline, "
         "or route the handling through a helper that does (the journal "
         "replay can only reproduce failures the ledger saw)")

_RETRY_HINT = ("price retries through RetryPolicy.delay_s so backoff "
               "advances the virtual clock identically on replay")


def _called_names(tree: ast.AST) -> set[str]:
    """Bare names of everything called inside ``tree``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute):
            names.add(func.attr)
    return names


def _handles_directly(tree: ast.AST) -> bool:
    """Whether ``tree`` contains a raise or a ``record`` call."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name == "record":
                return True
    return False


def _handling_functions(tree: ast.Module) -> set[str]:
    """Module-local callables that transitively raise or record.

    Fixpoint over the module's function definitions (bare names, so
    methods count): a function handles if its own body raises or
    records, or if it calls another handling function.
    """
    functions: dict[str, list[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, []).append(node)
    handling = {name for name, defs in functions.items()
                if any(_handles_directly(d) for d in defs)}
    changed = True
    while changed:
        changed = False
        for name, defs in functions.items():
            if name in handling:
                continue
            if any(_called_names(d) & handling for d in defs):
                handling.add(name)
                changed = True
    return handling


def _enclosing_function(tree: ast.Module,
                        handler: ast.ExceptHandler) -> ast.AST | None:
    """The innermost function definition containing ``handler``."""
    enclosing: ast.AST | None = None
    stack: list[tuple[ast.AST, ast.AST | None]] = [(tree, None)]
    while stack:
        node, current = stack.pop()
        if node is handler:
            return current
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node
        for child in ast.iter_child_nodes(node):
            stack.append((child, current))
    return enclosing


@register
class RecoveryDisciplineRule(FileRule):
    """Service except handlers must re-raise, record, or retry priced."""

    rule_id = "REPRO016"
    name = "recovery-discipline"
    description = ("service except handlers must re-raise or record a "
                   "service event (directly or via a helper), and may "
                   "only retry through RetryPolicy backoff")
    default_scope = ("*/repro/service/*.py",)

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        handling = _handling_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            retries = any(isinstance(child, ast.Continue)
                          for stmt in node.body
                          for child in ast.walk(stmt))
            if retries:
                function = _enclosing_function(ctx.tree, node)
                priced = (function is not None
                          and "delay_s" in _called_names(function))
                if not priced:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=("except handler retries via 'continue' "
                                 "without a RetryPolicy.delay_s backoff "
                                 "(ad-hoc retry)"),
                        hint=_RETRY_HINT)
                    continue
            handled = _handles_directly(
                ast.Module(body=node.body, type_ignores=[]))
            if not handled:
                handled = bool(
                    _called_names(
                        ast.Module(body=node.body, type_ignores=[]))
                    & handling)
            if not handled:
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=("except handler neither re-raises nor "
                             "records a service.* event (the failure is "
                             "invisible to journal replay)"),
                    hint=_HINT)
