"""The reprolint domain rule pack.

Importing this package registers every rule with the engine registry.
Rule IDs are stable and documented in DESIGN.md:

========  ====================  ==========================================
ID        name                  invariant
========  ====================  ==========================================
REPRO001  rng-discipline        no module-global RNG; explicit Generators
REPRO002  parity-pair-coverage  fast/reference twins tested together
REPRO003  cache-immutability    plan-cache values never mutated in place
REPRO004  dtype-contracts       masks/casts explicit in quantized paths
REPRO005  units-discipline      no magic frequency/time literals
REPRO006  constant-provenance   component constants cite datasheet/paper
REPRO007  no-swallowed-errors   no bare/blanket silent exception handlers
REPRO008  accounting-discipline time/energy accumulate on the sim timeline
REPRO009  fault-discipline      fault models constructed with explicit seeds
REPRO010  fleet-buffer-discipline  fleet cohort arrays come from the
                                buffer helpers, never ad-hoc allocation
REPRO011  determinism-taint     no nondeterministic value reaches a
                                ledger/SimEvent/plan-cache/buffer sink
                                (whole-program dataflow)
REPRO012  parity-signature-drift  twins keep matching signatures; dead
                                (test-unreachable) twins flagged
REPRO013  shard-safety          fleet-reachable code never touches
                                function-mutated module-level state
REPRO014  service-discipline    service/CLI code reaches engines only
                                through the workload registry
REPRO015  streaming-state-discipline  chunked streaming processors
                                define reset() and re-initialize every
                                carry-over attribute in it
REPRO016  recovery-discipline   service except handlers re-raise or
                                record a service event; retries only
                                through RetryPolicy backoff
========  ====================  ==========================================

REPRO011-013 are *semantic* rules: they share one whole-program model
(symbol table, call graph, taint summaries) built by
:mod:`repro.analysis.semantic` from the same parsed ASTs the per-file
rules use.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    accounting,
    cache_freeze,
    control,
    dtype,
    faultrng,
    fleet,
    parity,
    provenance,
    recovery,
    rng,
    service,
    shardsafety,
    signature,
    streamstate,
    taintflow,
    units,
)
