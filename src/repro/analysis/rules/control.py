"""REPRO007 — no bare excepts / swallowed errors in control paths.

A simulation that silently eats an exception converts a detectable bug
into a wrong number.  Bare ``except:`` additionally traps
``KeyboardInterrupt``/``SystemExit``, hanging sweep drivers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis import astutil
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, FileRule, Finding, register

_BROAD = frozenset({"Exception", "BaseException"})


def _is_swallowed(body: list[ast.stmt]) -> bool:
    """A handler body that does nothing: only pass/`...`/continue."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is ...):
            continue
        return False
    return True


@register
class SwallowedErrorRule(FileRule):
    """Forbid bare ``except:`` and broad handlers that discard the error."""

    rule_id = "REPRO007"
    name = "no-swallowed-errors"
    description = ("no bare except, and no except Exception whose body "
                   "silently discards the error")

    def check_file(self, ctx: FileContext,
                   config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=("bare 'except:' traps SystemExit and "
                             "KeyboardInterrupt"),
                    hint="catch a ReproError subclass (see repro.errors)")
                continue
            dotted = astutil.dotted_name(node.type)
            broad = dotted in _BROAD or (
                dotted is not None and dotted.split(".")[-1] in _BROAD)
            if broad and _is_swallowed(node.body):
                yield Finding(
                    rule_id=self.rule_id, path=ctx.relpath,
                    line=node.lineno, col=node.col_offset,
                    message=(f"'except {dotted}' silently swallows the "
                             f"error"),
                    hint=("narrow the exception type or handle/log the "
                          "failure explicitly"))
