"""REPRO002 — parity-pair coverage.

The repo's bit-exactness convention: every vectorized hot path ``foo``
keeps its original scalar implementation as ``foo_reference``, and a
test must exercise *both* names so any divergence is caught.  This rule
cross-references the test corpus: a ``foo``/``foo_reference`` pair that
no single test file mentions together is an unchecked invariant.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import (
    FileContext,
    Finding,
    Project,
    ProjectRule,
    register,
)

_SUFFIX = "_reference"


def _definitions(ctx: FileContext) -> list[tuple[ast.AST, str, set[str]]]:
    """Yield ``(def_node, name, sibling_names)`` for every function.

    ``sibling_names`` is the set of names defined in the same namespace
    (module body or class body), used to pair ``foo_reference`` with its
    ``foo`` twin.
    """
    results: list[tuple[ast.AST, str, set[str]]] = []

    def scan(body: list[ast.stmt]) -> None:
        names = {stmt.name for stmt in body
                 if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                results.append((stmt, stmt.name, names))
                scan(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                scan(stmt.body)

    scan(ctx.tree.body)
    return results


def _identifier_set(ctx: FileContext) -> frozenset[str]:
    """Every name a test file could use to reach a function.

    Covers direct imports, attribute access (methods, module members)
    and string references via ``getattr``-style constants.
    """
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[-1])
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.isidentifier():
                names.add(node.value)
    return frozenset(names)


@register
class ParityPairCoverageRule(ProjectRule):
    """Every ``foo``/``foo_reference`` twin must share a test file."""

    rule_id = "REPRO002"
    name = "parity-pair-coverage"
    description = ("every public function with a *_reference twin must be "
                   "co-exercised with it by at least one test")

    def check_project(self, project: Project,
                      config: LintConfig) -> Iterable[Finding]:
        test_identifiers = [_identifier_set(ctx)
                            for ctx in project.test_contexts]
        for ctx in project.contexts:
            for node, name, siblings in _definitions(ctx):
                if not name.endswith(_SUFFIX) or name == _SUFFIX:
                    continue
                base = name[:-len(_SUFFIX)]
                if base.startswith("_"):
                    continue
                if base not in siblings:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=(f"reference implementation '{name}' has no "
                                 f"fast-path twin '{base}' in the same "
                                 f"namespace"),
                        hint=("define the vectorized twin alongside it or "
                              "rename the reference"))
                    continue
                covered = any(base in identifiers and name in identifiers
                              for identifiers in test_identifiers)
                if not covered:
                    yield Finding(
                        rule_id=self.rule_id, path=ctx.relpath,
                        line=node.lineno, col=node.col_offset,
                        message=(f"parity pair '{base}'/'{name}' is not "
                                 f"co-exercised by any test file"),
                        hint=("add a test that calls both and asserts "
                              "bit-exact agreement"))
