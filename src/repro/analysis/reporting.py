"""Finding reporters: text, JSON, and SARIF 2.1.0 for CI annotation."""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Mapping

from repro.analysis.baseline import BaselineResult
from repro.analysis.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "reprolint"
TOOL_URI = "https://github.com/uwnslab/tinysdr"  # the reproduced platform


def render_text(result: BaselineResult) -> str:
    """Compiler-style one-line-per-finding report with a summary tail."""
    lines = [finding.render() for finding in result.new]
    summary = (f"{len(result.new)} finding(s), "
               f"{len(result.baselined)} baselined")
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entr(y/ies)"
    if result.new:
        by_rule = Counter(finding.rule_id for finding in result.new)
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(by_rule.items()))
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: BaselineResult) -> str:
    """JSON document with findings, baselined counts, and stale entries."""

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule_id,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "hint": finding.hint,
        }

    payload = {
        "findings": [encode(f) for f in result.new],
        "baselined": [encode(f) for f in result.baselined],
        "stale_baseline_entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale
        ],
        "summary": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale": len(result.stale),
        },
    }
    return json.dumps(payload, indent=2)


def _sarif_fingerprint(finding: Finding) -> str:
    """Line-insensitive stable id (mirrors the baseline fingerprint)."""
    text = "|".join(finding.fingerprint())
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def render_sarif(result: BaselineResult,
                 rule_classes: Mapping[str, type] | None = None,
                 tool_version: str = "2.0") -> str:
    """SARIF 2.1.0 document for the *new* (gate-failing) findings.

    Baselined findings are deliberately omitted — SARIF consumers (the
    GitHub code-scanning upload in CI) should annotate exactly what
    fails the gate.  ``partialFingerprints`` carries the same
    line-insensitive identity the baseline uses, so annotations track
    findings across unrelated line drift.
    """
    rules_meta = []
    for rule_id in sorted(rule_classes or {}):
        cls = (rule_classes or {})[rule_id]
        rules_meta.append({
            "id": rule_id,
            "name": cls.name,
            "shortDescription": {"text": cls.name},
            "fullDescription": {"text": cls.description},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for finding in result.new:
        message = finding.message
        if finding.hint:
            message += f" [hint: {finding.hint}]"
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col + 1},
                },
            }],
            "partialFingerprints": {
                "reprolint/v1": _sarif_fingerprint(finding),
            },
        })
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "version": tool_version,
                    "rules": rules_meta,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(document, indent=2)
