"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.baseline import BaselineResult
from repro.analysis.engine import Finding


def render_text(result: BaselineResult) -> str:
    """Compiler-style one-line-per-finding report with a summary tail."""
    lines = [finding.render() for finding in result.new]
    summary = (f"{len(result.new)} finding(s), "
               f"{len(result.baselined)} baselined")
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entr(y/ies)"
    if result.new:
        by_rule = Counter(finding.rule_id for finding in result.new)
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(by_rule.items()))
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: BaselineResult) -> str:
    """JSON document with findings, baselined counts, and stale entries."""

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule_id,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "hint": finding.hint,
        }

    payload = {
        "findings": [encode(f) for f in result.new],
        "baselined": [encode(f) for f in result.baselined],
        "stale_baseline_entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale
        ],
        "summary": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale": len(result.stale),
        },
    }
    return json.dumps(payload, indent=2)
