"""Configuration for the reprolint engine.

Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]`` and
is parsed with the stdlib ``tomllib``.  Everything has a sensible
default so ``python -m repro.analysis src`` works on a bare checkout;
the TOML block only overrides what it names.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ConfigurationError

DEFAULT_BASELINE = "reprolint_baseline.json"

#: Modules whose arithmetic models declared-width hardware words; the
#: dtype/bit-width rule (REPRO004) only runs here.
DEFAULT_QUANTIZED_MODULES = (
    "*/radio/iqword.py",
    "*/radio/lvds.py",
    "*/dsp/fixedpoint.py",
    "*/dsp/nco.py",
    "*/fpga/*.py",
)

#: Component-model modules whose numeric constants must cite a datasheet
#: or the paper (REPRO006).
DEFAULT_PROVENANCE_MODULES = (
    "*/radio/*.py",
    "*/fpga/*.py",
    "*/power/*.py",
    "*/platforms/*.py",
)

#: Files the magic-number rule (REPRO005) skips: the units module itself
#: (it *defines* the conversions) and the analysis package.
DEFAULT_UNITS_EXEMPT = (
    "*/repro/units.py",
    "*/repro/analysis/*",
)

#: Files the accounting rule (REPRO008) skips: the timeline ledger is
#: the one place the simulation clock may legitimately accumulate, and
#: the analysis package manipulates patterns, not simulated time.
DEFAULT_ACCOUNTING_EXEMPT = (
    "*/repro/sim/*",
    "*/repro/analysis/*",
)

#: The one sanctioned allocation site the fleet buffer rule (REPRO010)
#: must not flag: the buffer helpers themselves.
DEFAULT_FLEET_BUFFER_EXEMPT = (
    "*/repro/ota/fleet/buffers.py",
)

#: The one sanctioned engine-calling module the service-discipline rule
#: (REPRO014) polices everyone else into using: the workload adapters.
DEFAULT_SERVICE_EXEMPT = (
    "*/repro/service/workloads.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration.

    Attributes:
        select: if non-empty, only these rule IDs run.
        ignore: rule IDs that never run.
        baseline_path: root-relative path of the baseline JSON file.
        tests_path: root-relative directory of the test corpus.
        exclude: fnmatch patterns of relpaths never linted.
        units_threshold: smallest literal magnitude REPRO005 flags.
        rule_scopes: per-rule fnmatch scope overrides, keyed by rule ID.
        rule_exempt: per-rule fnmatch patterns of files the rule skips.
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    baseline_path: str = DEFAULT_BASELINE
    tests_path: str = "tests"
    exclude: tuple[str, ...] = ()
    units_threshold: float = 100_000.0
    rule_scopes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    rule_exempt: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether ``rule_id`` should run under this configuration."""
        if rule_id in self.ignore:
            return False
        if self.select:
            return rule_id in self.select
        return True


def default_config() -> LintConfig:
    """The built-in configuration (scopes wired to the repo layout)."""
    return LintConfig(
        rule_scopes={
            "REPRO004": DEFAULT_QUANTIZED_MODULES,
            "REPRO006": DEFAULT_PROVENANCE_MODULES,
        },
        rule_exempt={
            "REPRO005": DEFAULT_UNITS_EXEMPT,
            "REPRO008": DEFAULT_ACCOUNTING_EXEMPT,
            "REPRO010": DEFAULT_FLEET_BUFFER_EXEMPT,
            "REPRO014": DEFAULT_SERVICE_EXEMPT,
        })


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.reprolint]`` from ``root/pyproject.toml`` if present.

    Raises:
        ConfigurationError: on a malformed config block (wrong types,
            unknown keys).
    """
    config = default_config()
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    block = data.get("tool", {}).get("reprolint")
    if block is None:
        return config
    return apply_toml(config, block)


def apply_toml(config: LintConfig, block: dict) -> LintConfig:
    """Overlay a ``[tool.reprolint]`` mapping onto ``config``.

    Raises:
        ConfigurationError: for unknown keys or wrong value types.
    """
    known = {"select", "ignore", "baseline", "tests-path", "exclude",
             "units-threshold", "scopes", "exempt"}
    unknown = set(block) - known
    if unknown:
        raise ConfigurationError(
            f"unknown [tool.reprolint] keys: {sorted(unknown)}")
    updates: dict = {}
    if "select" in block:
        updates["select"] = frozenset(
            item.upper() for item in _string_list(block, "select"))
    if "ignore" in block:
        updates["ignore"] = frozenset(
            item.upper() for item in _string_list(block, "ignore"))
    if "baseline" in block:
        updates["baseline_path"] = _string(block, "baseline")
    if "tests-path" in block:
        updates["tests_path"] = _string(block, "tests-path")
    if "exclude" in block:
        updates["exclude"] = tuple(_string_list(block, "exclude"))
    if "units-threshold" in block:
        value = block["units-threshold"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"units-threshold must be a number, got {value!r}")
        updates["units_threshold"] = float(value)
    for key, attribute in (("scopes", "rule_scopes"),
                           ("exempt", "rule_exempt")):
        if key not in block:
            continue
        table = block[key]
        if not isinstance(table, dict):
            raise ConfigurationError(
                f"{key} must be a table of rule -> patterns, got {table!r}")
        merged = dict(getattr(config, attribute))
        for rule_id, patterns in table.items():
            if (not isinstance(patterns, list)
                    or not all(isinstance(p, str) for p in patterns)):
                raise ConfigurationError(
                    f"{key}.{rule_id} must be a list of strings")
            merged[rule_id.upper()] = tuple(patterns)
        updates[attribute] = merged
    return replace(config, **updates)


def _string(block: dict, key: str) -> str:
    value = block[key]
    if not isinstance(value, str):
        raise ConfigurationError(f"{key} must be a string, got {value!r}")
    return value


def _string_list(block: dict, key: str) -> list[str]:
    value = block[key]
    if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value):
        raise ConfigurationError(
            f"{key} must be a list of strings, got {value!r}")
    return list(value)
