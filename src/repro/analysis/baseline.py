"""Baseline file support: grandfathering known findings.

A baseline is a checked-in JSON inventory of accepted findings.  Each
entry is a line-number-insensitive fingerprint ``(rule, path, message)``
with a count, so pure line drift (an unrelated edit above a grandfathered
finding) never breaks the gate, while *new* findings — or more instances
of an old one — always do.

The intended workflow: ``python -m repro.analysis src --write-baseline``
to accept the current state, commit the file, then burn entries down to
zero over subsequent PRs.  An empty baseline (the repo's steady state)
means every rule is fully enforced.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import Finding
from repro.errors import ConfigurationError

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of filtering findings through a baseline.

    Attributes:
        new: findings not covered by the baseline (these fail the gate).
        baselined: findings absorbed by baseline entries.
        stale: fingerprints present in the baseline but no longer
            observed — candidates for deletion from the file.
    """

    new: list[Finding]
    baselined: list[Finding]
    stale: list[tuple[str, str, str]]


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialize ``findings`` as a baseline file at ``path``."""
    counts = Counter(finding.fingerprint() for finding in findings)
    entries = [
        {"rule": rule, "path": relpath, "message": message, "count": count}
        for (rule, relpath, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a fingerprint -> count mapping.

    A missing file is an empty baseline.

    Raises:
        ConfigurationError: on malformed JSON or a wrong schema version.
    """
    if not path.is_file():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}")
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported version {payload.get('version')!r}")
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        try:
            fingerprint = (entry["rule"], entry["path"], entry["message"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"baseline {path} has a malformed entry {entry!r}: {exc}")
        counts[fingerprint] += count
    return counts


def prune_missing(baseline: Counter,
                  root: Path) -> tuple[Counter, list[tuple[str, str, str]]]:
    """Drop baseline entries whose file no longer exists.

    Historically the baseline silently kept grandfathered findings for
    deleted files forever; those entries can never be observed again,
    so they only hide real count regressions elsewhere.  Returns the
    pruned counter and the removed fingerprints (sorted) so the CLI can
    report how many were dropped.
    """
    kept: Counter = Counter()
    removed: list[tuple[str, str, str]] = []
    for fingerprint, count in baseline.items():
        _, relpath, _ = fingerprint
        if (root / relpath).is_file():
            kept[fingerprint] = count
        else:
            removed.append(fingerprint)
    return kept, sorted(removed)


def apply_baseline(findings: list[Finding], baseline: Counter) -> BaselineResult:
    """Split findings into new vs baselined against ``baseline``.

    Findings matching a fingerprint are absorbed up to the recorded
    count (lowest line numbers first, for deterministic reporting).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    absorbed: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col)):
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            absorbed.append(finding)
        else:
            new.append(finding)
    stale = sorted(fp for fp, count in remaining.items() if count > 0)
    return BaselineResult(new=new, baselined=absorbed, stale=stale)
