"""``repro.analysis`` — domain-aware static analysis ("reprolint").

The reproduction's core claim is that every FPGA/MCU algorithm is
modeled *bit-exactly*.  That property rests on a handful of structural
invariants (explicit RNG threading, frozen plan-cache arrays, tested
``*_reference`` parity twins, explicit masks in quantized arithmetic,
named physical constants with datasheet provenance).  This package
machine-checks them:

* :mod:`repro.analysis.engine` — AST rule engine with a registry,
  per-finding rule IDs / locations / fix-it hints and inline
  ``# reprolint: disable=...`` suppressions.
* :mod:`repro.analysis.rules` — the seven domain rules
  (REPRO001..REPRO007).
* :mod:`repro.analysis.baseline` — checked-in grandfathering of
  pre-existing findings.
* :mod:`repro.analysis.sanitize` — runtime sanitizer activated by
  ``REPRO_SANITIZE=1``.
* :mod:`repro.analysis.cli` — the ``python -m repro.analysis`` /
  ``make lint`` entry point.
"""

from repro.analysis.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import LintConfig, default_config, load_config
from repro.analysis.engine import (
    FileContext,
    FileRule,
    Finding,
    Project,
    ProjectRule,
    Rule,
    all_rules,
    register,
    run_analysis,
)
from repro.analysis.sanitize import (
    SanitizerError,
    assert_frozen,
    install_from_env,
)

__all__ = [
    "BaselineResult",
    "FileContext",
    "FileRule",
    "Finding",
    "LintConfig",
    "Project",
    "ProjectRule",
    "Rule",
    "SanitizerError",
    "all_rules",
    "apply_baseline",
    "assert_frozen",
    "default_config",
    "install_from_env",
    "load_baseline",
    "load_config",
    "register",
    "run_analysis",
    "write_baseline",
]
