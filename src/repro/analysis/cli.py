"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every finding is absorbed by the baseline and 1
otherwise, so the command slots directly into ``make lint`` and CI
gates.  ``--write-baseline`` accepts the current findings wholesale —
the grandfathering half of the baseline workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis import reporting
from repro.analysis.cache import (DEFAULT_CACHE_NAME, LintCache,
                                  config_cache_key)
from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import all_rules, run_analysis
from repro.errors import ReproError


def find_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start.resolve() if start.is_dir() else start.resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("reprolint: domain-aware static analysis for the "
                     "tinySDR reproduction's bit-exactness invariants"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", type=Path, default=None,
                        help="project root (default: nearest pyproject.toml)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: from [tool.reprolint])")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings into the baseline")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the incremental per-file result cache")
    return parser


def _split_ids(text: str) -> frozenset[str]:
    return frozenset(part.strip().upper()
                     for part in text.split(",") if part.strip())


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, cls in sorted(all_rules().items()):
            print(f"{rule_id}  {cls.name:<22} {cls.description}")
        return 0
    targets = [Path(p) for p in args.paths]
    root = args.root if args.root is not None else find_root(targets[0])
    try:
        config = load_config(root)
        if args.select:
            config = LintConfig(**{**config.__dict__,
                                   "select": _split_ids(args.select)})
        if args.ignore:
            config = LintConfig(**{**config.__dict__,
                                   "ignore": config.ignore
                                   | _split_ids(args.ignore)})
        cache = None
        if not args.no_cache:
            cache = LintCache.load(
                root / DEFAULT_CACHE_NAME,
                config_cache_key(config, all_rules()))
        findings = run_analysis(root, targets, config, cache=cache)
        if cache is not None:
            cache.save()
            print(f"reprolint: cache {cache.hits} hit(s), "
                  f"{cache.misses} miss(es)", file=sys.stderr)
        baseline_path = (args.baseline if args.baseline is not None
                         else root / config.baseline_path)
        if args.write_baseline:
            baseline_mod.write_baseline(baseline_path, findings)
            print(f"wrote {len(findings)} finding(s) to {baseline_path}")
            return 0
        if args.no_baseline:
            known = baseline_mod.Counter()
        else:
            known = baseline_mod.load_baseline(baseline_path)
        known, pruned = baseline_mod.prune_missing(known, root)
        if pruned:
            print(f"reprolint: pruned {len(pruned)} baseline entr(y/ies) "
                  f"for deleted files", file=sys.stderr)
        result = baseline_mod.apply_baseline(findings, known)
    except (ReproError, SyntaxError, OSError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(reporting.render_json(result))
    elif args.format == "sarif":
        print(reporting.render_sarif(result, all_rules()))
    else:
        print(reporting.render_text(result))
    return 1 if result.new else 0
