"""Incremental lint cache: skip unchanged files on warm runs.

Per-file rule results are cached in ``.reprolint_cache.json`` at the
project root, keyed by the file's content hash.  A warm ``make lint``
run re-executes the file rules only for files whose content changed;
project rules (parity coverage, the semantic pass) always run, because
their answers depend on the whole tree.

The cache key bakes in the resolved configuration and the enabled
file-rule set, so changing ``[tool.reprolint]``, ``--select`` /
``--ignore``, or upgrading the analyzer invalidates every entry at
once rather than serving stale findings.  ``--no-cache`` bypasses the
cache entirely.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.config import LintConfig
    from repro.analysis.engine import Finding

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".reprolint_cache.json"

#: Bump when rule logic changes in a way that should invalidate cached
#: per-file findings without a config change.
ANALYZER_GENERATION = "reprolint-v2"


def file_digest(source: str) -> str:
    """Content hash of one lint target."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_cache_key(config: "LintConfig",
                     rule_ids: Iterable[str]) -> str:
    """Digest of everything that changes per-file rule output."""
    payload = {
        "generation": ANALYZER_GENERATION,
        "version": CACHE_VERSION,
        "rules": sorted(rule_ids),
        "select": sorted(config.select),
        "ignore": sorted(config.ignore),
        "exclude": list(config.exclude),
        "units_threshold": config.units_threshold,
        "scopes": {rule: list(patterns) for rule, patterns
                   in sorted(config.rule_scopes.items())},
        "exempt": {rule: list(patterns) for rule, patterns
                   in sorted(config.rule_exempt.items())},
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LintCache:
    """Per-file finding cache with hit/miss accounting.

    Attributes:
        path: on-disk location of the cache file.
        key: the :func:`config_cache_key` this cache is valid for.
        hits: files served from cache this run.
        misses: files (re)analyzed this run.
    """

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self.key = key
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict] = {}

    @classmethod
    def load(cls, path: Path, key: str) -> "LintCache":
        """Read a cache file; a missing/corrupt/mismatched one is empty."""
        cache = cls(path, key)
        if not path.is_file():
            return cache
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return cache
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
                or payload.get("key") != key):
            return cache
        files = payload.get("files")
        if isinstance(files, dict):
            cache._files = files
        return cache

    def lookup(self, relpath: str,
               digest: str) -> "list[Finding] | None":
        """Cached findings for an unchanged file, else ``None``."""
        from repro.analysis.engine import Finding

        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("sha256") != digest:
            self.misses += 1
            return None
        try:
            findings = [Finding(rule_id=item["rule"], path=item["path"],
                                line=int(item["line"]),
                                col=int(item["col"]),
                                message=item["message"],
                                hint=item.get("hint", ""))
                        for item in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, relpath: str, digest: str,
              findings: "Iterable[Finding]") -> None:
        """Record the fresh per-file findings for ``relpath``."""
        self._files[relpath] = {
            "sha256": digest,
            "findings": [
                {"rule": f.rule_id, "path": f.path, "line": f.line,
                 "col": f.col, "message": f.message, "hint": f.hint}
                for f in findings
            ],
        }

    def prune(self, keep: Iterable[str]) -> None:
        """Drop entries for files no longer in the target set."""
        wanted = set(keep)
        self._files = {relpath: entry
                       for relpath, entry in self._files.items()
                       if relpath in wanted}

    def save(self) -> None:
        """Write the cache back to disk (best effort)."""
        payload = {"version": CACHE_VERSION, "key": self.key,
                   "files": dict(sorted(self._files.items()))}
        try:
            self.path.write_text(json.dumps(payload, indent=1) + "\n",
                                 encoding="utf-8")
        except OSError:  # pragma: no cover - read-only checkout
            pass
