"""One construction point for job-level random generators.

Before the campaign service existed every CLI subcommand built its own
``np.random.default_rng(args.seed)`` ad hoc, which made it easy for a
refactor to silently change *where* in the argument flow the generator
was constructed — and therefore which draws land where.  This module is
the single choke point both the thin CLI clients and the
:mod:`repro.service` workload adapters go through, so a
:class:`~repro.service.jobspec.JobSpec` seeds bit-identically no matter
which path runs it.

The fleet engine's counter-based per-node streams
(:func:`repro.ota.fleet.rng.spawn_rng`) are deliberately separate: they
key on ``(seed, node_id, draw_index)`` and never touch a sequential
generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def job_rng(seed: int) -> np.random.Generator:
    """The sequential generator a seeded job draws from.

    Every workload that consumes a sequential random stream — sweeps,
    campus campaigns, ADR studies — must obtain its generator here with
    the job's root seed, so the draw sequence is a function of the
    :class:`~repro.service.jobspec.JobSpec` alone.

    Raises:
        ConfigurationError: for a negative seed (numpy would accept it
            only via entropy-pool semantics, which are not replayable
            from the spec).
    """
    if seed < 0:
        raise ConfigurationError(f"job seed must be >= 0, got {seed}")
    return np.random.default_rng(seed)
