"""A small synchronous-dataflow framework in the GNU Radio style.

The paper's conclusion lists easier prototyping as future work: "Future
versions can incorporate a pipeline to use high level synthesis tools or
integrate with GNUradio".  This module provides that programming model
over the repro DSP components: blocks with typed ports, a flow graph
that connects them, and a scheduler that streams sample chunks from
sources to sinks until the sources drain.

The execution model is deliberately simple (single-threaded, topological
chunk passing) - it exists so PHY pipelines can be composed and tested
declaratively, not to chase throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


class Block:
    """Base class for flowgraph blocks.

    Subclasses declare ``num_inputs``/``num_outputs`` and implement
    :meth:`work`.  Sources (no inputs) return ``None`` from work when
    exhausted.
    """

    num_inputs = 1
    num_outputs = 1

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__

    def work(self, inputs: list[np.ndarray]) -> list[np.ndarray] | None:
        """Process one chunk per input; return one chunk per output.

        Sources return ``None`` to signal exhaustion.  Blocks may return
        empty arrays when they need more input before producing.
        """
        raise NotImplementedError

    def start(self) -> None:
        """Hook called once before streaming begins."""

    def finish(self) -> list[np.ndarray] | None:
        """Hook called once after sources drain; may flush tail output."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class Connection:
    """One directed edge between block ports."""

    source: Block
    source_port: int
    destination: Block
    destination_port: int


@dataclass
class _Edge:
    connection: Connection
    buffer: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.complex128))


class FlowGraph:
    """A directed acyclic graph of blocks plus its scheduler."""

    def __init__(self) -> None:
        self._blocks: list[Block] = []
        self._edges: list[_Edge] = []

    def add(self, block: Block) -> Block:
        """Register a block (connect() does this implicitly)."""
        if block not in self._blocks:
            self._blocks.append(block)
        return block

    def connect(self, source: Block, destination: Block,
                source_port: int = 0, destination_port: int = 0) -> None:
        """Wire ``source[source_port] -> destination[destination_port]``.

        Raises:
            ConfigurationError: for invalid ports, duplicate input
                connections, or self-loops.
        """
        if source is destination:
            raise ConfigurationError("self-loops are not supported")
        if not 0 <= source_port < source.num_outputs:
            raise ConfigurationError(
                f"{source} has no output port {source_port}")
        if not 0 <= destination_port < destination.num_inputs:
            raise ConfigurationError(
                f"{destination} has no input port {destination_port}")
        for edge in self._edges:
            c = edge.connection
            if (c.destination is destination
                    and c.destination_port == destination_port):
                raise ConfigurationError(
                    f"input {destination_port} of {destination} is already "
                    "connected")
        self.add(source)
        self.add(destination)
        self._edges.append(_Edge(Connection(
            source, source_port, destination, destination_port)))

    # -- scheduling --------------------------------------------------------

    def _validate(self) -> list[Block]:
        """Check port completeness and return a topological order.

        Raises:
            ConfigurationError: for unconnected inputs or cycles.
        """
        for block in self._blocks:
            connected = {e.connection.destination_port
                         for e in self._edges
                         if e.connection.destination is block}
            if len(connected) != block.num_inputs:
                missing = set(range(block.num_inputs)) - connected
                raise ConfigurationError(
                    f"{block} has unconnected inputs {sorted(missing)}")
        # Kahn's algorithm.
        order: list[Block] = []
        in_degree = {id(b): 0 for b in self._blocks}
        for edge in self._edges:
            in_degree[id(edge.connection.destination)] += 1
        ready = [b for b in self._blocks if in_degree[id(b)] == 0]
        while ready:
            block = ready.pop()
            order.append(block)
            for edge in self._edges:
                if edge.connection.source is block:
                    key = id(edge.connection.destination)
                    in_degree[key] -= 1
                    if in_degree[key] == 0:
                        ready.append(edge.connection.destination)
        if len(order) != len(self._blocks):
            raise ConfigurationError("flow graph contains a cycle")
        return order

    def _adjacency(self) -> tuple[dict[int, list[_Edge]],
                                  dict[int, list[_Edge]]]:
        """Per-block input/output edge lists, from one scan of the edges.

        The scheduler's inner loop runs once per block per iteration;
        rescanning every edge there made ``run()``
        O(iterations x blocks x edges).  Input lists come back sorted by
        destination port, matching the ``work()`` input convention.
        """
        inputs: dict[int, list[_Edge]] = {id(b): [] for b in self._blocks}
        outputs: dict[int, list[_Edge]] = {id(b): [] for b in self._blocks}
        for edge in self._edges:
            outputs[id(edge.connection.source)].append(edge)
            inputs[id(edge.connection.destination)].append(edge)
        for edges in inputs.values():
            edges.sort(key=lambda e: e.connection.destination_port)
        return inputs, outputs

    @staticmethod
    def _deliver(out_edges: list[_Edge],
                 outputs: list[np.ndarray]) -> None:
        for edge in out_edges:
            chunk = outputs[edge.connection.source_port]
            if chunk.size:
                edge.buffer = np.concatenate([edge.buffer, chunk])

    def run(self, max_iterations: int = 100_000) -> None:
        """Stream until every source is exhausted and buffers drain.

        Raises:
            ConfigurationError: on invalid graphs or iteration overrun
                (a block that never consumes its input).
        """
        order = self._validate()
        in_edges, out_edges = self._adjacency()
        for block in order:
            block.start()
        sources = [b for b in order if b.num_inputs == 0]
        exhausted: set[int] = set()
        for _ in range(max_iterations):
            progress = False
            for block in order:
                if block.num_inputs == 0:
                    if id(block) in exhausted:
                        continue
                    outputs = block.work([])
                    if outputs is None:
                        exhausted.add(id(block))
                        continue
                    self._deliver(out_edges[id(block)], outputs)
                    progress = True
                    continue
                edges = in_edges[id(block)]
                # Single-input blocks wait for data; multi-input blocks
                # run when anything arrives (they buffer internally), so
                # an early-draining source cannot starve them.
                if block.num_inputs == 1:
                    if edges[0].buffer.size == 0:
                        continue
                elif all(edge.buffer.size == 0 for edge in edges):
                    continue
                inputs = [edge.buffer for edge in edges]
                for edge in edges:
                    edge.buffer = np.zeros(0, dtype=np.complex128)
                outputs = block.work(inputs)
                if outputs is not None:
                    self._deliver(out_edges[id(block)], outputs)
                progress = True
            if not progress:
                if len(exhausted) == len(sources):
                    break
        else:
            raise ConfigurationError(
                f"flow graph did not settle in {max_iterations} iterations")
        for block in order:
            tail = block.finish()
            if tail is not None:
                self._deliver(out_edges[id(block)], tail)
        # One final pass so sinks see flushed tails.
        for block in order:
            if block.num_inputs == 0:
                continue
            edges = in_edges[id(block)]
            if all(edge.buffer.size == 0 for edge in edges):
                continue
            inputs = [edge.buffer for edge in edges]
            for edge in edges:
                edge.buffer = np.zeros(0, dtype=np.complex128)
            outputs = block.work(inputs)
            if outputs is not None:
                self._deliver(out_edges[id(block)], outputs)
