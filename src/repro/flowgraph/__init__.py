"""GNU Radio-style flowgraph framework over the repro components."""

from repro.flowgraph.blocks import (
    AddBlock,
    AwgnChannelBlock,
    FirFilterBlock,
    GainBlock,
    LoRaPacketSource,
    LoRaReceiverSink,
    VectorSink,
    VectorSource,
)
from repro.flowgraph.graph import Block, Connection, FlowGraph

__all__ = [
    "AddBlock",
    "AwgnChannelBlock",
    "Block",
    "Connection",
    "FirFilterBlock",
    "FlowGraph",
    "GainBlock",
    "LoRaPacketSource",
    "LoRaReceiverSink",
    "VectorSink",
    "VectorSource",
]
