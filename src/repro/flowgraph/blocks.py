"""Standard flowgraph blocks wrapping the repro DSP/PHY components.

Sources, sinks, channel models and PHY stages, so receivers and
transmitters can be assembled declaratively::

    graph = FlowGraph()
    source = LoRaPacketSource(params, [b"hello"])
    channel = AwgnChannelBlock(snr_db=0.0, rng=rng)
    sink = LoRaReceiverSink(params)
    graph.connect(source, channel)
    graph.connect(channel, sink)
    graph.run()
    assert sink.payloads == [b"hello"]
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import awgn
from repro.dsp.filters import StreamingFir
from repro.errors import ConfigurationError, DemodulationError
from repro.flowgraph.graph import Block
from repro.phy.lora.demodulator import LoRaDemodulator
from repro.phy.lora.modulator import LoRaModulator
from repro.phy.lora.params import LoRaParams


class VectorSource(Block):
    """Emits a fixed sample vector in chunks, then exhausts."""

    num_inputs = 0
    num_outputs = 1

    def __init__(self, samples: np.ndarray, chunk: int = 4096,
                 name: str | None = None) -> None:
        super().__init__(name)
        if chunk <= 0:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        self._samples = np.asarray(samples, dtype=np.complex128)
        self._chunk = chunk
        self._cursor = 0

    def work(self, inputs):
        if self._cursor >= self._samples.size:
            return None
        chunk = self._samples[self._cursor:self._cursor + self._chunk]
        self._cursor += chunk.size
        return [chunk]


class VectorSink(Block):
    """Accumulates every sample it receives."""

    num_inputs = 1
    num_outputs = 0

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self.samples = np.zeros(0, dtype=np.complex128)

    def work(self, inputs):
        self.samples = np.concatenate([self.samples, inputs[0]])
        return []


class GainBlock(Block):
    """Multiplies the stream by a complex constant."""

    def __init__(self, gain: complex, name: str | None = None) -> None:
        super().__init__(name)
        self.gain = gain

    def work(self, inputs):
        return [inputs[0] * self.gain]


class AddBlock(Block):
    """Sums two streams sample by sample (truncates to the shorter)."""

    num_inputs = 2
    num_outputs = 1

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._pending = [np.zeros(0, dtype=np.complex128),
                         np.zeros(0, dtype=np.complex128)]

    def work(self, inputs):
        for port in range(2):
            self._pending[port] = np.concatenate(
                [self._pending[port], inputs[port]])
        n = min(p.size for p in self._pending)
        if n == 0:
            return [np.zeros(0, dtype=np.complex128)]
        out = self._pending[0][:n] + self._pending[1][:n]
        self._pending = [p[n:] for p in self._pending]
        return [out]


class FirFilterBlock(Block):
    """Streaming FIR filter stage."""

    def __init__(self, taps: np.ndarray, name: str | None = None) -> None:
        super().__init__(name)
        self._fir = StreamingFir(taps)

    def work(self, inputs):
        return [self._fir.process(inputs[0])]


class AwgnChannelBlock(Block):
    """Adds white Gaussian noise at a fixed SNR (unit signal power)."""

    def __init__(self, snr_db: float, rng: np.random.Generator,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.snr_db = snr_db
        self._rng = rng

    def work(self, inputs):
        chunk = inputs[0]
        if chunk.size == 0:
            return [chunk]
        return [awgn(chunk, self.snr_db, self._rng, signal_power=1.0)]


class LoRaPacketSource(Block):
    """Modulates a queue of payloads into a contiguous waveform."""

    num_inputs = 0
    num_outputs = 1

    def __init__(self, params: LoRaParams, payloads: list[bytes],
                 gap_symbols: int = 4, quantized: bool = True,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.params = params
        self._modulator = LoRaModulator(params, quantized=quantized)
        self._payloads = list(payloads)
        self._gap = np.zeros(gap_symbols * params.samples_per_symbol,
                             dtype=np.complex128)

    def work(self, inputs):
        if not self._payloads:
            return None
        payload = self._payloads.pop(0)
        waveform = self._modulator.modulate(payload)
        return [np.concatenate([self._gap, waveform, self._gap])]


class LoRaReceiverSink(Block):
    """Buffers the stream and decodes every packet it can find."""

    num_inputs = 1
    num_outputs = 0

    def __init__(self, params: LoRaParams, crc: bool = True,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.params = params
        self._demodulator = LoRaDemodulator(params, crc=crc)
        self._buffer = np.zeros(0, dtype=np.complex128)
        self.payloads: list[bytes] = []
        self.crc_failures = 0

    def work(self, inputs):
        self._buffer = np.concatenate([self._buffer, inputs[0]])
        return []

    def finish(self):
        cursor = 0
        sym = self.params.samples_per_symbol
        while self._buffer.size - cursor > 16 * sym:
            try:
                sync = self._demodulator.synchronizer.find_packet(
                    self._demodulator.frontend(self._buffer), cursor)
            except DemodulationError:
                break
            try:
                decoded = self._demodulator.receive(
                    self._buffer[max(cursor, sync.preamble_start - sym):])
            except DemodulationError:
                break
            if decoded.crc_ok is False:
                self.crc_failures += 1
            else:
                self.payloads.append(decoded.payload)
            consumed = self._demodulator.codec.symbol_count(
                len(decoded.payload))
            cursor = sync.payload_start + (consumed + 2) * sym
        return None
