"""SDR platform and radio-chip catalogs (paper Tables 1-2, Fig. 2).

The paper motivates tinySDR by comparing it against every commercial and
research SDR platform on the axes IoT endpoints care about: sleep power,
standalone operation, OTA programmability, cost, bandwidth, ADC
resolution, frequency coverage and size.  This module encodes those
comparisons as data so the benchmarks can regenerate the tables and so
downstream users can extend them with new platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SdrPlatform:
    """One row of paper Table 1.

    Attributes:
        name: platform name.
        sleep_power_w: measured sleep power; ``None`` when the platform
            has no sleep mode / is not standalone.
        standalone: usable without a host computer.
        ota_programmable: PHY/MAC updatable over the air.
        cost_usd: unit cost (sale price or published BOM).
        max_bandwidth_hz: maximum supported baseband bandwidth.
        adc_bits: ADC resolution.
        frequency_ranges_hz: covered RF spectrum.
        size_cm: (width, height) board size.
        tx_power_w: radio-module power while transmitting (Fig. 2).
        rx_power_w: radio-module power while receiving (Fig. 2).
        tx_output_dbm: the RF output at which ``tx_power_w`` was measured.
    """

    name: str
    sleep_power_w: float | None
    standalone: bool
    ota_programmable: bool
    cost_usd: float
    max_bandwidth_hz: float
    adc_bits: int
    frequency_ranges_hz: tuple[tuple[float, float], ...]
    size_cm: tuple[float, float]
    tx_power_w: float | None
    rx_power_w: float | None
    tx_output_dbm: float | None


# paper: Table 1 and Fig. 2 (platform survey; power bars).
SDR_PLATFORMS: tuple[SdrPlatform, ...] = (
    SdrPlatform("USRP E310", 2.820, True, False, 3000.0, 30.72e6, 12,
                ((70e6, 6000e6),), (6.8, 13.3), 1.375, 0.920, 10.0),
    SdrPlatform("USRP B200mini", None, False, False, 733.0, 30.72e6, 12,
                ((70e6, 6000e6),), (5.0, 8.3), 0.870, 0.670, 10.0),
    SdrPlatform("bladeRF 2.0", 0.717, True, False, 720.0, 30.72e6, 12,
                ((47e6, 6000e6),), (6.3, 12.7), 0.750, 0.570, 10.0),
    SdrPlatform("LimeSDR Mini", None, False, False, 159.0, 30.72e6, 12,
                ((10e6, 3500e6),), (3.1, 6.9), 0.730, 0.580, 10.0),
    SdrPlatform("PlutoSDR", None, False, False, 149.0, 20e6, 12,
                ((325e6, 3800e6),), (7.9, 11.7), 0.800, 0.620, 10.0),
    SdrPlatform("uSDR", 0.320, True, False, 150.0, 40e6, 8,
                ((2400e6, 2500e6),), (7.0, 14.5), 0.450, 0.320, 14.0),
    SdrPlatform("GalioT", 0.350, True, False, 60.0, 14.4e6, 8,
                ((0.5e6, 1766e6),), (2.5, 7.0), None, 0.350, None),
    SdrPlatform("TinySDR", 30e-6, True, True, 55.0, 4e6, 13,
                ((389.5e6, 510e6), (779e6, 1020e6), (2400e6, 2483e6)),
                (3.0, 5.0), 0.283, 0.186, 14.0),
)
"""Paper Table 1 plus the Fig. 2 radio-module power bars."""


@dataclass(frozen=True)
class IqRadioChip:
    """One row of paper Table 2.

    Attributes:
        name: part number.
        frequency_ranges_hz: covered spectrum.
        rx_power_w: receive-mode power.
        cost_usd: unit cost.
    """

    name: str
    frequency_ranges_hz: tuple[tuple[float, float], ...]
    rx_power_w: float
    cost_usd: float


# paper: Table 2 (I/Q radio chip survey).
IQ_RADIO_CHIPS: tuple[IqRadioChip, ...] = (
    IqRadioChip("AD9361", ((70e6, 6000e6),), 0.262, 282.0),
    IqRadioChip("AD9363", ((325e6, 3800e6),), 0.262, 123.0),
    IqRadioChip("AD9364", ((70e6, 6000e6),), 0.262, 210.0),
    IqRadioChip("LMS7002M", ((10e6, 3500e6),), 0.378, 110.0),
    IqRadioChip("MAX2831", ((2400e6, 2500e6),), 0.276, 9.0),
    IqRadioChip("SX1257", ((862e6, 1020e6),), 0.054, 7.5),
    IqRadioChip("AT86RF215",
                ((389.5e6, 510e6), (779e6, 1020e6), (2400e6, 2483e6)),
                0.050, 5.5),
)
"""Paper Table 2: the radio-chip survey that selected the AT86RF215."""

# paper: section 1 (bandwidths IoT protocols actually use).
IOT_PROTOCOL_BANDWIDTHS_HZ = {
    "LoRa": 500e3,
    "Sigfox": 200.0,
    "NB-IoT": 180e3,
    "LTE-M": 1.4e6,
    "Bluetooth": 2e6,
    "ZigBee": 2e6,
}
"""Intro section: the bandwidths IoT protocols actually use."""


def get_platform(name: str) -> SdrPlatform:
    """Look up a platform row by name.

    Raises:
        ConfigurationError: for unknown names.
    """
    for platform in SDR_PLATFORMS:
        if platform.name.lower() == name.lower():
            return platform
    raise ConfigurationError(f"unknown platform {name!r}")


def sleep_power_advantage(reference: str = "TinySDR") -> dict[str, float]:
    """Ratio of each platform's sleep power to the reference's.

    The headline claim: tinySDR sleeps at 30 uW, "10,000x lower than
    existing SDR platforms".
    """
    base = get_platform(reference).sleep_power_w
    if base is None or base <= 0:
        raise ConfigurationError(
            f"reference {reference!r} has no sleep power figure")
    return {p.name: p.sleep_power_w / base
            for p in SDR_PLATFORMS
            if p.sleep_power_w is not None and p.name != reference}


def covers_band(platform: SdrPlatform, frequency_hz: float) -> bool:
    """Whether a platform's RF coverage includes a frequency."""
    return any(low <= frequency_hz <= high
               for low, high in platform.frequency_ranges_hz)


def supports_protocol(platform: SdrPlatform, protocol: str) -> bool:
    """Whether a platform's bandwidth covers an IoT protocol's needs.

    Raises:
        ConfigurationError: for unknown protocol names.
    """
    if protocol not in IOT_PROTOCOL_BANDWIDTHS_HZ:
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    return platform.max_bandwidth_hz >= IOT_PROTOCOL_BANDWIDTHS_HZ[protocol]


# paper: section 2 (endpoint requirement thresholds).
ENDPOINT_BAND_900_HZ = 915e6
ENDPOINT_BAND_2G4_HZ = 2440e6
ENDPOINT_MIN_BANDWIDTH_HZ = 2e6


def endpoint_requirements_report() -> dict[str, dict[str, bool]]:
    """Score every platform against the paper's six endpoint requirements.

    Section 2's checklist: dual-band coverage, low sleep power,
    standalone operation, OTA programming, low cost, and >= 2 MHz
    bandwidth.
    """
    report = {}
    for platform in SDR_PLATFORMS:
        report[platform.name] = {
            "dual_band_900_2400": (covers_band(platform, ENDPOINT_BAND_900_HZ)
                                   and covers_band(platform,
                                                   ENDPOINT_BAND_2G4_HZ)),
            "sleep_below_1mw": (platform.sleep_power_w is not None
                                and platform.sleep_power_w < 1e-3),
            "standalone": platform.standalone,
            "ota_programmable": platform.ota_programmable,
            "cost_below_100usd": platform.cost_usd < 100.0,
            "bandwidth_2mhz": (platform.max_bandwidth_hz
                               >= ENDPOINT_MIN_BANDWIDTH_HZ),
        }
    return report
