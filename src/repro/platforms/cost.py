"""TinySDR bill of materials (paper Table 5).

The cost analysis at 1000-unit volume: every component group, PCB
fabrication and assembly, totalling $54.53 - the "$55" of Table 1 and
the abstract's low-cost claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BomLine:
    """One bill-of-materials line.

    Attributes:
        group: functional group (DSP, IQ Front-End, ...).
        component: part description.
        unit_price_usd: price at 1000-unit volume.
    """

    group: str
    component: str
    unit_price_usd: float


# paper: Table 5 (1000-unit bill of materials).
BILL_OF_MATERIALS: tuple[BomLine, ...] = (
    BomLine("DSP", "FPGA", 8.69),
    BomLine("DSP", "Oscillator", 0.90),
    BomLine("IQ Front-End", "Radio", 5.08),
    BomLine("IQ Front-End", "Crystal", 0.53),
    BomLine("IQ Front-End", "2.4 GHz Balun", 0.36),
    BomLine("IQ Front-End", "Sub-GHz Balun", 0.30),
    BomLine("Backbone", "Radio", 4.50),
    BomLine("Backbone", "Crystal", 0.40),
    BomLine("Backbone", "Flash Memory", 1.60),
    BomLine("MAC", "MCU", 3.89),
    BomLine("MAC", "Crystals", 0.68),
    BomLine("RF", "Switch", 3.14),
    BomLine("RF", "Sub-GHz PA", 1.54),
    BomLine("RF", "2.4 GHz PA", 1.72),
    BomLine("Power Management", "Regulators", 3.70),
    BomLine("Supporting Components", "-", 4.50),
    BomLine("Production", "Fabrication", 3.00),
    BomLine("Production", "Assembly", 10.00),
)
"""Paper Table 5, line by line."""


def total_cost_usd(lines: tuple[BomLine, ...] = BILL_OF_MATERIALS) -> float:
    """Total unit cost (paper: $54.53)."""
    return round(sum(line.unit_price_usd for line in lines), 2)


def cost_by_group(lines: tuple[BomLine, ...] = BILL_OF_MATERIALS
                  ) -> dict[str, float]:
    """Subtotals per functional group."""
    groups: dict[str, float] = {}
    for line in lines:
        groups[line.group] = round(groups.get(line.group, 0.0)
                                   + line.unit_price_usd, 2)
    return groups


def cost_without(component_groups: tuple[str, ...],
                 lines: tuple[BomLine, ...] = BILL_OF_MATERIALS) -> float:
    """What-if cost with whole groups removed (e.g. dropping the PAs).

    Raises:
        ConfigurationError: if a named group does not exist in the BOM.
    """
    known = {line.group for line in lines}
    for group in component_groups:
        if group not in known:
            raise ConfigurationError(f"unknown BOM group {group!r}")
    kept = tuple(line for line in lines if line.group not in component_groups)
    return total_cost_usd(kept)
