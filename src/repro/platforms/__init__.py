"""Platform catalogs: the paper's comparison tables and the BOM."""

from repro.platforms.catalog import (
    IOT_PROTOCOL_BANDWIDTHS_HZ,
    IQ_RADIO_CHIPS,
    IqRadioChip,
    SDR_PLATFORMS,
    SdrPlatform,
    covers_band,
    endpoint_requirements_report,
    get_platform,
    sleep_power_advantage,
    supports_protocol,
)
from repro.platforms.cost import (
    BILL_OF_MATERIALS,
    BomLine,
    cost_by_group,
    cost_without,
    total_cost_usd,
)

__all__ = [
    "BILL_OF_MATERIALS",
    "BomLine",
    "IOT_PROTOCOL_BANDWIDTHS_HZ",
    "IQ_RADIO_CHIPS",
    "IqRadioChip",
    "SDR_PLATFORMS",
    "SdrPlatform",
    "cost_by_group",
    "cost_without",
    "covers_band",
    "endpoint_requirements_report",
    "get_platform",
    "sleep_power_advantage",
    "supports_protocol",
    "total_cost_usd",
]
