"""Battery lifetime estimation.

Turns average power (from :mod:`repro.power.meter`) into the lifetimes
the paper quotes: "over 2 years on a 1000 mAh battery when transmitting
[BLE beacons] once per second", "OTA program each tinySDR node with LoRa
2100 times" on the same cell, and the 10,000x sleep-power advantage over
other SDR platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0  # spec: Julian year


@dataclass(frozen=True)
class Battery:
    """An ideal battery.

    Attributes:
        capacity_mah: rated capacity.
        voltage_v: nominal terminal voltage.
        usable_fraction: derating for cutoff voltage / self-discharge.
    """

    capacity_mah: float
    voltage_v: float = 3.7
    usable_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ConfigurationError("capacity and voltage must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError(
                f"usable fraction must be in (0, 1], got "
                f"{self.usable_fraction!r}")

    @property
    def energy_j(self) -> float:
        """Usable stored energy."""
        return (self.capacity_mah * 1e-3 * 3600.0 * self.voltage_v
                * self.usable_fraction)

    def lifetime_s(self, average_power_w: float) -> float:
        """Runtime at a constant average power.

        Raises:
            ConfigurationError: for non-positive power.
        """
        if average_power_w <= 0:
            raise ConfigurationError(
                f"average power must be positive, got {average_power_w!r}")
        return self.energy_j / average_power_w

    def lifetime_years(self, average_power_w: float) -> float:
        """Runtime in years."""
        return self.lifetime_s(average_power_w) / SECONDS_PER_YEAR

    def operations_supported(self, energy_per_operation_j: float) -> int:
        """How many fixed-energy operations the battery can fund.

        This is the paper's OTA math: 6144 mJ per LoRa firmware update ->
        2100 updates from a 1000 mAh cell.

        Raises:
            ConfigurationError: for non-positive per-operation energy.
        """
        if energy_per_operation_j <= 0:
            raise ConfigurationError(
                "energy per operation must be positive, got "
                f"{energy_per_operation_j!r}")
        return int(self.energy_j / energy_per_operation_j)


LIPO_1000MAH = Battery(capacity_mah=1000.0, voltage_v=3.7)  # paper: §6
"""The cell the paper's lifetime figures use."""
