"""Energy metering over simulated timelines.

The paper's battery-lifetime arguments all reduce to integrating power
over a duty-cycled timeline: so many milliseconds at transmit power, the
rest in 30 uW sleep.  :class:`EnergyMeter` records (state, duration)
segments and integrates them; :func:`duty_cycle_profile` builds the
classic IoT wake-transmit-sleep cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimelineSegment:
    """A constant-power interval.

    Attributes:
        label: human-readable segment name.
        power_w: battery power during the segment.
        duration_s: segment length.
    """

    label: str
    power_w: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError(
                f"power must be >= 0, got {self.power_w!r}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {self.duration_s!r}")

    @property
    def energy_j(self) -> float:
        """Energy consumed in this segment."""
        return self.power_w * self.duration_s


@dataclass
class EnergyMeter:
    """Accumulates timeline segments and reports totals."""

    segments: list[TimelineSegment] = field(default_factory=list)

    def record(self, label: str, power_w: float,
               duration_s: float) -> TimelineSegment:
        """Append one segment and return it."""
        segment = TimelineSegment(label, power_w, duration_s)
        self.segments.append(segment)
        return segment

    @property
    def total_energy_j(self) -> float:
        """Integrated energy."""
        return sum(segment.energy_j for segment in self.segments)

    @property
    def total_time_s(self) -> float:
        """Total timeline length."""
        return sum(segment.duration_s for segment in self.segments)

    @property
    def average_power_w(self) -> float:
        """Mean power over the timeline.

        Raises:
            ConfigurationError: for an empty timeline.
        """
        if self.total_time_s == 0:
            raise ConfigurationError("timeline is empty")
        return self.total_energy_j / self.total_time_s

    def by_label(self) -> dict[str, float]:
        """Energy totals grouped by segment label."""
        totals: dict[str, float] = {}
        for segment in self.segments:
            totals[segment.label] = totals.get(segment.label, 0.0) \
                + segment.energy_j
        return totals


def duty_cycle_profile(active_power_w: float, active_time_s: float,
                       sleep_power_w: float, period_s: float,
                       wakeup_power_w: float = 0.0,
                       wakeup_time_s: float = 0.0) -> EnergyMeter:
    """One period of the IoT duty cycle: wake, work, sleep.

    Raises:
        ConfigurationError: if the active phases do not fit in the period.
    """
    busy = active_time_s + wakeup_time_s
    if busy > period_s:
        raise ConfigurationError(
            f"active {busy!r}s does not fit in period {period_s!r}s")
    meter = EnergyMeter()
    if wakeup_time_s > 0:
        meter.record("wakeup", wakeup_power_w, wakeup_time_s)
    meter.record("active", active_power_w, active_time_s)
    meter.record("sleep", sleep_power_w, period_s - busy)
    return meter
