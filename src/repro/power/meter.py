"""Energy metering over simulated timelines.

The paper's battery-lifetime arguments all reduce to integrating power
over a duty-cycled timeline: so many milliseconds at transmit power, the
rest in 30 uW sleep.  :class:`EnergyMeter` records (state, duration)
segments and integrates them; :func:`duty_cycle_profile` builds the
classic IoT wake-transmit-sleep cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim import METER_SEGMENT, Timeline

METER_COMPONENT = "meter"
"""Timeline component name for metered power segments."""


@dataclass(frozen=True)
class TimelineSegment:
    """A constant-power interval.

    Attributes:
        label: human-readable segment name.
        power_w: battery power during the segment.
        duration_s: segment length.
    """

    label: str
    power_w: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError(
                f"power must be >= 0, got {self.power_w!r}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {self.duration_s!r}")

    @property
    def energy_j(self) -> float:
        """Energy consumed in this segment."""
        return self.power_w * self.duration_s


class EnergyMeter:
    """Thin consumer of a simulation timeline.

    Each recorded segment becomes a ``meter.segment`` event on the
    underlying :class:`~repro.sim.Timeline`; every total is a replayed
    view over the ledger rather than a running accumulator, so a meter
    can share a timeline with the rest of the platform model and its
    numbers stay consistent with the trace exporters.
    """

    def __init__(self, timeline: Timeline | None = None) -> None:
        self.timeline = timeline if timeline is not None else Timeline()
        self._since = self.timeline.checkpoint()

    def _segment_events(self):
        return (event for event in self.timeline.events[self._since:]
                if event.kind == METER_SEGMENT)

    @property
    def segments(self) -> list[TimelineSegment]:
        """The recorded segments, rebuilt from the ledger."""
        return [TimelineSegment(event.label, event.power_w or 0.0,
                                event.duration_s)
                for event in self._segment_events()]

    def record(self, label: str, power_w: float,
               duration_s: float) -> TimelineSegment:
        """Append one segment and return it."""
        segment = TimelineSegment(label, power_w, duration_s)
        self.timeline.record(METER_SEGMENT, METER_COMPONENT, label=label,
                             duration_s=duration_s, power_w=power_w)
        return segment

    @property
    def total_energy_j(self) -> float:
        """Integrated energy (replayed in append order)."""
        return self.timeline.energy_j(kinds={METER_SEGMENT},
                                      since=self._since)

    @property
    def total_time_s(self) -> float:
        """Total timeline length (replayed in append order)."""
        return self.timeline.time_s(kinds={METER_SEGMENT},
                                    since=self._since)

    @property
    def average_power_w(self) -> float:
        """Mean power over the timeline.

        Raises:
            ConfigurationError: for an empty timeline.
        """
        if self.total_time_s == 0:
            raise ConfigurationError("timeline is empty")
        return self.total_energy_j / self.total_time_s

    def by_label(self) -> dict[str, float]:
        """Energy totals grouped by segment label."""
        totals: dict[str, float] = {}
        for event in self._segment_events():
            totals[event.label] = totals.get(event.label, 0.0) \
                + event.energy_j
        return totals


def duty_cycle_profile(active_power_w: float, active_time_s: float,
                       sleep_power_w: float, period_s: float,
                       wakeup_power_w: float = 0.0,
                       wakeup_time_s: float = 0.0) -> EnergyMeter:
    """One period of the IoT duty cycle: wake, work, sleep.

    Raises:
        ConfigurationError: if the active phases do not fit in the period.
    """
    busy = active_time_s + wakeup_time_s
    if busy > period_s:
        raise ConfigurationError(
            f"active {busy!r}s does not fit in period {period_s!r}s")
    meter = EnergyMeter()
    if wakeup_time_s > 0:
        meter.record("wakeup", wakeup_power_w, wakeup_time_s)
    meter.record("active", active_power_w, active_time_s)
    meter.record("sleep", sleep_power_w, period_s - busy)
    return meter
