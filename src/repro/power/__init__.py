"""Power substrate: regulators, domains, PMU, metering and batteries."""

from repro.power.battery import Battery, LIPO_1000MAH, SECONDS_PER_YEAR
from repro.power.domains import (
    DOMAIN_TABLE,
    DomainSpec,
    PowerDomain,
    build_domains,
    domain_for_component,
)
from repro.power.meter import EnergyMeter, TimelineSegment, duty_cycle_profile
from repro.power.pmu import (
    PlatformState,
    PowerBreakdown,
    PowerManagementUnit,
)
from repro.power.profiles import fpga_power_w, iq_radio_tx_w
from repro.power.regulators import (
    Regulator,
    RegulatorSpec,
    SC195,
    TPS62080,
    TPS62240,
    TPS78218,
)

__all__ = [
    "Battery",
    "DOMAIN_TABLE",
    "DomainSpec",
    "EnergyMeter",
    "LIPO_1000MAH",
    "PlatformState",
    "PowerBreakdown",
    "PowerDomain",
    "PowerManagementUnit",
    "Regulator",
    "RegulatorSpec",
    "SC195",
    "SECONDS_PER_YEAR",
    "TPS62080",
    "TPS62240",
    "TPS78218",
    "TimelineSegment",
    "build_domains",
    "domain_for_component",
    "duty_cycle_profile",
    "fpga_power_w",
    "iq_radio_tx_w",
]
