"""Per-component power profiles.

Every number the PMU sums comes from here.  Datasheet figures are used
where the paper quotes them; the two free parameters (FPGA dynamic power
coefficient and board leakage) are calibrated once against the paper's
measured totals - 30 uW sleep, 231/283 mW single-tone TX at 0/14 dBm
(Fig. 9), 186 mW LoRa RX with 59 mW in the radio, 207 mW concurrent RX -
and then reused unchanged by every benchmark.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# --- MCU (MSP432P401R) ------------------------------------------------------

MCU_ACTIVE_W = 7.2e-3  # datasheet: MSP432P401R, ~4 mA active at 1.8 V
"""~4 mA at 1.8 V running the MAC and control loops."""

MCU_LPM3_W = 2.55e-6  # datasheet: MSP432P401R, LPM3 0.85 uA at 3 V
"""0.85 uA at 3 V: RTC + wakeup timer only."""

# --- I/Q radio (AT86RF215) ---------------------------------------------------

IQ_RADIO_RX_W = 0.050  # paper: Table 2 (50 mW receive)
"""Table 2: 50 mW receive."""

IQ_RADIO_TX_BASE_W = 0.122  # paper: Fig. 9 (flat low-power TX region)
"""Measured flat region of Fig. 9: DC draw is constant at low RF power."""

IQ_RADIO_TX_KNEE_DBM = 0.0  # paper: Fig. 9 (knee of the TX power curve)
IQ_RADIO_TX_SLOPE_W_PER_RF_W = 2.37  # paper: Fig. 9 (+14 dBm calibration)
"""Above the knee the DC draw rises with RF output; calibrated so +14 dBm
costs 179 mW, the radio share the paper reports for LoRa TX."""

IQ_RADIO_SLEEP_W = 30e-9  # datasheet: AT86RF215, DEEP_SLEEP current


def iq_radio_tx_w(output_power_dbm: float) -> float:
    """AT86RF215 DC draw at a given RF output (flat-then-rising, Fig. 9)."""
    if not -14.0 <= output_power_dbm <= 14.0:
        raise ConfigurationError(
            f"radio output must be -14..14 dBm, got {output_power_dbm!r}")
    rf_w = 10.0 ** (output_power_dbm / 10.0) / 1e3
    knee_w = 10.0 ** (IQ_RADIO_TX_KNEE_DBM / 10.0) / 1e3
    if rf_w <= knee_w:
        return IQ_RADIO_TX_BASE_W
    return IQ_RADIO_TX_BASE_W + (rf_w - knee_w) * IQ_RADIO_TX_SLOPE_W_PER_RF_W


# --- Backbone radio (SX1276) -------------------------------------------------

# datasheet: SX1276 supply-current table (RX, +14 dBm TX, sleep).
BACKBONE_RX_W = 0.0396
BACKBONE_TX_14DBM_W = 0.120
BACKBONE_SLEEP_W = 0.66e-6

# --- FPGA (LFE5U-25F) ---------------------------------------------------------

FPGA_STATIC_W = 0.020  # datasheet: Lattice ECP5, static core leakage
FPGA_DYNAMIC_W_PER_LUT_HZ = 8.3e-13  # paper: Fig. 9 (calibrated)
"""Calibrated against Fig. 9 (TX design at 64 MHz) and the LoRa RX total."""

FPGA_OFF_W = 0.0  # paper: section 3.2.2 (power-gated domain, fully off)


def fpga_power_w(luts: int, effective_clock_hz: float) -> float:
    """FPGA draw: static leakage plus activity-scaled dynamic power.

    Raises:
        ConfigurationError: for negative LUT counts or clocks.
    """
    if luts < 0:
        raise ConfigurationError(f"LUT count must be >= 0, got {luts}")
    if effective_clock_hz < 0:
        raise ConfigurationError(
            f"clock must be >= 0, got {effective_clock_hz!r}")
    return FPGA_STATIC_W + FPGA_DYNAMIC_W_PER_LUT_HZ * luts * effective_clock_hz


FPGA_TX_CLOCK_HZ = 52e6  # paper: Fig. 9 (TX calibration; 64 MHz derated)
"""Effective toggle rate of modulator designs: the 64 MHz serializer
clock discounted by idle cycles."""

FPGA_RX_CLOCK_HZ = 32e6  # paper: LoRa RX total (calibrated toggle rate)
"""Demodulator designs run the sample pipeline and burst FFTs near 32 MHz."""

# --- Memories -----------------------------------------------------------------

FLASH_ACTIVE_W = 0.015  # datasheet: serial NOR flash, active read/program
FLASH_STANDBY_W = 0.2e-6 * 1.8  # datasheet: serial NOR flash, standby
MICROSD_ACTIVE_W = 0.060  # spec: typical microSD active draw

# --- Board --------------------------------------------------------------------

BOARD_LEAKAGE_W = 20.5e-6  # paper: 30 uW measured sleep minus datasheet sum
"""Residual board draw in sleep (level shifters, pull-ups, battery
monitoring) - the difference between the datasheet sum (~9 uW) and the
paper's measured 30 uW system sleep power."""
