"""Voltage regulator models (paper section 3.3).

Three regulator types cover tinySDR's seven power domains:

* **TPS78218** - a low-quiescent-current linear regulator for the
  always-on MCU domain (V1).  Linear regulators waste headroom voltage as
  heat but idle at sub-microamp currents.
* **TPS62240** - a high-efficiency buck converter with 0.1 uA shutdown
  current for the gateable domains (V2, V3, V4, V7) and, in its
  higher-current **TPS62080** variant, the 900 MHz PA domain (V6).
* **SC195** - an adjustable 1.8-3.6 V buck for the shared radio/FPGA-I/O
  domain (V5) whose voltage is raised only when a radio needs more output
  power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerError


@dataclass(frozen=True)
class RegulatorSpec:
    """Datasheet constants of one regulator.

    Attributes:
        name: part number.
        topology: ``"linear"`` or ``"buck"``.
        output_v: nominal output voltage (adjustable parts store the
            default; the instance can retarget within limits).
        max_current_a: rated output current.
        quiescent_a: no-load ground current while enabled.
        shutdown_a: current when disabled.
        efficiency: conversion efficiency for buck converters (ignored
            for linear parts, whose efficiency is Vout/Vin).
        adjustable_range_v: (min, max) output for adjustable parts.
    """

    name: str
    topology: str
    output_v: float
    max_current_a: float
    quiescent_a: float
    shutdown_a: float
    efficiency: float = 0.90
    adjustable_range_v: tuple[float, float] | None = None


# datasheet: TI TPS78218 (LDO regulator)
TPS78218 = RegulatorSpec(
    name="TPS78218", topology="linear", output_v=1.8,
    max_current_a=0.150, quiescent_a=0.45e-6, shutdown_a=0.05e-6)

# datasheet: TI TPS62240 (step-down converter)
TPS62240 = RegulatorSpec(
    name="TPS62240", topology="buck", output_v=1.8,
    max_current_a=0.300, quiescent_a=22e-6, shutdown_a=0.1e-6,
    efficiency=0.90)

# datasheet: TI TPS62080 (step-down converter)
TPS62080 = RegulatorSpec(
    name="TPS62080", topology="buck", output_v=3.5,
    max_current_a=1.200, quiescent_a=12e-6, shutdown_a=0.25e-6,
    efficiency=0.88)

# datasheet: Semtech SC195 (adjustable buck regulator)
SC195 = RegulatorSpec(
    name="SC195", topology="buck", output_v=1.8,
    max_current_a=0.500, quiescent_a=28e-6, shutdown_a=0.1e-6,
    efficiency=0.90, adjustable_range_v=(1.8, 3.6))


class Regulator:
    """One regulator instance with enable control and load accounting."""

    def __init__(self, spec: RegulatorSpec, input_v: float = 3.7) -> None:
        if input_v <= 0:
            raise ConfigurationError(
                f"input voltage must be positive, got {input_v!r}")
        self.spec = spec
        self.input_v = input_v
        self.output_v = spec.output_v
        self.enabled = False

    def enable(self) -> None:
        """Turn the regulator on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the regulator off (shutdown current only)."""
        self.enabled = False

    def set_output_voltage(self, voltage_v: float) -> None:
        """Retarget an adjustable regulator (the SC195 on domain V5).

        Raises:
            PowerError: for fixed parts or out-of-range targets.
        """
        if self.spec.adjustable_range_v is None:
            raise PowerError(f"{self.spec.name} output is not adjustable")
        low, high = self.spec.adjustable_range_v
        if not low <= voltage_v <= high:
            raise PowerError(
                f"{self.spec.name} output must be {low}..{high} V, "
                f"got {voltage_v!r}")
        self.output_v = voltage_v

    def input_power_w(self, load_w: float) -> float:
        """Battery-side power draw for a given load power.

        Raises:
            PowerError: when loaded while disabled or beyond the current
                rating.
        """
        if load_w < 0:
            raise ConfigurationError(f"load must be >= 0, got {load_w!r}")
        if not self.enabled:
            if load_w > 0:
                raise PowerError(
                    f"{self.spec.name} is disabled but asked to supply "
                    f"{load_w!r} W")
            return self.spec.shutdown_a * self.input_v
        if self.output_v > 0 and load_w / self.output_v > self.spec.max_current_a:
            raise PowerError(
                f"{self.spec.name} load {load_w / self.output_v:.3f} A exceeds "
                f"rating {self.spec.max_current_a} A")
        overhead = self.spec.quiescent_a * self.input_v
        if self.spec.topology == "linear":
            # A linear regulator draws the load current from the input rail.
            if self.output_v <= 0:
                raise PowerError(f"{self.spec.name} output voltage is zero")
            return load_w * self.input_v / self.output_v + overhead
        return load_w / self.spec.efficiency + overhead
