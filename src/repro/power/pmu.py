"""The power management unit: platform states to battery power.

The MCU toggles regulators and component modes to move the platform
between operating states (paper sections 3.3 and 5.1).  The PMU model
composes the domain/regulator stack with the component profiles and
answers the question every power benchmark asks: *what does the battery
see in this state?*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerError
from repro.fpga.resources import (
    ble_tx_design,
    concurrent_rx_design,
    lora_rx_design,
    lora_tx_design,
)
from repro.power import profiles
from repro.power.domains import PowerDomain, build_domains

FPGA_BOOT_CLOCK_HZ = 62e6  # datasheet: Lattice ECP5 sysCONFIG master clock


class PlatformState(enum.Enum):
    """Top-level operating states of the tinySDR platform."""

    SLEEP = "sleep"
    MCU_ONLY = "mcu_only"
    IQ_TX = "iq_tx"
    IQ_RX = "iq_rx"
    CONCURRENT_RX = "concurrent_rx"
    BACKBONE_RX = "backbone_rx"
    BACKBONE_TX = "backbone_tx"
    FPGA_BOOT = "fpga_boot"


@dataclass(frozen=True)
class PowerBreakdown:
    """Battery-side power split by domain, plus the total.

    Attributes:
        state: the platform state measured.
        total_w: battery power including board leakage.
        by_domain_w: per-domain battery draw.
    """

    state: PlatformState
    total_w: float
    by_domain_w: dict[str, float]


class PowerManagementUnit:
    """Domain/regulator stack driven by platform states.

    Args:
        battery_v: battery rail voltage.
    """

    def __init__(self, battery_v: float = 3.7) -> None:
        self.battery_v = battery_v
        self.domains: dict[str, PowerDomain] = build_domains(battery_v)
        self.state = PlatformState.SLEEP
        self._apply_sleep()

    # -- state programming -----------------------------------------------

    def _all_off_except_mcu(self) -> None:
        for name, domain in self.domains.items():
            if name == "V1":
                continue
            if domain.is_on:
                domain.turn_off()

    def _apply_sleep(self) -> None:
        self._all_off_except_mcu()
        self.domains["V1"].set_load("mcu", profiles.MCU_LPM3_W)

    def _power_domain(self, name: str, loads: dict[str, float]) -> None:
        domain = self.domains[name]
        domain.turn_on()
        for component, power in loads.items():
            domain.set_load(component, power)

    def enter_state(self, state: PlatformState,
                    tx_power_dbm: float = 0.0,
                    fpga_luts: int | None = None,
                    spreading_factor: int = 8,
                    concurrent_sfs: tuple[int, ...] = (8, 8)) -> None:
        """Reconfigure every domain for a platform state.

        Args:
            state: target state.
            tx_power_dbm: radio RF output power for transmit states.
            fpga_luts: override the active design's LUT count (defaults to
                the case-study design for the state).
            spreading_factor: LoRa SF selecting the RX/TX design size.
            concurrent_sfs: branch SFs for the concurrent receiver state.

        Raises:
            ConfigurationError: for invalid parameters.
            PowerError: if a regulator would be overloaded.
        """
        self.state = state
        if state == PlatformState.SLEEP:
            self._apply_sleep()
            return

        self._all_off_except_mcu()
        self.domains["V1"].set_load("mcu", profiles.MCU_ACTIVE_W)

        if state == PlatformState.MCU_ONLY:
            return

        if state in (PlatformState.IQ_TX, PlatformState.IQ_RX,
                     PlatformState.CONCURRENT_RX, PlatformState.FPGA_BOOT):
            if fpga_luts is None:
                fpga_luts = self._default_design_luts(
                    state, spreading_factor, concurrent_sfs)
            clock = (profiles.FPGA_TX_CLOCK_HZ
                     if state == PlatformState.IQ_TX
                     else profiles.FPGA_RX_CLOCK_HZ)
            if state == PlatformState.FPGA_BOOT:
                clock = FPGA_BOOT_CLOCK_HZ
            fpga_w = profiles.fpga_power_w(fpga_luts, clock)
            self._power_domain("V2", {"fpga_core": fpga_w})
            self._power_domain(
                "V3", {"fpga_aux": 0.002,
                       "flash_memory": (profiles.FLASH_ACTIVE_W
                                        if state == PlatformState.FPGA_BOOT
                                        else profiles.FLASH_STANDBY_W)})
            self._power_domain("V4", {"fpga_pll": 0.003})

        if state == PlatformState.IQ_TX:
            self._power_domain(
                "V5", {"iq_radio": profiles.iq_radio_tx_w(tx_power_dbm),
                       "fpga_io": 0.001})
        elif state in (PlatformState.IQ_RX, PlatformState.CONCURRENT_RX):
            self._power_domain(
                "V5", {"iq_radio": profiles.IQ_RADIO_RX_W, "fpga_io": 0.001})
        elif state == PlatformState.BACKBONE_RX:
            self._power_domain(
                "V5", {"backbone_radio": profiles.BACKBONE_RX_W})
        elif state == PlatformState.BACKBONE_TX:
            self._power_domain(
                "V5", {"backbone_radio": profiles.BACKBONE_TX_14DBM_W})

    @staticmethod
    def _default_design_luts(state: PlatformState, spreading_factor: int,
                             concurrent_sfs: tuple[int, ...]) -> int:
        if state == PlatformState.IQ_TX:
            return lora_tx_design(spreading_factor).luts
        if state == PlatformState.IQ_RX:
            return lora_rx_design(spreading_factor).luts
        if state == PlatformState.CONCURRENT_RX:
            return concurrent_rx_design(list(concurrent_sfs)).luts
        if state == PlatformState.FPGA_BOOT:
            return 0
        raise ConfigurationError(f"no default design for state {state}")

    # -- measurement --------------------------------------------------------

    def battery_power_w(self) -> float:
        """Total battery draw in the current state."""
        total = sum(domain.battery_power_w()
                    for domain in self.domains.values())
        return total + profiles.BOARD_LEAKAGE_W

    def breakdown(self) -> PowerBreakdown:
        """Battery draw split per domain."""
        by_domain = {name: domain.battery_power_w()
                     for name, domain in self.domains.items()}
        return PowerBreakdown(state=self.state,
                              total_w=self.battery_power_w(),
                              by_domain_w=by_domain)

    def ble_tx_power_w(self, tx_power_dbm: float = 0.0) -> float:
        """Convenience: battery power transmitting BLE beacons."""
        self.enter_state(PlatformState.IQ_TX, tx_power_dbm=tx_power_dbm,
                         fpga_luts=ble_tx_design().luts)
        return self.battery_power_w()
