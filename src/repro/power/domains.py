"""Power domains V1-V7 (paper Table 3).

The grouping balances control granularity against part count: the MCU
gets its own always-on linear domain (V1); the FPGA core/aux rails,
memories and the 2.4 GHz PA share gateable buck domains (V2, V3, V4, V7);
the 900 MHz PA gets the higher-current TPS62080 (V6); and the radios plus
FPGA I/O bank share the adjustable SC195 domain (V5), normally 1.8 V and
raised only when a radio needs maximum output power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerError
from repro.power.regulators import (
    Regulator,
    RegulatorSpec,
    SC195,
    TPS62080,
    TPS62240,
    TPS78218,
)


@dataclass(frozen=True)
class DomainSpec:
    """One power domain: its regulator and the components it feeds."""

    name: str
    regulator_spec: RegulatorSpec
    voltage_v: float
    components: tuple[str, ...]
    always_on: bool = False


# paper: Fig. 5 (power tree: six switchable supply domains).
DOMAIN_TABLE: tuple[DomainSpec, ...] = (
    DomainSpec("V1", TPS78218, 1.8, ("mcu",), always_on=True),
    DomainSpec("V2", TPS62240, 1.1, ("fpga_core",)),
    DomainSpec("V3", TPS62240, 1.8,
               ("fpga_aux", "flash_memory", "pa_2g4_control")),
    DomainSpec("V4", TPS62240, 2.5, ("fpga_pll",)),
    DomainSpec("V5", SC195, 1.8,
               ("iq_radio", "backbone_radio", "fpga_io")),
    DomainSpec("V6", TPS62080, 3.5, ("pa_900",)),
    DomainSpec("V7", TPS62240, 3.0, ("pa_2g4", "microsd")),
)
"""Paper Table 3, one entry per domain."""


@dataclass
class PowerDomain:
    """Runtime state of one domain: regulator plus per-component loads."""

    spec: DomainSpec
    regulator: Regulator
    loads_w: dict[str, float] = field(default_factory=dict)

    @property
    def is_on(self) -> bool:
        """Whether the domain's regulator is enabled."""
        return self.regulator.enabled

    def turn_on(self) -> None:
        """Enable the domain."""
        self.regulator.enable()

    def turn_off(self) -> None:
        """Disable the domain.

        Raises:
            PowerError: for the always-on MCU domain.
        """
        if self.spec.always_on:
            raise PowerError(
                f"domain {self.spec.name} powers the MCU and cannot be "
                "turned off")
        self.regulator.disable()
        self.loads_w.clear()

    def set_load(self, component: str, power_w: float) -> None:
        """Set a component's load on this domain.

        Raises:
            PowerError: for unknown components or loads on an off domain.
        """
        if component not in self.spec.components:
            raise PowerError(
                f"component {component!r} is not on domain {self.spec.name}")
        if power_w > 0 and not self.is_on:
            raise PowerError(
                f"domain {self.spec.name} is off; cannot power {component!r}")
        self.loads_w[component] = power_w

    def battery_power_w(self) -> float:
        """Battery-side draw of this domain (loads through the regulator)."""
        return self.regulator.input_power_w(sum(self.loads_w.values()))


def build_domains(battery_v: float = 3.7) -> dict[str, PowerDomain]:
    """Instantiate all seven domains against a battery rail."""
    domains: dict[str, PowerDomain] = {}
    for spec in DOMAIN_TABLE:
        regulator = Regulator(spec.regulator_spec, input_v=battery_v)
        regulator.output_v = spec.voltage_v
        domain = PowerDomain(spec=spec, regulator=regulator)
        if spec.always_on:
            domain.turn_on()
        domains[spec.name] = domain
    return domains


def domain_for_component(component: str) -> str:
    """Look up which domain feeds a component.

    Raises:
        PowerError: for unknown component names.
    """
    for spec in DOMAIN_TABLE:
        if component in spec.components:
            return spec.name
    raise PowerError(f"no power domain feeds component {component!r}")
