"""LoRaWAN device MAC: ABP and OTAA activation, uplink/downlink flow.

Paper section 4.1: "TTN uses two methods for device association;
Over-the-air activation (OTAA) and activation by personalization (ABP)...
Our platform can support both."  This module implements the device-side
state machine for both methods plus enough of the network side (join
processing, counter tracking) to run closed-loop tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, MicError, ProtocolError
from repro.protocols.lorawan.aes import decrypt_block, encrypt_block
from repro.protocols.lorawan.cmac import truncated_cmac
from repro.protocols.lorawan.frames import (
    DataFrame,
    MType,
    SessionKeys,
    deserialize,
    serialize,
)

JOIN_REQUEST_BYTES = 1 + 8 + 8 + 2 + 4


@dataclass(frozen=True)
class DeviceIdentity:
    """Provisioned identity for OTAA.

    Attributes:
        dev_eui: 64-bit device EUI.
        app_eui: 64-bit application (join) EUI.
        app_key: root AES-128 key.
    """

    dev_eui: int
    app_eui: int
    app_key: bytes

    def __post_init__(self) -> None:
        if len(self.app_key) != 16:
            raise ConfigurationError("AppKey must be 16 bytes")
        if not 0 <= self.dev_eui < (1 << 64):
            raise ConfigurationError("DevEUI must be 64-bit")
        if not 0 <= self.app_eui < (1 << 64):
            raise ConfigurationError("AppEUI must be 64-bit")


def build_join_request(identity: DeviceIdentity, dev_nonce: int) -> bytes:
    """Serialize and MIC a join-request.

    Raises:
        ConfigurationError: for an out-of-range DevNonce.
    """
    if not 0 <= dev_nonce <= 0xFFFF:
        raise ConfigurationError(f"DevNonce must be 16-bit, got {dev_nonce}")
    mhdr = bytes((MType.JOIN_REQUEST << 5,))
    body = (mhdr + identity.app_eui.to_bytes(8, "little")
            + identity.dev_eui.to_bytes(8, "little")
            + dev_nonce.to_bytes(2, "little"))
    mic = truncated_cmac(identity.app_key, body)
    return body + mic


def derive_session_keys(app_key: bytes, app_nonce: int, net_id: int,
                        dev_nonce: int) -> SessionKeys:
    """LoRaWAN 1.0 session key derivation.

    ``NwkSKey = AES(AppKey, 0x01 | AppNonce | NetID | DevNonce | pad)``
    and the same with ``0x02`` for AppSKey.
    """
    suffix = (app_nonce.to_bytes(3, "little") + net_id.to_bytes(3, "little")
              + dev_nonce.to_bytes(2, "little") + bytes(7))
    nwk = encrypt_block(app_key, bytes((0x01,)) + suffix)
    app = encrypt_block(app_key, bytes((0x02,)) + suffix)
    return SessionKeys(nwk_skey=nwk, app_skey=app)


def build_join_accept(app_key: bytes, app_nonce: int, net_id: int,
                      dev_addr: int) -> bytes:
    """Network-side join-accept (encrypted with AES *decrypt*, per spec)."""
    mhdr = bytes((MType.JOIN_ACCEPT << 5,))
    body = (app_nonce.to_bytes(3, "little") + net_id.to_bytes(3, "little")
            + dev_addr.to_bytes(4, "little") + bytes((0x00, 0x01)))
    mic = truncated_cmac(app_key, mhdr + body)
    padded = body + mic
    if len(padded) % 16:
        raise ProtocolError(
            f"join-accept body+MIC must be block aligned, got {len(padded)}")
    encrypted = b"".join(decrypt_block(app_key, padded[i:i + 16])
                         for i in range(0, len(padded), 16))
    return mhdr + encrypted


def parse_join_accept(app_key: bytes,
                      message: bytes) -> tuple[int, int, int]:
    """Device-side join-accept processing.

    Returns:
        ``(app_nonce, net_id, dev_addr)``.

    Raises:
        MicError: on MIC mismatch.
        ProtocolError: for malformed messages.
    """
    if len(message) < 17 or (len(message) - 1) % 16:
        raise ProtocolError(
            f"join-accept of {len(message)} bytes is malformed")
    mhdr, encrypted = message[:1], message[1:]
    decrypted = b"".join(encrypt_block(app_key, encrypted[i:i + 16])
                         for i in range(0, len(encrypted), 16))
    body, mic = decrypted[:-4], decrypted[-4:]
    expected = truncated_cmac(app_key, mhdr + body)
    if expected != mic:
        raise MicError("join-accept MIC mismatch")
    app_nonce = int.from_bytes(body[0:3], "little")
    net_id = int.from_bytes(body[3:6], "little")
    dev_addr = int.from_bytes(body[6:10], "little")
    return app_nonce, net_id, dev_addr


@dataclass
class LoRaWanDevice:
    """Device-side MAC state machine.

    Construct either pre-activated (ABP: pass ``session`` and
    ``dev_addr``) or with an OTAA ``identity`` and run the join flow.
    """

    identity: DeviceIdentity | None = None
    session: SessionKeys | None = None
    dev_addr: int | None = None
    fcnt_up: int = 0
    fcnt_down: int = 0
    _last_dev_nonce: int | None = field(default=None, repr=False)

    @property
    def activated(self) -> bool:
        """Whether the device holds a session (joined or personalized)."""
        return self.session is not None and self.dev_addr is not None

    def start_join(self, dev_nonce: int) -> bytes:
        """OTAA step 1: emit a join-request.

        Raises:
            ProtocolError: when no OTAA identity is provisioned.
        """
        if self.identity is None:
            raise ProtocolError("device has no OTAA identity")
        self._last_dev_nonce = dev_nonce
        return build_join_request(self.identity, dev_nonce)

    def complete_join(self, join_accept: bytes) -> None:
        """OTAA step 2: process the join-accept and derive keys.

        Raises:
            ProtocolError: out of order (no join in flight).
        """
        if self.identity is None or self._last_dev_nonce is None:
            raise ProtocolError("no join-request in flight")
        app_nonce, net_id, dev_addr = parse_join_accept(
            self.identity.app_key, join_accept)
        self.session = derive_session_keys(
            self.identity.app_key, app_nonce, net_id, self._last_dev_nonce)
        self.dev_addr = dev_addr
        self.fcnt_up = 0
        self.fcnt_down = 0

    def uplink(self, payload: bytes, fport: int = 1,
               confirmed: bool = False) -> bytes:
        """Build the next uplink PHYPayload, advancing the frame counter.

        Raises:
            ProtocolError: when the device is not activated.
        """
        if not self.activated:
            raise ProtocolError("device is not activated")
        frame = DataFrame(
            mtype=MType.CONFIRMED_UP if confirmed else MType.UNCONFIRMED_UP,
            dev_addr=self.dev_addr, fcnt=self.fcnt_up & 0xFFFF,
            payload=payload, fport=fport)
        encoded = serialize(frame, self.session)
        self.fcnt_up += 1
        return encoded

    def receive_downlink(self, phy_payload: bytes) -> DataFrame:
        """Verify and decrypt a downlink; enforces counter monotonicity.

        Raises:
            ProtocolError: for stale frame counters (replay protection).
            MicError: on MIC mismatch.
        """
        if not self.activated:
            raise ProtocolError("device is not activated")
        frame = deserialize(phy_payload, self.session)
        if frame.dev_addr != self.dev_addr:
            raise ProtocolError(
                f"downlink for {frame.dev_addr:#x}, we are "
                f"{self.dev_addr:#x}")
        if frame.fcnt < self.fcnt_down:
            raise ProtocolError(
                f"replayed downlink counter {frame.fcnt} < {self.fcnt_down}")
        self.fcnt_down = frame.fcnt + 1
        return frame


@dataclass
class NetworkServer:
    """Minimal network side: join processing and uplink verification."""

    net_id: int = 0x000013
    app_keys: dict[int, bytes] = field(default_factory=dict)
    sessions: dict[int, SessionKeys] = field(default_factory=dict)
    next_dev_addr: int = 0x26011000  # spec: TTN-style DevAddr block
    app_nonce: int = 0x100

    def register(self, identity: DeviceIdentity) -> None:
        """Provision a device's root key."""
        self.app_keys[identity.dev_eui] = identity.app_key

    def handle_join_request(self, request: bytes) -> bytes:
        """Verify a join-request and answer with a join-accept.

        Raises:
            ProtocolError: for unknown devices or malformed requests.
            MicError: on MIC mismatch.
        """
        if len(request) != JOIN_REQUEST_BYTES:
            raise ProtocolError(
                f"join-request must be {JOIN_REQUEST_BYTES} bytes, got "
                f"{len(request)}")
        body, mic = request[:-4], request[-4:]
        dev_eui = int.from_bytes(body[9:17], "little")
        dev_nonce = int.from_bytes(body[17:19], "little")
        app_key = self.app_keys.get(dev_eui)
        if app_key is None:
            raise ProtocolError(f"unknown DevEUI {dev_eui:#x}")
        if truncated_cmac(app_key, body) != mic:
            raise MicError("join-request MIC mismatch")
        dev_addr = self.next_dev_addr
        self.next_dev_addr += 1
        self.app_nonce += 1
        self.sessions[dev_addr] = derive_session_keys(
            app_key, self.app_nonce, self.net_id, dev_nonce)
        return build_join_accept(app_key, self.app_nonce, self.net_id,
                                 dev_addr)

    def handle_uplink(self, phy_payload: bytes) -> DataFrame:
        """Verify and decrypt an uplink from any of our sessions.

        Raises:
            ProtocolError: for unknown device addresses.
        """
        if len(phy_payload) < 12:
            raise ProtocolError("uplink too short")
        dev_addr = int.from_bytes(phy_payload[1:5], "little")
        session = self.sessions.get(dev_addr)
        if session is None:
            raise ProtocolError(f"no session for DevAddr {dev_addr:#x}")
        return deserialize(phy_payload, session)

    def personalize(self, dev_addr: int, session: SessionKeys) -> None:
        """ABP: install a pre-shared session."""
        self.sessions[dev_addr] = session
