"""AES-128 block cipher, implemented from scratch.

LoRaWAN's security primitives - frame MICs (AES-CMAC) and payload
encryption (AES-CTR-style) - are all built on the AES-128 block
operation.  The paper's MCU MAC implementation uses the same primitives
via the TTN Arduino library; here the cipher is written out in full
(key expansion, SubBytes/ShiftRows/MixColumns/AddRoundKey and their
inverses) so the LoRaWAN stack has no external dependencies.

Verified against FIPS-197 test vectors in the test suite.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

BLOCK_BYTES = 16
KEY_BYTES = 16
NUM_ROUNDS = 10


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box from GF(2^8) inversion plus affine map."""
    sbox = [0] * 256
    inverse = [0] * 256
    p = q = 1
    # Iterate multiplicative generator 3 to enumerate inverses.
    while True:
        # p *= 3 in GF(2^8)
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        # q /= 3 (multiply by inverse of 3)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        value = (q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3)
                 ^ _rotl8(q, 4) ^ 0x63)
        sbox[p] = value
        if p == 1:
            break
    sbox[0] = 0x63
    for index, value in enumerate(sbox):
        inverse[value] = index
    return sbox, inverse


def _rotl8(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (8 - shift))) & 0xFF


_SBOX, _INV_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes.

    Raises:
        ConfigurationError: for keys that are not 16 bytes.
    """
    if len(key) != KEY_BYTES:
        raise ConfigurationError(
            f"AES-128 key must be {KEY_BYTES} bytes, got {len(key)}")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for round_index in range(NUM_ROUNDS):
        previous = words[-1]
        rotated = previous[1:] + previous[:1]
        substituted = [_SBOX[b] for b in rotated]
        substituted[0] ^= _RCON[round_index]
        base = words[-4]
        new_word = [substituted[i] ^ base[i] for i in range(4)]
        words.append(new_word)
        for _ in range(3):
            base = words[-4]
            previous = words[-1]
            words.append([previous[i] ^ base[i] for i in range(4)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(NUM_ROUNDS + 1)]


def _add_round_key(state: list[int], round_key: list[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: list[int], box: list[int]) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: list[int]) -> None:
    # State is column-major: byte (row, col) lives at col*4 + row.
    for row in range(1, 4):
        values = [state[col * 4 + row] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            state[col * 4 + row] = values[col]


def _inv_shift_rows(state: list[int]) -> None:
    for row in range(1, 4):
        values = [state[col * 4 + row] for col in range(4)]
        values = values[-row:] + values[:-row]
        for col in range(4):
            state[col * 4 + row] = values[col]


def _mix_columns(state: list[int]) -> None:
    for col in range(4):
        a = state[col * 4:col * 4 + 4]
        state[col * 4 + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[col * 4 + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[col * 4 + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[col * 4 + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: list[int]) -> None:
    for col in range(4):
        a = state[col * 4:col * 4 + 4]
        state[col * 4 + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                              ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
        state[col * 4 + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                              ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
        state[col * 4 + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                              ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
        state[col * 4 + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                              ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128.

    Raises:
        ConfigurationError: for wrong key/block sizes.
    """
    if len(plaintext) != BLOCK_BYTES:
        raise ConfigurationError(
            f"block must be {BLOCK_BYTES} bytes, got {len(plaintext)}")
    round_keys = expand_key(key)
    state = list(plaintext)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, NUM_ROUNDS):
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[NUM_ROUNDS])
    return bytes(state)


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128.

    LoRaWAN end devices use this for join-accept messages (which the
    network encrypts with the *decrypt* primitive so constrained devices
    only need the encrypt path; we provide both).

    Raises:
        ConfigurationError: for wrong key/block sizes.
    """
    if len(ciphertext) != BLOCK_BYTES:
        raise ConfigurationError(
            f"block must be {BLOCK_BYTES} bytes, got {len(ciphertext)}")
    round_keys = expand_key(key)
    state = list(ciphertext)
    _add_round_key(state, round_keys[NUM_ROUNDS])
    for round_index in range(NUM_ROUNDS - 1, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[round_index])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)
