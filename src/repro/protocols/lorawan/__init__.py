"""LoRaWAN 1.0 MAC: AES/CMAC primitives, frame codec, ABP/OTAA flows."""

from repro.protocols.lorawan.adr import AdrState, fixed_rate_cost, simulate_adr
from repro.protocols.lorawan.aes import decrypt_block, encrypt_block, expand_key
from repro.protocols.lorawan.cmac import aes_cmac, truncated_cmac
from repro.protocols.lorawan.channels import (
    Channel,
    ChannelHopper,
    ChannelPlan,
    DutyCycleLedger,
    eu868_plan,
    us915_plan,
)
from repro.protocols.lorawan.frames import (
    DataFrame,
    MType,
    SessionKeys,
    compute_mic,
    deserialize,
    encrypt_payload,
    serialize,
)
from repro.protocols.lorawan.timing import (
    ReceiveWindow,
    class_a_windows,
    check_platform_meets_windows,
    confirmed_uplink_exchange,
)
from repro.protocols.lorawan.mac import (
    DeviceIdentity,
    LoRaWanDevice,
    NetworkServer,
    build_join_accept,
    build_join_request,
    derive_session_keys,
    parse_join_accept,
)

__all__ = [
    "AdrState",
    "Channel",
    "ChannelHopper",
    "ChannelPlan",
    "DataFrame",
    "DutyCycleLedger",
    "ReceiveWindow",
    "check_platform_meets_windows",
    "class_a_windows",
    "confirmed_uplink_exchange",
    "eu868_plan",
    "fixed_rate_cost",
    "simulate_adr",
    "us915_plan",
    "DeviceIdentity",
    "LoRaWanDevice",
    "MType",
    "NetworkServer",
    "SessionKeys",
    "aes_cmac",
    "build_join_accept",
    "build_join_request",
    "compute_mic",
    "decrypt_block",
    "derive_session_keys",
    "deserialize",
    "encrypt_block",
    "encrypt_payload",
    "expand_key",
    "parse_join_accept",
    "serialize",
    "truncated_cmac",
]
