"""LoRaWAN Class A receive-window timing against the platform's latencies.

A Class A device opens RX1 exactly 1 s after its uplink ends (RX2 at
2 s).  Whether a platform can catch the downlink depends on its TX->RX
turnaround - which is why paper Table 4 measures it: "it takes 45 us
... to switch from TX to RX mode ... this is sufficient to meet the
timing requirements of IoT packet ACKs and MAC protocols."

This module computes the window schedule for an uplink, checks it
against the platform timing model, and simulates a confirmed-uplink
exchange where the downlink ACK must land inside RX1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timing import platform_timings
from repro.errors import ConfigurationError, ProtocolError
from repro.phy.lora.params import LoRaParams

RX1_DELAY_S = 1.0
RX2_DELAY_S = 2.0
RX2_PARAMS = LoRaParams(spreading_factor=12, bandwidth_hz=125e3)
"""EU868 RX2 default: SF12/125 kHz (869.525 MHz)."""

PREAMBLE_DETECT_SYMBOLS = 5
"""The receiver must be listening for at least this many preamble
symbols to detect a downlink."""


@dataclass(frozen=True)
class ReceiveWindow:
    """One receive window relative to the uplink's end-of-transmission.

    Attributes:
        name: ``"RX1"`` or ``"RX2"``.
        opens_at_s: window start after TX end.
        params: LoRa configuration the window listens with.
        minimum_open_s: how long the radio must listen to catch a
            downlink preamble.
    """

    name: str
    opens_at_s: float
    params: LoRaParams

    @property
    def minimum_open_s(self) -> float:
        """Listen time needed to detect a preamble."""
        return PREAMBLE_DETECT_SYMBOLS * self.params.symbol_duration_s


def class_a_windows(uplink_params: LoRaParams,
                    rx1_offset: int = 0) -> tuple[ReceiveWindow,
                                                  ReceiveWindow]:
    """The two windows following an uplink.

    RX1 uses the uplink data rate shifted by the network's RX1 offset
    (0 = same); RX2 uses the fixed regional default.

    Raises:
        ConfigurationError: for offsets outside 0..5.
    """
    if not 0 <= rx1_offset <= 5:
        raise ConfigurationError(
            f"RX1 DR offset must be 0..5, got {rx1_offset}")
    rx1_sf = min(uplink_params.spreading_factor + rx1_offset, 12)
    rx1_params = LoRaParams(rx1_sf, uplink_params.bandwidth_hz)
    return (ReceiveWindow("RX1", RX1_DELAY_S, rx1_params),
            ReceiveWindow("RX2", RX2_DELAY_S, RX2_PARAMS))


@dataclass(frozen=True)
class WindowFeasibility:
    """Whether the platform makes a window, and with what margin."""

    window: ReceiveWindow
    turnaround_s: float
    margin_s: float

    @property
    def feasible(self) -> bool:
        """True when the radio is listening before the window opens."""
        return self.margin_s > 0.0


def check_platform_meets_windows(uplink_params: LoRaParams
                                 ) -> list[WindowFeasibility]:
    """Check both Class A windows against the Table 4 turnaround."""
    timings = platform_timings()
    turnaround = timings.tx_to_rx_s
    results = []
    for window in class_a_windows(uplink_params):
        margin = window.opens_at_s - turnaround
        results.append(WindowFeasibility(
            window=window, turnaround_s=turnaround, margin_s=margin))
    return results


def confirmed_uplink_exchange(uplink_params: LoRaParams,
                              uplink_bytes: int,
                              downlink_bytes: int,
                              network_processing_s: float = 0.3
                              ) -> dict[str, float]:
    """Timeline of a confirmed uplink and its RX1 ACK.

    Returns the event times (relative to uplink start) and verifies the
    ACK transmission fits inside RX1's schedule.

    Raises:
        ProtocolError: if the network cannot make RX1 (it would answer
            in RX2 instead).
    """
    uplink_airtime = uplink_params.airtime_s(uplink_bytes)
    rx1, _ = class_a_windows(uplink_params)
    ack_ready = uplink_airtime + network_processing_s
    window_open = uplink_airtime + rx1.opens_at_s
    if ack_ready > window_open:
        raise ProtocolError(
            f"network needs {network_processing_s}s but RX1 opens "
            f"{rx1.opens_at_s}s after TX end")
    ack_airtime = rx1.params.airtime_s(downlink_bytes)
    turnaround = platform_timings().tx_to_rx_s
    return {
        "uplink_end_s": uplink_airtime,
        "radio_listening_s": uplink_airtime + turnaround,
        "rx1_opens_s": window_open,
        "ack_ends_s": window_open + ack_airtime,
        "turnaround_margin_s": rx1.opens_at_s - turnaround,
    }
