"""Regional channel plans and duty-cycle compliance.

TinySDR's 779-1020 MHz coverage spans both major LoRaWAN regions (US915
and EU868, paper Table 1), and a real MAC must hop channels and respect
regulatory duty cycles - EU868's 1 % sub-band limit is the binding
constraint on how often a node may transmit.  This module provides the
two standard channel plans, pseudo-random hopping, and a duty-cycle
ledger that answers "may I transmit now, and if not, when?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ProtocolError

# spec: LoRaWAN Regional Parameters (EU868 mandatory channels, US915 grid).
LORA_BW_125K_HZ = 125e3
EU868_MANDATORY_FREQS_HZ = (868.1e6, 868.3e6, 868.5e6)
US915_UPLINK_BASE_HZ = 902.3e6
US915_UPLINK_SPACING_HZ = 200e3


@dataclass(frozen=True)
class Channel:
    """One uplink channel.

    Attributes:
        index: channel number within the plan.
        frequency_hz: center frequency.
        bandwidth_hz: channel bandwidth.
        sub_band: regulatory sub-band the channel's duty cycle pools
            into (EU868) or 0 where no sub-band limits apply (US915).
    """

    index: int
    frequency_hz: float
    bandwidth_hz: float
    sub_band: int = 0


@dataclass(frozen=True)
class ChannelPlan:
    """A region's uplink channel set plus its duty-cycle rule.

    Attributes:
        name: region identifier.
        channels: the uplink channels.
        duty_cycle_limit: max fraction of time on air per sub-band
            (1.0 = unlimited, as in US915 where dwell time rules apply
            instead).
        dwell_time_limit_s: max single-transmission airtime (US915:
            400 ms; 0 = unlimited).
    """

    name: str
    channels: tuple[Channel, ...]
    duty_cycle_limit: float = 1.0
    dwell_time_limit_s: float = 0.0

    def channel(self, index: int) -> Channel:
        """Look up a channel by index.

        Raises:
            ConfigurationError: for unknown indices.
        """
        for channel in self.channels:
            if channel.index == index:
                return channel
        raise ConfigurationError(
            f"{self.name} has no channel {index}")


def eu868_plan() -> ChannelPlan:
    """EU868: the three mandatory 125 kHz channels (g1 sub-band, 1 %)."""
    channels = tuple(
        Channel(index=i, frequency_hz=f, bandwidth_hz=LORA_BW_125K_HZ,
                sub_band=1)
        for i, f in enumerate(EU868_MANDATORY_FREQS_HZ))
    return ChannelPlan(name="EU868", channels=channels,
                       duty_cycle_limit=0.01)


def us915_plan() -> ChannelPlan:
    """US915: 64 x 125 kHz uplink channels, 400 ms dwell limit."""
    channels = tuple(
        Channel(index=i,
                frequency_hz=(US915_UPLINK_BASE_HZ
                              + US915_UPLINK_SPACING_HZ * i),
                bandwidth_hz=LORA_BW_125K_HZ)
        for i in range(64))
    return ChannelPlan(name="US915", channels=channels,
                       dwell_time_limit_s=0.4)


class ChannelHopper:
    """Pseudo-random channel selection avoiding immediate repeats."""

    def __init__(self, plan: ChannelPlan, rng: np.random.Generator) -> None:
        if not plan.channels:
            raise ConfigurationError(f"{plan.name} has no channels")
        self.plan = plan
        self._rng = rng
        self._last_index: int | None = None

    def next_channel(self) -> Channel:
        """Pick the next uplink channel."""
        candidates = [c for c in self.plan.channels
                      if c.index != self._last_index]
        if not candidates:
            candidates = list(self.plan.channels)
        choice = candidates[int(self._rng.integers(0, len(candidates)))]
        self._last_index = choice.index
        return choice


@dataclass
class DutyCycleLedger:
    """Per-sub-band airtime accounting over a sliding window.

    EU868 enforcement is usually implemented as: after transmitting for
    ``t`` seconds on a 1 % sub-band, stay silent on that sub-band for
    ``t * (1/limit - 1)`` - the form used here.
    """

    plan: ChannelPlan
    _silent_until_s: dict[int, float] = field(default_factory=dict)

    def can_transmit(self, channel: Channel, now_s: float,
                     airtime_s: float) -> bool:
        """Whether a transmission is allowed right now."""
        if self.plan.dwell_time_limit_s and \
                airtime_s > self.plan.dwell_time_limit_s:
            return False
        if self.plan.duty_cycle_limit >= 1.0:
            return True
        return now_s >= self._silent_until_s.get(channel.sub_band, 0.0)

    def next_allowed_s(self, channel: Channel, now_s: float) -> float:
        """Earliest time a transmission on the channel's sub-band may start."""
        if self.plan.duty_cycle_limit >= 1.0:
            return now_s
        return max(now_s, self._silent_until_s.get(channel.sub_band, 0.0))

    def record_transmission(self, channel: Channel, now_s: float,
                            airtime_s: float) -> None:
        """Account one transmission and arm the back-off.

        Raises:
            ProtocolError: when the transmission violates the rules
                (callers must check :meth:`can_transmit` first).
        """
        if airtime_s <= 0:
            raise ConfigurationError(
                f"airtime must be positive, got {airtime_s!r}")
        if not self.can_transmit(channel, now_s, airtime_s):
            raise ProtocolError(
                f"transmission on {self.plan.name} channel "
                f"{channel.index} violates the regulatory limits")
        if self.plan.duty_cycle_limit < 1.0:
            backoff = airtime_s * (1.0 / self.plan.duty_cycle_limit - 1.0)
            self._silent_until_s[channel.sub_band] = \
                now_s + airtime_s + backoff

    def max_message_rate_hz(self, airtime_s: float) -> float:
        """Sustained message rate the duty cycle allows."""
        if airtime_s <= 0:
            raise ConfigurationError(
                f"airtime must be positive, got {airtime_s!r}")
        if self.plan.duty_cycle_limit >= 1.0:
            return float("inf")
        return self.plan.duty_cycle_limit / airtime_s
