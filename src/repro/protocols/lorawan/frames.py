"""LoRaWAN 1.0 frame codec: MHDR/FHDR, payload crypto, MIC.

The paper's MCU runs a TTN-compatible LoRa MAC (section 4.1): frames a
The Things Network gateway will accept.  This module implements the
LoRaWAN 1.0.x data-frame format - MHDR, FHDR (DevAddr, FCtrl, FCnt,
FOpts), port, encrypted FRMPayload and the 4-byte MIC - using the
from-scratch AES/CMAC primitives.

Payload encryption is the LoRaWAN CTR construction: A-blocks
``01 | 0000 | dir | DevAddr | FCnt | 00 | i`` encrypted with the session
key form the keystream.  The MIC is ``CMAC(NwkSKey, B0 | msg)[0:4]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, MicError
from repro.protocols.lorawan.aes import encrypt_block
from repro.protocols.lorawan.cmac import truncated_cmac

MIC_BYTES = 4
MAX_FOPTS_BYTES = 15


class MType(enum.IntEnum):
    """LoRaWAN message types (MHDR bits 7..5)."""

    JOIN_REQUEST = 0b000
    JOIN_ACCEPT = 0b001
    UNCONFIRMED_UP = 0b010
    UNCONFIRMED_DOWN = 0b011
    CONFIRMED_UP = 0b100
    CONFIRMED_DOWN = 0b101


UPLINK_TYPES = (MType.UNCONFIRMED_UP, MType.CONFIRMED_UP, MType.JOIN_REQUEST)

LORAWAN_MAJOR = 0b00


@dataclass(frozen=True)
class SessionKeys:
    """The two AES-128 session keys of an activated device."""

    nwk_skey: bytes
    app_skey: bytes

    def __post_init__(self) -> None:
        if len(self.nwk_skey) != 16 or len(self.app_skey) != 16:
            raise ConfigurationError("session keys must be 16 bytes each")


@dataclass(frozen=True)
class DataFrame:
    """A parsed (plaintext) LoRaWAN data frame.

    Attributes:
        mtype: message type.
        dev_addr: 32-bit device address.
        fcnt: 16-bit frame counter (the low half of the 32-bit counter).
        payload: decrypted application payload.
        fport: application port (0 reserved for MAC commands).
        fopts: piggybacked MAC commands (at most 15 bytes).
        adr: adaptive-data-rate flag.
        ack: acknowledge flag.
    """

    mtype: MType
    dev_addr: int
    fcnt: int
    payload: bytes
    fport: int = 1
    fopts: bytes = b""
    adr: bool = False
    ack: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.dev_addr <= 0xFFFFFFFF:
            raise ConfigurationError(
                f"DevAddr must be 32-bit, got {self.dev_addr:#x}")
        if not 0 <= self.fcnt <= 0xFFFF:
            raise ConfigurationError(
                f"FCnt field must be 16-bit, got {self.fcnt}")
        if len(self.fopts) > MAX_FOPTS_BYTES:
            raise ConfigurationError(
                f"FOpts limited to {MAX_FOPTS_BYTES} bytes, got "
                f"{len(self.fopts)}")
        if not 0 <= self.fport <= 255:
            raise ConfigurationError(f"FPort must be 0..255, got {self.fport}")

    @property
    def is_uplink(self) -> bool:
        """Whether this frame travels device -> network."""
        return self.mtype in UPLINK_TYPES


def _crypto_keystream(key: bytes, dev_addr: int, fcnt: int, uplink: bool,
                      num_bytes: int) -> bytes:
    """LoRaWAN CTR keystream from A-blocks."""
    direction = 0 if uplink else 1
    stream = bytearray()
    block_index = 1
    while len(stream) < num_bytes:
        a_block = bytes((
            0x01, 0x00, 0x00, 0x00, 0x00, direction,
            dev_addr & 0xFF, (dev_addr >> 8) & 0xFF,
            (dev_addr >> 16) & 0xFF, (dev_addr >> 24) & 0xFF,
            fcnt & 0xFF, (fcnt >> 8) & 0xFF, 0x00, 0x00,
            0x00, block_index))
        stream += encrypt_block(key, a_block)
        block_index += 1
    return bytes(stream[:num_bytes])


def encrypt_payload(payload: bytes, key: bytes, dev_addr: int, fcnt: int,
                    uplink: bool) -> bytes:
    """Encrypt (or decrypt - XOR keystream) an application payload."""
    keystream = _crypto_keystream(key, dev_addr, fcnt, uplink, len(payload))
    return bytes(p ^ k for p, k in zip(payload, keystream))


def _mic_b0(msg_len: int, dev_addr: int, fcnt: int, uplink: bool) -> bytes:
    direction = 0 if uplink else 1
    return bytes((
        0x49, 0x00, 0x00, 0x00, 0x00, direction,
        dev_addr & 0xFF, (dev_addr >> 8) & 0xFF,
        (dev_addr >> 16) & 0xFF, (dev_addr >> 24) & 0xFF,
        fcnt & 0xFF, (fcnt >> 8) & 0xFF, 0x00, 0x00,
        0x00, msg_len))


def compute_mic(msg: bytes, nwk_skey: bytes, dev_addr: int, fcnt: int,
                uplink: bool) -> bytes:
    """Frame MIC: first 4 bytes of CMAC over B0 | msg."""
    b0 = _mic_b0(len(msg), dev_addr, fcnt, uplink)
    return truncated_cmac(nwk_skey, b0 + msg, MIC_BYTES)


def serialize(frame: DataFrame, keys: SessionKeys) -> bytes:
    """Encode, encrypt and MIC a data frame into a PHYPayload.

    Raises:
        ConfigurationError: for join message types (not data frames).
    """
    if frame.mtype in (MType.JOIN_REQUEST, MType.JOIN_ACCEPT):
        raise ConfigurationError(
            "serialize() handles data frames; use the join codec")
    mhdr = (frame.mtype << 5) | LORAWAN_MAJOR
    fctrl = ((0x80 if frame.adr else 0) | (0x20 if frame.ack else 0)
             | (len(frame.fopts) & 0x0F))
    fhdr = (frame.dev_addr.to_bytes(4, "little") + bytes((fctrl,))
            + frame.fcnt.to_bytes(2, "little") + frame.fopts)
    key = keys.app_skey if frame.fport != 0 else keys.nwk_skey
    encrypted = encrypt_payload(frame.payload, key, frame.dev_addr,
                                frame.fcnt, frame.is_uplink)
    body = bytes((mhdr,)) + fhdr + bytes((frame.fport,)) + encrypted
    mic = compute_mic(body, keys.nwk_skey, frame.dev_addr, frame.fcnt,
                      frame.is_uplink)
    return body + mic


def deserialize(phy_payload: bytes, keys: SessionKeys) -> DataFrame:
    """Parse, verify and decrypt a PHYPayload.

    Raises:
        MicError: when the MIC does not verify.
        ConfigurationError: for malformed frames.
    """
    if len(phy_payload) < 1 + 7 + 1 + MIC_BYTES:
        raise ConfigurationError(
            f"PHYPayload of {len(phy_payload)} bytes is too short")
    mhdr = phy_payload[0]
    mtype = MType((mhdr >> 5) & 0x7)
    if (mhdr & 0x3) != LORAWAN_MAJOR:
        raise ConfigurationError(
            f"unsupported LoRaWAN major version {mhdr & 0x3}")
    body, mic = phy_payload[:-MIC_BYTES], phy_payload[-MIC_BYTES:]
    dev_addr = int.from_bytes(body[1:5], "little")
    fctrl = body[5]
    fcnt = int.from_bytes(body[6:8], "little")
    fopts_len = fctrl & 0x0F
    fopts = body[8:8 + fopts_len]
    uplink = mtype in UPLINK_TYPES
    expected = compute_mic(body, keys.nwk_skey, dev_addr, fcnt, uplink)
    if expected != mic:
        raise MicError(
            f"MIC mismatch: expected {expected.hex()}, got {mic.hex()}")
    rest = body[8 + fopts_len:]
    if not rest:
        raise ConfigurationError("frame carries no FPort or payload")
    fport = rest[0]
    key = keys.app_skey if fport != 0 else keys.nwk_skey
    payload = encrypt_payload(rest[1:], key, dev_addr, fcnt, uplink)
    return DataFrame(mtype=mtype, dev_addr=dev_addr, fcnt=fcnt,
                     payload=payload, fport=fport, fopts=fopts,
                     adr=bool(fctrl & 0x80), ack=bool(fctrl & 0x20))
