"""AES-CMAC (RFC 4493), built on the from-scratch AES-128.

LoRaWAN computes every frame's message integrity code as the first four
bytes of an AES-CMAC over a block-zero prefix plus the frame bytes.
Verified against the RFC 4493 test vectors in the test suite.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.protocols.lorawan.aes import BLOCK_BYTES, encrypt_block

_RB = 0x87


def _left_shift_block(block: bytes) -> tuple[bytes, bool]:
    """Shift a 16-byte block left by one bit; returns (shifted, carry)."""
    value = int.from_bytes(block, "big") << 1
    overflow = value >> (8 * BLOCK_BYTES)
    value &= (1 << (8 * BLOCK_BYTES)) - 1
    return value.to_bytes(BLOCK_BYTES, "big"), bool(overflow)


def generate_subkeys(key: bytes) -> tuple[bytes, bytes]:
    """Derive the CMAC subkeys K1 and K2 from the cipher key."""
    l = encrypt_block(key, bytes(BLOCK_BYTES))
    k1, overflow = _left_shift_block(l)
    if overflow:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2, overflow = _left_shift_block(k1)
    if overflow:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Full 16-byte AES-CMAC of ``message``.

    Raises:
        ConfigurationError: for a key of the wrong size.
    """
    if len(key) != BLOCK_BYTES:
        raise ConfigurationError(
            f"CMAC key must be {BLOCK_BYTES} bytes, got {len(key)}")
    k1, k2 = generate_subkeys(key)
    n_blocks = max(1, -(-len(message) // BLOCK_BYTES))
    complete = (len(message) % BLOCK_BYTES == 0) and len(message) > 0
    if complete:
        last = _xor_block(message[-BLOCK_BYTES:], k1)
    else:
        tail = message[(n_blocks - 1) * BLOCK_BYTES:]
        padded = tail + b"\x80" + bytes(BLOCK_BYTES - len(tail) - 1)
        last = _xor_block(padded, k2)
    state = bytes(BLOCK_BYTES)
    for index in range(n_blocks - 1):
        block = message[index * BLOCK_BYTES:(index + 1) * BLOCK_BYTES]
        state = encrypt_block(key, _xor_block(state, block))
    return encrypt_block(key, _xor_block(state, last))


def truncated_cmac(key: bytes, message: bytes, length: int = 4) -> bytes:
    """First ``length`` bytes of the CMAC - LoRaWAN's MIC.

    Raises:
        ConfigurationError: for lengths outside 1..16.
    """
    if not 1 <= length <= BLOCK_BYTES:
        raise ConfigurationError(
            f"truncation length must be 1..{BLOCK_BYTES}, got {length}")
    return aes_cmac(key, message)[:length]
