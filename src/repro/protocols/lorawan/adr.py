"""Adaptive data rate (ADR) for LoRaWAN uplinks.

One of the research questions tinySDR is built to let people answer
(paper section 7): "Are there benefits of rate adaptation?"  This module
implements the standard network-side ADR algorithm - track the best SNR
over a window of uplinks, compare it against the demodulation threshold
of the current spreading factor plus a margin, and step the device's SF
(and TX power) to the fastest setting the link supports - plus the
simulation harness to measure what ADR buys across a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.lora.params import LoRaParams
from repro.protocols.lorawan.channels import LORA_BW_125K_HZ
from repro.radio.sx1276 import (
    SNR_THRESHOLD_DB,
    packet_error_probability,
)
from repro.units import noise_floor_dbm

ADR_MARGIN_DB = 10.0
"""Installation margin the TTN network server uses."""

SNR_WINDOW = 20
"""Uplinks considered when computing the max SNR."""

MIN_TX_POWER_DBM = 2.0
MAX_TX_POWER_DBM = 14.0
TX_POWER_STEP_DB = 2.0


@dataclass
class AdrState:
    """Network-side ADR state for one device.

    Attributes:
        spreading_factor: currently commanded SF.
        tx_power_dbm: currently commanded TX power.
        snr_history: recent uplink SNRs.
    """

    spreading_factor: int = 12
    tx_power_dbm: float = MAX_TX_POWER_DBM
    snr_history: list[float] = field(default_factory=list)

    def record_uplink(self, snr_db: float) -> None:
        """Track one uplink's measured SNR."""
        self.snr_history.append(snr_db)
        if len(self.snr_history) > SNR_WINDOW:
            self.snr_history.pop(0)

    def adjust(self) -> bool:
        """Run one ADR decision; returns True when settings changed.

        The TTN algorithm: ``margin = maxSNR - threshold(SF) -
        ADR_MARGIN``; each 3 dB of positive margin buys one SF step down,
        then TX power steps down; negative margin steps SF back up.
        """
        if not self.snr_history:
            return False
        max_snr = max(self.snr_history)
        threshold = SNR_THRESHOLD_DB[self.spreading_factor]
        margin = max_snr - threshold - ADR_MARGIN_DB
        steps = int(margin // 3.0)
        changed = False
        while steps > 0 and self.spreading_factor > 7:
            self.spreading_factor -= 1
            steps -= 1
            changed = True
        while steps > 0 and self.tx_power_dbm > MIN_TX_POWER_DBM:
            self.tx_power_dbm = max(self.tx_power_dbm - TX_POWER_STEP_DB,
                                    MIN_TX_POWER_DBM)
            steps -= 1
            changed = True
        while steps < 0 and (self.tx_power_dbm < MAX_TX_POWER_DBM
                             or self.spreading_factor < 12):
            if self.tx_power_dbm < MAX_TX_POWER_DBM:
                self.tx_power_dbm = min(
                    self.tx_power_dbm + TX_POWER_STEP_DB,
                    MAX_TX_POWER_DBM)
            else:
                self.spreading_factor += 1
            steps += 1
            changed = True
        if changed:
            # SNRs measured at the old setting would keep the window's
            # max stale; restart the measurement at the new setting.
            self.snr_history.clear()
        return changed

    def backoff(self) -> None:
        """Device-side recovery (the ADRACKReq mechanism): after repeated
        unacknowledged uplinks, raise power then spreading factor."""
        if self.tx_power_dbm < MAX_TX_POWER_DBM:
            self.tx_power_dbm = min(self.tx_power_dbm + TX_POWER_STEP_DB,
                                    MAX_TX_POWER_DBM)
        elif self.spreading_factor < 12:
            self.spreading_factor += 1
        self.snr_history.clear()


@dataclass(frozen=True)
class AdrSimulationResult:
    """What a device's uplinks cost with and without ADR.

    Attributes:
        final_sf: converged spreading factor.
        final_tx_power_dbm: converged TX power.
        airtime_s_per_packet: airtime at the converged setting.
        energy_j_per_packet: radio TX energy at the converged setting.
        delivery_ratio: fraction of uplinks delivered post-convergence.
    """

    final_sf: int
    final_tx_power_dbm: float
    airtime_s_per_packet: float
    energy_j_per_packet: float
    delivery_ratio: float


def simulate_adr(path_loss_db: float, rng: np.random.Generator,
                 payload_bytes: int = 20, uplinks: int = 60,
                 bandwidth_hz: float = LORA_BW_125K_HZ,
                 fading_sigma_db: float = 2.0) -> AdrSimulationResult:
    """Run a device from SF12/14 dBm through ADR convergence.

    Args:
        path_loss_db: link budget between device and gateway.
        rng: randomness for per-packet fading.
        payload_bytes: uplink payload size.
        uplinks: packets to simulate (ADR adjusts every packet once the
            window fills).
        bandwidth_hz: LoRa bandwidth.
        fading_sigma_db: per-packet shadowing.

    Raises:
        ConfigurationError: for non-positive uplink counts.
    """
    if uplinks <= 0:
        raise ConfigurationError(f"need uplinks > 0, got {uplinks}")
    from repro.power.profiles import iq_radio_tx_w

    state = AdrState()
    floor = noise_floor_dbm(bandwidth_hz, 6.0)
    delivered_after_convergence = 0
    counted = 0
    consecutive_losses = 0
    for index in range(uplinks):
        rssi = (state.tx_power_dbm - path_loss_db
                + float(rng.normal(0.0, fading_sigma_db)))
        params = LoRaParams(state.spreading_factor, bandwidth_hz)
        per = packet_error_probability(params, rssi, payload_bytes)
        delivered = rng.random() >= per
        if delivered:
            state.record_uplink(rssi - floor)
            consecutive_losses = 0
        else:
            consecutive_losses += 1
        if index >= uplinks // 2:
            counted += 1
            delivered_after_convergence += int(delivered)
        if consecutive_losses >= 3:
            state.backoff()
            consecutive_losses = 0
        elif len(state.snr_history) >= 5:
            state.adjust()

    params = LoRaParams(state.spreading_factor, bandwidth_hz)
    airtime = params.airtime_s(payload_bytes)
    energy = airtime * iq_radio_tx_w(
        min(state.tx_power_dbm, 14.0))
    return AdrSimulationResult(
        final_sf=state.spreading_factor,
        final_tx_power_dbm=state.tx_power_dbm,
        airtime_s_per_packet=airtime,
        energy_j_per_packet=energy,
        delivery_ratio=(delivered_after_convergence / counted
                        if counted else 0.0))


def fixed_rate_cost(spreading_factor: int, tx_power_dbm: float,
                    payload_bytes: int = 20,
                    bandwidth_hz: float = LORA_BW_125K_HZ
                    ) -> tuple[float, float]:
    """(airtime, energy) per packet for a fixed configuration baseline."""
    from repro.power.profiles import iq_radio_tx_w
    params = LoRaParams(spreading_factor, bandwidth_hz)
    airtime = params.airtime_s(payload_bytes)
    return airtime, airtime * iq_radio_tx_w(min(tx_power_dbm, 14.0))
