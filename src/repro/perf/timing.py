"""Throughput timing for the hot-path benchmark harness.

The north star is a pipeline that runs as fast as the hardware allows,
so speed has to be a measured quantity, not an assumption.  These
helpers time a callable processing a known number of items (samples,
words, symbols) and report items/second, taking the best of several
repeats to suppress scheduler noise the way micro-benchmarks should.
:class:`ThroughputReport` aggregates results into the ``BENCH_hotpath``
JSON document that tracks the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThroughputResult:
    """One timed hot-path measurement.

    Attributes:
        name: benchmark identifier (e.g. ``"iqword_pack.fast"``).
        items: number of items processed per call.
        unit: what an item is (``"samples"``, ``"words"``, ...).
        best_seconds: fastest wall-clock time over all repeats.
        repeats: timed repetitions taken.
    """

    name: str
    items: int
    unit: str
    best_seconds: float
    repeats: int

    @property
    def items_per_second(self) -> float:
        """Throughput of the best repeat."""
        if self.best_seconds <= 0.0:
            return float("inf")
        return self.items / self.best_seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "items": self.items,
            "unit": self.unit,
            "best_seconds": self.best_seconds,
            "repeats": self.repeats,
            "items_per_second": self.items_per_second,
        }


def measure_throughput(name: str, func: Callable[[], Any], items: int,
                       unit: str = "samples", repeats: int = 5,
                       warmup: int = 1) -> ThroughputResult:
    """Time ``func`` and return its throughput in ``items``/second.

    Args:
        name: benchmark identifier recorded in the result.
        func: zero-argument callable doing the work being measured.
        items: items processed by one call (for the rate computation).
        unit: item label recorded in the result.
        repeats: timed repetitions; the best (minimum) is reported.
        warmup: untimed calls first (fills caches, triggers lazy init).

    Raises:
        ConfigurationError: for non-positive ``items`` or ``repeats``.
    """
    if items < 1:
        raise ConfigurationError(f"items must be >= 1, got {items}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return ThroughputResult(name=name, items=items, unit=unit,
                            best_seconds=best, repeats=repeats)


@dataclass
class ThroughputReport:
    """Collection of paired fast/reference measurements plus metadata.

    Results are grouped by benchmark name; a group holding both a
    ``fast`` and a ``reference`` variant also reports their speedup.
    """

    results: dict[str, dict[str, ThroughputResult]] = field(
        default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add(self, group: str, variant: str,
            result: ThroughputResult) -> None:
        """Record a measurement under ``group``/``variant``."""
        self.results.setdefault(group, {})[variant] = result

    def annotate(self, entry: str, **extra: Any) -> None:
        """Attach per-entry metadata under ``metadata["entries"][entry]``.

        Entry annotations (plan-cache stats, RSS snapshots, ...) live in
        the report-level metadata block rather than inside ``results``
        so throughput consumers iterating a group's variants never see a
        non-measurement dict.
        """
        entries = self.metadata.setdefault("entries", {})
        entries.setdefault(entry, {}).update(extra)

    def speedup(self, group: str) -> float | None:
        """``fast`` over ``reference`` throughput ratio, if both exist."""
        variants = self.results.get(group, {})
        fast = variants.get("fast")
        reference = variants.get("reference")
        if fast is None or reference is None:
            return None
        if reference.items_per_second == 0.0:
            return float("inf")
        return fast.items_per_second / reference.items_per_second

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable document for ``BENCH_hotpath.json``."""
        groups: dict[str, Any] = {}
        for group, variants in self.results.items():
            groups[group] = {variant: result.to_dict()
                             for variant, result in variants.items()}
            ratio = self.speedup(group)
            if ratio is not None:
                groups[group]["speedup"] = ratio
        return {"results": groups, "metadata": self.metadata}

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the report to ``path`` and return it."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path
