"""Performance subsystem: plan cache and throughput timing.

The sample/bit-level substrates the Fig. 6 pipelines run on (chirp
tables, FFT plans, NCO lookup tables, FIR tap sets) are expensive to
derive and identical across the many modem instances a testbed sweep
constructs.  :mod:`repro.perf.cache` memoizes those derived artifacts
behind a keyed plan cache; :mod:`repro.perf.timing` measures the
throughput of the vectorized hot paths against their retained scalar
``*_reference`` implementations.
"""

from repro.perf.cache import (
    CacheStats,
    PlanCache,
    clear,
    get_or_build,
    plan_cache,
    stats,
)
from repro.perf.timing import (
    ThroughputReport,
    ThroughputResult,
    measure_throughput,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "ThroughputReport",
    "ThroughputResult",
    "clear",
    "get_or_build",
    "measure_throughput",
    "plan_cache",
    "stats",
]

# Opt-in runtime sanitizer: REPRO_SANITIZE=1 wraps PlanCache.get_or_build
# so any writable array escaping the freezer raises immediately.
from repro.analysis.sanitize import install_from_env as _install_sanitizer

_install_sanitizer()
del _install_sanitizer
