"""Keyed plan cache for expensive derived DSP artifacts.

A "plan" is anything derived deterministically from a hashable
configuration and expensive enough to matter when rebuilt per modem:
chirp symbol tables per :class:`~repro.phy.lora.params.LoRaParams`,
conjugate dechirp references, :class:`~repro.dsp.fft.Radix2Fft`
twiddle/bit-reverse plans, FIR tap sets, NCO sin/cos lookup tables.
Testbed sweeps build one modem per node per configuration, so without a
cache the same tables are recomputed thousands of times.

The cache is a bounded LRU keyed by arbitrary hashable tuples.  Cached
numpy arrays are frozen (``writeable=False``) so shared plans cannot be
corrupted by one consumer mutating another's view; callers that need a
private mutable array copy the cached one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Any, Callable, Hashable

import numpy as np

from repro.errors import ConfigurationError

DEFAULT_MAX_ENTRIES = 512
"""Default plan-cache capacity; ample for a full multi-config sweep."""


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot of a :class:`PlanCache`.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that invoked the builder.
        entries: plans currently resident.
        evictions: plans dropped to enforce the size bound.
    """

    hits: int
    misses: int
    entries: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _freeze(value: Any) -> Any:
    """Make cached numpy arrays immutable (recursing into containers).

    Tuples, lists and dict values are traversed so builders may return
    structured plans; every numpy array reachable through them is frozen
    at the single choke point all cache entries pass through.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    elif isinstance(value, dict):
        for item in value.values():
            _freeze(item)
    return value


class PlanCache:
    """Bounded LRU cache mapping hashable keys to built plans.

    Args:
        max_entries: maximum resident plans; least recently used plans
            are evicted past this bound.

    Raises:
        ConfigurationError: for a non-positive capacity.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], Any]) -> Any:
        """Return the plan for ``key``, building and caching it on a miss.

        The builder runs under the cache lock (reentrant, so builders may
        themselves consult the cache for sub-plans).  Built numpy arrays
        are frozen before being stored.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
            self._misses += 1
            value = _freeze(builder())
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def clear(self) -> None:
        """Drop all plans and reset the counters (for test isolation)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._entries),
                              evictions=self._evictions)

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that ran the builder."""
        return self._misses

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries


_GLOBAL_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _GLOBAL_CACHE


def get_or_build(key: Hashable, builder: Callable[[], Any]) -> Any:
    """Look up ``key`` in the default cache, building on a miss."""
    return _GLOBAL_CACHE.get_or_build(key, builder)


def clear() -> None:
    """Clear the default cache (tests call this for isolation)."""
    _GLOBAL_CACHE.clear()


def stats() -> CacheStats:
    """Counters snapshot of the default cache."""
    return _GLOBAL_CACHE.stats()
