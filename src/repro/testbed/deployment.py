"""Campus testbed deployments (paper Fig. 7).

The paper deploys 20 tinySDR nodes across the UW campus and programs
them from a single LoRa AP.  The published map is anonymized, so this
module generates synthetic campus-scale deployments whose distance
distribution spans the same operating regime: most nodes within a few
hundred meters of the AP, a tail approaching the kilometer scale where
SF8/BW500 links get marginal and programming slows - the spread Fig. 14's
CDF shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.pathloss import LogDistanceModel
from repro.errors import ConfigurationError

TESTBED_SIZE = 20
"""Node count of the paper's campus deployment."""


@dataclass(frozen=True)
class NodePlacement:
    """One deployed node.

    Attributes:
        node_id: testbed identifier.
        x_m: east offset from the AP.
        y_m: north offset from the AP.
    """

    node_id: int
    x_m: float
    y_m: float

    @property
    def distance_m(self) -> float:
        """Distance to the AP at the origin."""
        return float(np.hypot(self.x_m, self.y_m))


@dataclass(frozen=True)
class Deployment:
    """A testbed: node placements plus the radio environment."""

    nodes: tuple[NodePlacement, ...]
    channel: LogDistanceModel
    ap_tx_power_dbm: float = 14.0
    node_tx_power_dbm: float = 14.0
    ap_antenna_gain_dbi: float = 6.0
    """The paper's AP uses a patch antenna."""

    def downlink_rssi_dbm(self, node: NodePlacement,
                          rng: np.random.Generator | None = None) -> float:
        """Node-side RSSI of AP transmissions."""
        return self.channel.received_power_dbm(
            self.ap_tx_power_dbm, node.distance_m,
            tx_gain_dbi=self.ap_antenna_gain_dbi, rng=rng)

    def uplink_rssi_dbm(self, node: NodePlacement,
                        rng: np.random.Generator | None = None) -> float:
        """AP-side RSSI of node transmissions."""
        return self.channel.received_power_dbm(
            self.node_tx_power_dbm, node.distance_m,
            rx_gain_dbi=self.ap_antenna_gain_dbi, rng=rng)


def campus_deployment(num_nodes: int = TESTBED_SIZE, seed: int = 2020,
                      frequency_hz: float = 915e6,  # units: Hz, 915 MHz ISM
                      max_radius_m: float = 1050.0,
                      exponent: float = 3.4,
                      shadowing_sigma_db: float = 4.0,
                      rng: np.random.Generator | None = None) -> Deployment:
    """Generate a campus-scale deployment around an AP at the origin.

    Node distances follow a square-root-uniform radial draw (uniform
    density over the disk) with a 30 m keep-out so no node sits on the
    AP's roof.

    Raises:
        ConfigurationError: for non-positive node counts or radii.
    """
    if num_nodes <= 0:
        raise ConfigurationError(
            f"need at least one node, got {num_nodes}")
    if max_radius_m <= 30.0:
        raise ConfigurationError(
            f"radius must exceed the 30 m keep-out, got {max_radius_m!r}")
    if rng is None:
        rng = np.random.default_rng(seed)
    radii = 30.0 + (max_radius_m - 30.0) * np.sqrt(rng.random(num_nodes))
    angles = rng.random(num_nodes) * 2.0 * np.pi
    nodes = tuple(
        NodePlacement(node_id=i,
                      x_m=float(r * np.cos(a)),
                      y_m=float(r * np.sin(a)))
        for i, (r, a) in enumerate(zip(radii, angles)))
    channel = LogDistanceModel(
        frequency_hz=frequency_hz, exponent=exponent,
        shadowing_sigma_db=shadowing_sigma_db)
    return Deployment(nodes=nodes, channel=channel)
