"""Mobile-node scenarios (paper section 1: battery operation enables
deployment "in spaces without dedicated power access, or even in mobile
scenarios").

A mobile node follows a waypoint path at constant speed; its distance -
and therefore RSSI - to the AP varies while a multi-minute OTA session
is in flight.  The session simulator re-evaluates the link as the node
moves, so a node driving away mid-update accumulates retransmissions
exactly where its link degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ota.mac import (
    OtaLink,
    TransferReport,
    fragment_image,
    run_stop_and_wait,
    transfer_report_from_timeline,
)
from repro.sim import Timeline
from repro.testbed.deployment import Deployment


@dataclass(frozen=True)
class Waypoint:
    """A point on a mobile node's path."""

    x_m: float
    y_m: float


class MobilePath:
    """Piecewise-linear motion through waypoints at constant speed."""

    def __init__(self, waypoints: list[Waypoint], speed_m_s: float) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError(
                f"need at least 2 waypoints, got {len(waypoints)}")
        if speed_m_s <= 0:
            raise ConfigurationError(
                f"speed must be positive, got {speed_m_s!r}")
        self.waypoints = list(waypoints)
        self.speed_m_s = speed_m_s
        self._segment_lengths = [
            float(np.hypot(b.x_m - a.x_m, b.y_m - a.y_m))
            for a, b in zip(waypoints, waypoints[1:])]
        self.total_length_m = sum(self._segment_lengths)

    @property
    def duration_s(self) -> float:
        """Time to traverse the whole path."""
        return self.total_length_m / self.speed_m_s

    def position_at(self, time_s: float) -> Waypoint:
        """Position at a given time (clamped to the path ends)."""
        if time_s <= 0:
            return self.waypoints[0]
        travelled = min(time_s * self.speed_m_s, self.total_length_m)
        for (start, end), length in zip(
                zip(self.waypoints, self.waypoints[1:]),
                self._segment_lengths):
            if travelled <= length or length == 0:
                fraction = travelled / length if length else 0.0
                return Waypoint(
                    x_m=start.x_m + fraction * (end.x_m - start.x_m),
                    y_m=start.y_m + fraction * (end.y_m - start.y_m))
            travelled -= length
        return self.waypoints[-1]

    def distance_to_origin_at(self, time_s: float) -> float:
        """Distance from the AP (at the origin) at a given time."""
        position = self.position_at(time_s)
        return float(np.hypot(position.x_m, position.y_m))


@dataclass
class MobileTransferResult:
    """Outcome of an OTA transfer to a moving node.

    Attributes:
        report: the underlying transfer accounting.
        rssi_trace: (time, rssi) samples across the session.
    """

    report: TransferReport
    rssi_trace: list[tuple[float, float]]


def simulate_mobile_transfer(deployment: Deployment, path: MobilePath,
                             image: bytes, rng: np.random.Generator,
                             tx_power_dbm: float = 14.0,
                             timeline: Timeline | None = None
                             ) -> MobileTransferResult:
    """Run the stop-and-wait OTA data phase against a moving node.

    The link RSSI is re-derived from the node's instantaneous position
    before every transmission attempt: the shared ARQ loop
    (:func:`repro.ota.mac.run_stop_and_wait`) asks the per-attempt link
    callback for conditions at the current sim time, which is where the
    RSSI trace is sampled.  Unlike the fixed-link transfer, ACK-timeout
    dwells do not charge the node's receive budget (the mobile model
    lets the node sleep through the timeout).
    """
    link_template = OtaLink()
    params = link_template.params
    fragments = fragment_image(image)
    timeline = timeline if timeline is not None else Timeline()
    since = timeline.checkpoint()
    start_s = timeline.now_s
    trace: list[tuple[float, float]] = []

    def link_at(now_s, fragment, attempt):
        elapsed_s = now_s - start_s
        distance = path.distance_to_origin_at(elapsed_s)
        rssi = deployment.channel.received_power_dbm(
            tx_power_dbm, max(distance, 1.0),
            tx_gain_dbi=deployment.ap_antenna_gain_dbi)
        trace.append((elapsed_s, rssi))
        return OtaLink(params=params, downlink_rssi_dbm=rssi,
                       uplink_rssi_dbm=rssi)

    lost = run_stop_and_wait(fragments, rng, timeline, link_at)
    messages = []
    if lost is not None:
        messages.append(
            f"fragment {lost.sequence} lost while node at "
            f"{path.distance_to_origin_at(timeline.now_s - start_s):.0f} m")
    report = transfer_report_from_timeline(
        timeline, since, failed=lost is not None, messages=messages,
        timeout_is_rx=False)
    return MobileTransferResult(report=report, rssi_trace=trace)
