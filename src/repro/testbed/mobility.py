"""Mobile-node scenarios (paper section 1: battery operation enables
deployment "in spaces without dedicated power access, or even in mobile
scenarios").

A mobile node follows a waypoint path at constant speed; its distance -
and therefore RSSI - to the AP varies while a multi-minute OTA session
is in flight.  The session simulator re-evaluates the link as the node
moves, so a node driving away mid-update accumulates retransmissions
exactly where its link degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ota.mac import (
    ACK_BYTES,
    ACK_TIMEOUT_S,
    MAX_ATTEMPTS_PER_PACKET,
    OtaLink,
    TransferReport,
    fragment_image,
)
from repro.testbed.deployment import Deployment


@dataclass(frozen=True)
class Waypoint:
    """A point on a mobile node's path."""

    x_m: float
    y_m: float


class MobilePath:
    """Piecewise-linear motion through waypoints at constant speed."""

    def __init__(self, waypoints: list[Waypoint], speed_m_s: float) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError(
                f"need at least 2 waypoints, got {len(waypoints)}")
        if speed_m_s <= 0:
            raise ConfigurationError(
                f"speed must be positive, got {speed_m_s!r}")
        self.waypoints = list(waypoints)
        self.speed_m_s = speed_m_s
        self._segment_lengths = [
            float(np.hypot(b.x_m - a.x_m, b.y_m - a.y_m))
            for a, b in zip(waypoints, waypoints[1:])]
        self.total_length_m = sum(self._segment_lengths)

    @property
    def duration_s(self) -> float:
        """Time to traverse the whole path."""
        return self.total_length_m / self.speed_m_s

    def position_at(self, time_s: float) -> Waypoint:
        """Position at a given time (clamped to the path ends)."""
        if time_s <= 0:
            return self.waypoints[0]
        travelled = min(time_s * self.speed_m_s, self.total_length_m)
        for (start, end), length in zip(
                zip(self.waypoints, self.waypoints[1:]),
                self._segment_lengths):
            if travelled <= length or length == 0:
                fraction = travelled / length if length else 0.0
                return Waypoint(
                    x_m=start.x_m + fraction * (end.x_m - start.x_m),
                    y_m=start.y_m + fraction * (end.y_m - start.y_m))
            travelled -= length
        return self.waypoints[-1]

    def distance_to_origin_at(self, time_s: float) -> float:
        """Distance from the AP (at the origin) at a given time."""
        position = self.position_at(time_s)
        return float(np.hypot(position.x_m, position.y_m))


@dataclass
class MobileTransferResult:
    """Outcome of an OTA transfer to a moving node.

    Attributes:
        report: the underlying transfer accounting.
        rssi_trace: (time, rssi) samples across the session.
    """

    report: TransferReport
    rssi_trace: list[tuple[float, float]]


def simulate_mobile_transfer(deployment: Deployment, path: MobilePath,
                             image: bytes, rng: np.random.Generator,
                             tx_power_dbm: float = 14.0
                             ) -> MobileTransferResult:
    """Run the stop-and-wait OTA data phase against a moving node.

    The link RSSI is re-derived from the node's instantaneous position
    before every transmission attempt.
    """
    link_template = OtaLink()
    params = link_template.params
    fragments = fragment_image(image)
    ack_airtime = link_template.airtime_s(ACK_BYTES)

    report = TransferReport()
    trace: list[tuple[float, float]] = []
    clock = 0.0
    for fragment in fragments:
        data_airtime = link_template.airtime_s(fragment.wire_bytes)
        delivered = False
        for attempt in range(MAX_ATTEMPTS_PER_PACKET):
            distance = path.distance_to_origin_at(clock)
            rssi = deployment.channel.received_power_dbm(
                tx_power_dbm, max(distance, 1.0),
                tx_gain_dbi=deployment.ap_antenna_gain_dbi)
            link = OtaLink(params=params, downlink_rssi_dbm=rssi,
                           uplink_rssi_dbm=rssi)
            trace.append((clock, rssi))
            report.packets_sent += 1
            if attempt:
                report.retransmissions += 1
            clock += data_airtime
            report.node_rx_time_s += data_airtime
            if not link.packet_success(fragment.wire_bytes, uplink=False,
                                       rng=rng):
                clock += ACK_TIMEOUT_S
                continue
            clock += ack_airtime
            report.node_tx_time_s += ack_airtime
            if link.packet_success(ACK_BYTES, uplink=True, rng=rng):
                delivered = True
                break
            clock += ACK_TIMEOUT_S
        if not delivered:
            report.failed = True
            report.events.append(
                f"fragment {fragment.sequence} lost while node at "
                f"{path.distance_to_origin_at(clock):.0f} m")
            break
        report.packets_delivered += 1
    report.duration_s = clock
    return MobileTransferResult(report=report, rssi_trace=trace)
