"""Multi-hop relaying over the testbed (paper section 7).

"One can also create multi-hop IoT PHY/MAC innovations, which have not
been explored well given the lack of a flexible platform."  This module
provides the substrate such work needs: link-quality graphs over a
deployment, shortest-usable-path routing, and end-to-end delivery
simulation where each hop is an independent LoRa link - so coverage-vs-
latency and relay-energy trade-offs become measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.ota.mac import OTA_PREAMBLE_SYMBOLS
from repro.phy.lora.params import LoRaParams
from repro.radio.sx1276 import packet_error_probability
from repro.testbed.deployment import Deployment

DEFAULT_HOP_PARAMS = LoRaParams(8, 125e3)
GATEWAY_ID = -1
"""Virtual node id for the AP/gateway at the origin."""


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


@dataclass(frozen=True)
class Link:
    """A usable directed link in the mesh.

    Attributes:
        source: node id (``GATEWAY_ID`` for the AP).
        destination: node id.
        rssi_dbm: median received power.
        per: packet error rate for the routing payload size.
    """

    source: int
    destination: int
    rssi_dbm: float
    per: float


class MeshGraph:
    """Link-quality graph over a deployment plus the gateway."""

    def __init__(self, deployment: Deployment,
                 params: LoRaParams = DEFAULT_HOP_PARAMS,
                 tx_power_dbm: float = 14.0,
                 payload_bytes: int = 20,
                 max_per: float = 0.1) -> None:
        if not 0.0 < max_per < 1.0:
            raise ConfigurationError(
                f"max PER must be in (0, 1), got {max_per!r}")
        self.deployment = deployment
        self.params = params
        self.payload_bytes = payload_bytes
        self.max_per = max_per
        self._positions: dict[int, tuple[float, float]] = {
            GATEWAY_ID: (0.0, 0.0)}
        for node in deployment.nodes:
            self._positions[node.node_id] = (node.x_m, node.y_m)
        self.links = self._build_links(tx_power_dbm)

    def _build_links(self, tx_power_dbm: float) -> list[Link]:
        links = []
        ids = list(self._positions)
        for source in ids:
            for destination in ids:
                if source == destination:
                    continue
                distance = _distance(self._positions[source],
                                     self._positions[destination])
                gain = (self.deployment.ap_antenna_gain_dbi
                        if GATEWAY_ID in (source, destination) else 0.0)
                rssi = self.deployment.channel.received_power_dbm(
                    tx_power_dbm, max(distance, 1.0), tx_gain_dbi=gain)
                per = packet_error_probability(
                    self.params, rssi, self.payload_bytes,
                    OTA_PREAMBLE_SYMBOLS)
                if per <= self.max_per:
                    links.append(Link(source, destination, rssi, per))
        return links

    def neighbors(self, node_id: int) -> list[Link]:
        """Outgoing usable links of a node."""
        return [l for l in self.links if l.source == node_id]

    def route(self, source: int, destination: int) -> list[Link]:
        """Minimum-expected-transmissions path (Dijkstra over ETX).

        The ETX of a link is ``1 / (1 - PER)`` - the standard multi-hop
        routing metric.

        Raises:
            ProtocolError: when no usable path exists.
        """
        if source not in self._positions or \
                destination not in self._positions:
            raise ConfigurationError("unknown source or destination")
        costs = {node: float("inf") for node in self._positions}
        costs[source] = 0.0
        previous: dict[int, Link] = {}
        unvisited = set(self._positions)
        while unvisited:
            current = min(unvisited, key=lambda n: costs[n])
            if costs[current] == float("inf"):
                break
            unvisited.remove(current)
            if current == destination:
                break
            for link in self.neighbors(current):
                if link.destination not in unvisited:
                    continue
                etx = 1.0 / (1.0 - link.per)
                candidate = costs[current] + etx
                if candidate < costs[link.destination]:
                    costs[link.destination] = candidate
                    previous[link.destination] = link
        if destination not in previous and source != destination:
            raise ProtocolError(
                f"no usable route from {source} to {destination}")
        path: list[Link] = []
        cursor = destination
        while cursor != source:
            link = previous[cursor]
            path.append(link)
            cursor = link.source
        return list(reversed(path))


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of one end-to-end multi-hop delivery.

    Attributes:
        delivered: whether the packet reached the destination.
        transmissions: total transmissions across all hops (with
            per-hop retries).
        latency_s: end-to-end time including retransmission delays.
        hops: path length.
    """

    delivered: bool
    transmissions: int
    latency_s: float
    hops: int


def simulate_delivery(graph: MeshGraph, path: list[Link],
                      rng: np.random.Generator,
                      max_retries_per_hop: int = 3,
                      fading_sigma_db: float = 2.0) -> DeliveryResult:
    """Send one packet along a route with per-hop ARQ."""
    airtime = graph.params.airtime_s(graph.payload_bytes)
    transmissions = 0
    latency = 0.0
    for link in path:
        delivered = False
        for _ in range(1 + max_retries_per_hop):
            transmissions += 1
            latency += airtime
            rssi = link.rssi_dbm + float(rng.normal(0.0, fading_sigma_db))
            per = packet_error_probability(
                graph.params, rssi, graph.payload_bytes,
                OTA_PREAMBLE_SYMBOLS)
            if rng.random() >= per:
                delivered = True
                break
            latency += 0.1  # retry timeout
        if not delivered:
            return DeliveryResult(delivered=False,
                                  transmissions=transmissions,
                                  latency_s=latency, hops=len(path))
    return DeliveryResult(delivered=True, transmissions=transmissions,
                          latency_s=latency, hops=len(path))


def coverage_report(graph: MeshGraph) -> dict[str, float]:
    """How much of the fleet the gateway reaches, directly and meshed."""
    direct = {l.destination for l in graph.neighbors(GATEWAY_ID)}
    meshed = set()
    for node in graph.deployment.nodes:
        try:
            graph.route(GATEWAY_ID, node.node_id)
            meshed.add(node.node_id)
        except ProtocolError:
            pass
    total = len(graph.deployment.nodes)
    return {
        "nodes": float(total),
        "direct_coverage": len(direct) / total,
        "mesh_coverage": len(meshed) / total,
    }
