"""OTA programming campaigns over a testbed (paper section 5.3, Fig. 14).

The AP programs nodes sequentially; each node's session time depends on
its link quality through the retransmission count.  Running one session
per node yields the distribution Fig. 14 plots as a CDF of programming
time for the LoRa FPGA image, the BLE FPGA image and the (shared) MCU
image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OtaError
from repro.ota.mac import DEFAULT_OTA_PARAMS, OtaLink
from repro.ota.updater import OtaUpdater, UpdateReport
from repro.phy.lora.params import LoRaParams
from repro.testbed.deployment import Deployment, NodePlacement


@dataclass(frozen=True)
class NodeResult:
    """Outcome of programming one node.

    Attributes:
        node_id: testbed identifier.
        distance_m: node-AP distance.
        downlink_rssi_dbm: realized downlink RSSI (with shadowing).
        report: the full per-session update report, or None on failure.
    """

    node_id: int
    distance_m: float
    downlink_rssi_dbm: float
    report: UpdateReport | None

    @property
    def succeeded(self) -> bool:
        """Whether the session completed."""
        return self.report is not None

    @property
    def duration_s(self) -> float:
        """Session duration (inf for failed sessions, for CDF plotting)."""
        return self.report.total_time_s if self.report else float("inf")


@dataclass(frozen=True)
class CampaignResult:
    """All node results for one firmware image."""

    image_label: str
    results: tuple[NodeResult, ...]

    def durations_s(self, successes_only: bool = True) -> np.ndarray:
        """Per-node programming times."""
        durations = [r.duration_s for r in self.results
                     if r.succeeded or not successes_only]
        return np.asarray(durations, dtype=np.float64)

    def mean_duration_s(self) -> float:
        """Average programming time over successful sessions.

        Raises:
            OtaError: if every session failed.
        """
        durations = self.durations_s()
        if durations.size == 0:
            raise OtaError("no node was programmed successfully")
        return float(np.mean(durations))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF points ``(sorted durations, probabilities)``."""
        durations = np.sort(self.durations_s())
        probabilities = np.arange(1, durations.size + 1) / len(self.results)
        return durations, probabilities

    def total_node_energy_j(self) -> float:
        """Summed node-side energy over successful sessions."""
        return sum(r.report.node_energy_j for r in self.results if r.report)


def run_campaign(deployment: Deployment, image: bytes, image_label: str,
                 rng: np.random.Generator,
                 params: LoRaParams = DEFAULT_OTA_PARAMS,
                 is_fpga_image: bool = True) -> CampaignResult:
    """Program every node in the deployment with one image.

    Each node gets a fresh updater (its own flash/MCU state) and a link
    whose RSSI is drawn from the deployment's path-loss model including
    shadowing - so different nodes land at different points of the PER
    curve, which is exactly what spreads the Fig. 14 CDF.
    """
    results = []
    for node in deployment.nodes:
        results.append(_program_node(deployment, node, image, rng, params,
                                     is_fpga_image))
    return CampaignResult(image_label=image_label, results=tuple(results))


def _program_node(deployment: Deployment, node: NodePlacement,
                  image: bytes, rng: np.random.Generator,
                  params: LoRaParams,
                  is_fpga_image: bool) -> NodeResult:
    downlink = deployment.downlink_rssi_dbm(node, rng)
    uplink = deployment.uplink_rssi_dbm(node, rng)
    link = OtaLink(params=params, downlink_rssi_dbm=downlink,
                   uplink_rssi_dbm=uplink)
    updater = OtaUpdater()
    try:
        report = updater.update(image, link, rng, is_fpga_image=is_fpga_image)
    except OtaError:
        report = None
    return NodeResult(node_id=node.node_id, distance_m=node.distance_m,
                      downlink_rssi_dbm=downlink, report=report)
