"""Campus testbed: deployments and OTA programming campaigns."""

from repro.testbed.deployment import (
    Deployment,
    NodePlacement,
    TESTBED_SIZE,
    campus_deployment,
)
from repro.testbed.mobility import (
    MobilePath,
    MobileTransferResult,
    Waypoint,
    simulate_mobile_transfer,
)
from repro.testbed.simulator import (
    CampaignResult,
    NodeResult,
    run_campaign,
)

__all__ = [
    "CampaignResult",
    "MobilePath",
    "MobileTransferResult",
    "Waypoint",
    "simulate_mobile_transfer",
    "Deployment",
    "NodePlacement",
    "NodeResult",
    "TESTBED_SIZE",
    "campus_deployment",
    "run_campaign",
]
