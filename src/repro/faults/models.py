"""Typed, seeded fault models for the OTA robustness harness.

Each model is a frozen configuration dataclass describing *one* way the
campus testbed breaks in practice: bursty packet loss on the LoRa
backbone (a two-state Gilbert-Elliott chain, the standard burst-loss
model), bit corruption that slips past the radio but not the MAC CRC,
NOR-flash page-program failures and stuck bits, node brownouts that
reboot a node mid-transfer, AP outage windows, and MCU hangs that only a
watchdog can clear.

Reproducibility contract: every model carries an explicit keyword-only
``seed``; all randomness in a fault path derives from that seed plus the
node id through independent :func:`numpy.random.default_rng` streams, so
fault sequences are (a) bit-reproducible from configuration alone and
(b) independent of both the session RNG and the order nodes are
simulated in.  The REPRO009 lint rule enforces the explicit-seed part
statically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError

# Distinct sub-stream tags so each model draws from its own generator
# even when the plan-level seed and node id coincide.
_STREAM_LOSS = 1
_STREAM_CORRUPT = 2
_STREAM_FLASH = 3
_STREAM_BROWNOUT = 4
_STREAM_OUTAGE = 5
_STREAM_HANG = 6


def spawn_rng(seed: int, stream: int, node_id: int) -> np.random.Generator:
    """An independent generator for one (model, node) fault stream."""
    return np.random.default_rng([seed, stream, node_id])


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(
            f"{name} must be a probability in [0, 1], got {value!r}")


@dataclass(frozen=True, kw_only=True)
class GilbertElliott:
    """Burst packet loss: a two-state good/bad Markov chain per packet.

    Attributes:
        seed: randomness root for the chain (keyword-only, required).
        p_enter_bad: per-packet probability of a good->bad transition.
        p_exit_bad: per-packet probability of a bad->good transition.
        loss_good: loss probability while in the good state.
        loss_bad: loss probability while in the bad state.
    """

    seed: int
    p_enter_bad: float = 0.05
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))

    def start(self, node_id: int) -> "BurstLossProcess":
        """A fresh per-node chain, seeded independently of other nodes."""
        return BurstLossProcess(
            self, spawn_rng(self.seed, _STREAM_LOSS, node_id))


class BurstLossProcess:
    """The stateful side of :class:`GilbertElliott`: one chain instance."""

    def __init__(self, model: GilbertElliott,
                 rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self.in_bad_state = False

    def step(self) -> bool:
        """Advance one packet; returns True when that packet is lost."""
        if self.in_bad_state:
            if self.rng.random() < self.model.p_exit_bad:
                self.in_bad_state = False
        elif self.rng.random() < self.model.p_enter_bad:
            self.in_bad_state = True
        loss = (self.model.loss_bad if self.in_bad_state
                else self.model.loss_good)
        return bool(self.rng.random() < loss)


@dataclass(frozen=True, kw_only=True)
class CorruptionModel:
    """Bit corruption that survives the radio but not the MAC CRC check.

    A corrupted packet is *delivered* by the link yet fails the node's
    per-packet CRC, so the node refuses to ACK it - the retransmission
    cost of loss with a distinct trace signature.

    Attributes:
        seed: randomness root (keyword-only, required).
        per_packet_prob: probability a delivered data packet is corrupt.
    """

    seed: int
    per_packet_prob: float = 0.02

    def __post_init__(self) -> None:
        _check_probability("per_packet_prob", self.per_packet_prob)

    def start(self, node_id: int) -> np.random.Generator:
        """The per-node corruption draw stream."""
        return spawn_rng(self.seed, _STREAM_CORRUPT, node_id)


@dataclass(frozen=True, kw_only=True)
class FlashFaultModel:
    """NOR-flash misbehaviour: failed page programs and stuck bits.

    Attributes:
        seed: randomness root (keyword-only, required).
        page_failure_prob: probability one page-program operation fails
            outright (the page keeps its pre-program contents).
        stuck_bit_prob: probability one page-program leaves a single bit
            stuck at 1 (NOR programming can only clear bits; a stuck
            cell fails to clear).
    """

    seed: int
    page_failure_prob: float = 0.0
    stuck_bit_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("page_failure_prob", self.page_failure_prob)
        _check_probability("stuck_bit_prob", self.stuck_bit_prob)

    def start(self, node_id: int) -> np.random.Generator:
        """The per-node flash-fault draw stream."""
        return spawn_rng(self.seed, _STREAM_FLASH, node_id)


@dataclass(frozen=True, kw_only=True)
class BrownoutModel:
    """Node brownout/reboot mid-transfer (battery sag, supply glitch).

    Attributes:
        seed: randomness root (keyword-only, required).
        prob_per_fragment: probability the node browns out right after
            acknowledging a fragment.
        reboot_time_s: how long the node is down before it resumes.
    """

    seed: int
    prob_per_fragment: float = 0.001
    reboot_time_s: float = 2.0

    def __post_init__(self) -> None:
        _check_probability("prob_per_fragment", self.prob_per_fragment)
        if self.reboot_time_s <= 0:
            raise FaultInjectionError(
                f"reboot_time_s must be positive, got {self.reboot_time_s!r}")

    def start(self, node_id: int) -> np.random.Generator:
        """The per-node brownout draw stream."""
        return spawn_rng(self.seed, _STREAM_BROWNOUT, node_id)


@dataclass(frozen=True, kw_only=True)
class ApOutageModel:
    """AP downtime windows (power cuts, backhaul loss) on the campaign clock.

    Windows are generated once per plan from the model seed - they are a
    property of the *AP*, shared by every node - as alternating
    exponential up-times and outage durations over a horizon.

    Attributes:
        seed: randomness root (keyword-only, required).
        mean_interval_s: mean up-time between outages.
        mean_duration_s: mean outage length.
        horizon_s: campaign span covered by generated windows.
    """

    seed: int
    mean_interval_s: float = 600.0
    mean_duration_s: float = 30.0
    horizon_s: float = 7200.0

    def __post_init__(self) -> None:
        for name in ("mean_interval_s", "mean_duration_s", "horizon_s"):
            if getattr(self, name) <= 0:
                raise FaultInjectionError(
                    f"{name} must be positive, got {getattr(self, name)!r}")

    def windows(self) -> tuple[tuple[float, float], ...]:
        """The deterministic outage windows, as (start, end) pairs."""
        rng = spawn_rng(self.seed, _STREAM_OUTAGE, 0)
        cursor = 0.0
        spans: list[tuple[float, float]] = []
        while True:
            cursor += float(rng.exponential(self.mean_interval_s))
            if cursor >= self.horizon_s:
                return tuple(spans)
            duration = float(rng.exponential(self.mean_duration_s))
            end = min(cursor + duration, self.horizon_s)
            spans.append((cursor, end))
            cursor = end


@dataclass(frozen=True, kw_only=True)
class HangModel:
    """MCU hangs during decompression/install, cleared by the watchdog.

    Attributes:
        seed: randomness root (keyword-only, required).
        hang_prob: probability the install phase of one session hangs.
    """

    seed: int
    hang_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("hang_prob", self.hang_prob)

    def start(self, node_id: int) -> np.random.Generator:
        """The per-node hang draw stream."""
        return spawn_rng(self.seed, _STREAM_HANG, node_id)
