"""Hardware-level fault wrappers: a flash that sometimes misbehaves.

:class:`FaultyFlash` subclasses the :class:`~repro.ota.flash.Mx25R6435F`
model and injects the plan's :class:`~repro.faults.models.FlashFaultModel`
faults at page-program granularity: a failed program leaves the page's
prior contents untouched (the operation still costs time and energy),
and a stuck bit leaves one cell reading 1 that the program meant to
clear.  Both surface later as read-back verification mismatches, which
is exactly how the hardened installer is expected to catch them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ota.flash import PAGE_BYTES, Mx25R6435F
from repro.sim import FAULT_FLASH

if TYPE_CHECKING:
    from repro.faults.plan import NodeFaults


class FaultyFlash(Mx25R6435F):
    """An MX25R6435F whose page programs occasionally fail.

    Faults draw from the bound :class:`NodeFaults` streams, so the same
    plan seed reproduces the same failed pages and stuck bits.  Stats
    still count failed operations - the device spent the time and energy
    even when the cells did not take.
    """

    def __init__(self, faults: "NodeFaults",
                 capacity_bytes: int | None = None) -> None:
        if capacity_bytes is None:
            super().__init__()
        else:
            super().__init__(capacity_bytes)
        faults.require_flash_model()
        self.faults = faults
        self.inject = True
        """Set False to model factory programming (golden provisioning
        on the bench, before the node ships with its flaky array)."""

    def _emit(self, label: str) -> None:
        faults = self.faults
        faults.injected[FAULT_FLASH] = faults.injected.get(FAULT_FLASH, 0) + 1
        if faults.timeline is not None:
            faults.timeline.record(FAULT_FLASH, "flash", label=label)

    def program(self, address: int, data: bytes) -> None:
        """Program per page, injecting failed operations and stuck bits.

        Raises:
            FlashError: as the base model does, for writes that would
                need 0 -> 1 transitions or fall out of range.
        """
        if not self.inject:
            super().program(address, data)
            return
        cursor = 0
        while cursor < len(data):
            page_end = ((address + cursor) // PAGE_BYTES + 1) * PAGE_BYTES
            chunk = data[cursor:cursor + page_end - (address + cursor)]
            chunk_addr = address + cursor
            if self.faults.flash_page_failed():
                # The operation runs (and is billed) but the cells keep
                # their pre-program contents.
                self._check_range(chunk_addr, len(chunk))
                self._bytes_programmed += len(chunk)
                self._page_programs += 1
                self._emit(f"page program failed at {chunk_addr:#x}")
            else:
                super().program(chunk_addr, chunk)
                bit = self.faults.flash_stuck_bit(len(chunk))
                if bit is not None:
                    byte_off, mask = bit // 8, 1 << (bit % 8)
                    if not chunk[byte_off] & mask:
                        self._data[chunk_addr + byte_off] |= mask
                        self._emit(
                            f"stuck bit at {chunk_addr + byte_off:#x}"
                            f" mask {mask:#04x}")
            cursor += len(chunk)
