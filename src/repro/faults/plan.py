"""Fault plans and the timeline-integrated per-node injector.

A :class:`FaultPlan` bundles the optional fault models for one campaign
run.  :meth:`FaultPlan.bind` derives a :class:`NodeFaults` injector for
one node: the stateful per-node fault processes (seeded independently of
the session RNG and of node iteration order) plus the hooks the hardened
OTA pipeline polls.  Every injected fault is emitted as a namespaced
``fault.*`` :class:`~repro.sim.SimEvent` on the bound timeline, so a
trace shows exactly what was done to the system and when - separate from
the ``ota.*`` events that show how the pipeline coped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.models import (
    ApOutageModel,
    BrownoutModel,
    BurstLossProcess,
    CorruptionModel,
    FlashFaultModel,
    GilbertElliott,
    HangModel,
)
from repro.sim import (
    FAULT_BROWNOUT,
    FAULT_CORRUPT,
    FAULT_HANG,
    FAULT_LOSS,
    FAULT_OUTAGE,
    Timeline,
)


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """Everything that will go wrong in one campaign, fully seeded.

    Attributes:
        seed: plan-level randomness root, folded into every per-node
            stream (keyword-only, required).
        burst_loss: Gilbert-Elliott packet loss on the backbone link.
        corruption: delivered-but-corrupt data packets.
        flash: page-program failures / stuck bits in the node's flash.
        brownout: node reboot mid-transfer.
        ap_outage: AP downtime windows on the campaign clock.
        hang: MCU hangs during install, cleared by the watchdog.
    """

    seed: int
    burst_loss: GilbertElliott | None = None
    corruption: CorruptionModel | None = None
    flash: FlashFaultModel | None = None
    brownout: BrownoutModel | None = None
    ap_outage: ApOutageModel | None = None
    hang: HangModel | None = None

    def _fold(self, node_id: int) -> int:
        """Mix the plan seed with a node id into one stream index."""
        return int(np.random.SeedSequence([self.seed, node_id])
                   .generate_state(1)[0])

    def bind(self, node_id: int,
             timeline: Timeline | None = None) -> "NodeFaults":
        """The stateful per-node injector for ``node_id``.

        The injector's fault streams are functions of ``(plan seed,
        model seed, node id)`` only, so binding nodes in any order - or
        rebinding the same node - reproduces identical fault sequences.
        """
        folded = self._fold(node_id)
        return NodeFaults(self, node_id=folded, timeline=timeline)


class NodeFaults:
    """One node's fault processes, bound to a timeline for tracing.

    The hardened OTA pipeline polls the ``*_now``/``*_lost`` hooks; each
    hook draws from its own seeded stream and, when a fault fires,
    records the matching ``fault.*`` event on :attr:`timeline` (when one
    is attached).  ``injected`` counts fires per kind for assertions.
    """

    def __init__(self, plan: FaultPlan, node_id: int,
                 timeline: Timeline | None = None) -> None:
        self.plan = plan
        self.node_id = node_id
        self.timeline = timeline
        self.time_offset_s = 0.0
        self.injected: dict[str, int] = {}
        self._loss: BurstLossProcess | None = (
            plan.burst_loss.start(node_id) if plan.burst_loss else None)
        self._corrupt_rng = (plan.corruption.start(node_id)
                             if plan.corruption else None)
        self._flash_rng = plan.flash.start(node_id) if plan.flash else None
        self._brownout_rng = (plan.brownout.start(node_id)
                              if plan.brownout else None)
        self._hang_rng = plan.hang.start(node_id) if plan.hang else None
        self._outage_windows = (plan.ap_outage.windows()
                                if plan.ap_outage else ())

    # -- timeline binding --------------------------------------------------

    def attach(self, timeline: Timeline, offset_s: float = 0.0) -> None:
        """Point fault events at (a new) ``timeline``.

        ``offset_s`` maps the timeline's local clock onto the campaign
        clock - AP outage windows are campaign-absolute, while per-node
        session events are recorded on per-attempt sub-timelines that
        start at zero.
        """
        self.timeline = timeline
        self.time_offset_s = offset_s

    def _emit(self, kind: str, label: str, duration_s: float = 0.0,
              power_w: float | None = None) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.timeline is not None:
            self.timeline.record(kind, "faults", label=label,
                                 duration_s=duration_s, power_w=power_w)

    def campaign_now_s(self) -> float:
        """Current campaign-absolute time per the bound timeline."""
        local = self.timeline.now_s if self.timeline is not None else 0.0
        return self.time_offset_s + local

    # -- hooks polled by the hardened pipeline -----------------------------

    def ap_down_now(self) -> bool:
        """Whether the campaign clock currently sits in an outage window."""
        now = self.campaign_now_s()
        return any(start <= now < end for start, end in self._outage_windows)

    def packet_lost(self, uplink: bool, label: str) -> bool:
        """Forced packet loss: AP outage first, then the burst chain."""
        if self._outage_windows and self.ap_down_now():
            self._emit(FAULT_OUTAGE,
                       f"{label} during AP outage")
            return True
        if self._loss is not None and self._loss.step():
            direction = "uplink" if uplink else "downlink"
            self._emit(FAULT_LOSS, f"{direction} {label} (burst state)")
            return True
        return False

    def packet_corrupted(self, label: str) -> bool:
        """Whether a delivered data packet arrives with corrupt bits."""
        if self._corrupt_rng is None:
            return False
        if self._corrupt_rng.random() < self.plan.corruption.per_packet_prob:
            self._emit(FAULT_CORRUPT, f"{label} corrupted in flight")
            return True
        return False

    def brownout_now(self) -> bool:
        """Whether the node browns out after the fragment it just ACKed.

        A firing records the reboot dwell on the timeline (the node is
        down for the model's ``reboot_time_s``).
        """
        if self._brownout_rng is None:
            return False
        model = self.plan.brownout
        if self._brownout_rng.random() < model.prob_per_fragment:
            self._emit(FAULT_BROWNOUT,
                       f"node {self.node_id} brownout, "
                       f"{model.reboot_time_s:g} s reboot",
                       duration_s=model.reboot_time_s)
            return True
        return False

    def hangs_now(self) -> bool:
        """Whether the install phase of this session hangs the MCU."""
        if self._hang_rng is None:
            return False
        if self._hang_rng.random() < self.plan.hang.hang_prob:
            self._emit(FAULT_HANG, f"node {self.node_id} MCU hang")
            return True
        return False

    def flash_page_failed(self) -> bool:
        """Whether one page-program operation fails outright."""
        if self._flash_rng is None:
            return False
        return bool(self._flash_rng.random()
                    < self.plan.flash.page_failure_prob)

    def flash_stuck_bit(self, page_bytes: int) -> int | None:
        """A stuck bit index within a page-program, or None.

        Returns a flat bit offset in ``[0, page_bytes * 8)`` when the
        fault fires; the flash wrapper maps it onto the written bytes.
        """
        if self._flash_rng is None:
            return None
        if self._flash_rng.random() < self.plan.flash.stuck_bit_prob:
            return int(self._flash_rng.integers(0, page_bytes * 8))
        return None

    def require_flash_model(self) -> FlashFaultModel:
        """The flash model, for wiring a faulty flash wrapper.

        Raises:
            FaultInjectionError: when the plan has no flash model.
        """
        if self.plan.flash is None:
            raise FaultInjectionError(
                "this fault plan has no flash model to wire")
        return self.plan.flash
