"""Deterministic fault injection for the OTA robustness harness.

The package splits cleanly into *what can go wrong* and *doing it*:

* :mod:`repro.faults.models` — frozen, seeded configuration dataclasses
  for each fault class (Gilbert-Elliott burst loss, bit corruption,
  flash page faults, brownouts, AP outages, MCU hangs).
* :mod:`repro.faults.plan` — :class:`FaultPlan` bundles models for a
  campaign; :meth:`FaultPlan.bind` yields a per-node :class:`NodeFaults`
  injector whose hooks the hardened OTA pipeline polls, emitting a
  ``fault.*`` :class:`~repro.sim.SimEvent` for every injected failure.
* :mod:`repro.faults.hardware` — :class:`FaultyFlash`, an MX25R6435F
  whose page programs occasionally fail or leave stuck bits.
* :mod:`repro.faults.service` — service-layer chaos for the campaign
  service: worker crashes, workload hangs, and torn journal writes,
  bundled by :class:`ServiceFaultPlan` into per-job :class:`JobFaults`
  injectors.

Reproducibility contract: every model takes an explicit keyword-only
``seed`` (lint rule REPRO009), fault streams are independent
``default_rng([seed, stream, node_id])`` generators, and a plan with the
same seed injects bit-identical fault sequences regardless of node
iteration order.  With ``faults=None`` the pipeline makes no fault draws
at all, so default-path results stay bit-identical to the unhardened
code (the ``tests/test_sim_parity.py`` contract).
"""

from repro.faults.models import (
    ApOutageModel,
    BrownoutModel,
    BurstLossProcess,
    CorruptionModel,
    FlashFaultModel,
    GilbertElliott,
    HangModel,
    spawn_rng,
)
from repro.faults.plan import FaultPlan, NodeFaults
from repro.faults.service import (
    JobFaults,
    JournalTornWriteModel,
    ServiceFaultPlan,
    WorkerCrashModel,
    WorkloadHangModel,
)

# Last: hardware transitively imports repro.ota, which imports the plan
# and model names above right back out of this package.
from repro.faults.hardware import FaultyFlash

__all__ = [
    "ApOutageModel",
    "BrownoutModel",
    "BurstLossProcess",
    "CorruptionModel",
    "FaultPlan",
    "FaultyFlash",
    "FlashFaultModel",
    "GilbertElliott",
    "HangModel",
    "JobFaults",
    "JournalTornWriteModel",
    "NodeFaults",
    "ServiceFaultPlan",
    "WorkerCrashModel",
    "WorkloadHangModel",
    "spawn_rng",
]
