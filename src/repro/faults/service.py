"""Service-layer fault models: worker crashes, workload hangs, torn writes.

The campaign service (:mod:`repro.service`) fails differently from a
node in the field: its workers crash mid-job, its workloads hang and
starve the queue, and the job journal it depends on for crash recovery
can itself be torn by the crash (a partially flushed last record).
These models follow the same reproducibility contract as the OTA fault
models in :mod:`repro.faults.models`: explicit keyword-only seeds,
order-independent per-job ``default_rng([seed, stream, job_id])``
streams via :func:`repro.faults.models.spawn_rng`, and a
:class:`ServiceFaultPlan` whose :meth:`~ServiceFaultPlan.bind` yields a
per-job :class:`JobFaults` injector emitting ``fault.*`` SimEvents on
the service timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.models import _check_probability, spawn_rng
from repro.sim import (
    FAULT_WORKER_CRASH,
    FAULT_WORKLOAD_HANG,
    Timeline,
)

# Continue the sub-stream tag sequence from repro.faults.models so no
# service stream can collide with a node-level fault stream under a
# shared seed.
_STREAM_WORKER_CRASH = 7
_STREAM_WORKLOAD_HANG = 8
_STREAM_TORN_WRITE = 9


@dataclass(frozen=True, kw_only=True)
class WorkerCrashModel:
    """A service worker dies mid-attempt (OOM kill, segfault, eviction).

    The supervisor notices via missed heartbeats and re-dispatches the
    job under its retry budget.

    Attributes:
        seed: randomness root (keyword-only, required).
        crash_prob: probability one execution attempt crashes the worker.
    """

    seed: int
    crash_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("crash_prob", self.crash_prob)

    def start(self, job_id: int) -> np.random.Generator:
        """The per-job crash draw stream."""
        return spawn_rng(self.seed, _STREAM_WORKER_CRASH, job_id)


@dataclass(frozen=True, kw_only=True)
class WorkloadHangModel:
    """A workload wedges without exiting (deadlock, spin, stuck I/O).

    The worker process stays alive - heartbeats keep flowing - so only
    the per-job watchdog deadline catches it.

    Attributes:
        seed: randomness root (keyword-only, required).
        hang_prob: probability one execution attempt hangs.
    """

    seed: int
    hang_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("hang_prob", self.hang_prob)

    def start(self, job_id: int) -> np.random.Generator:
        """The per-job hang draw stream."""
        return spawn_rng(self.seed, _STREAM_WORKLOAD_HANG, job_id)


@dataclass(frozen=True, kw_only=True)
class JournalTornWriteModel:
    """A crash tears the last journal record mid-flush.

    When the chaos harness kills the service at a journal append
    boundary, this model decides whether the record being appended made
    it to disk whole, partially (a torn tail the recovery path must
    drop), or - the ``keep == 0`` draw - not at all.

    Attributes:
        seed: randomness root (keyword-only, required).
        torn_prob: probability the crashed append leaves a torn tail.
    """

    seed: int
    torn_prob: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("torn_prob", self.torn_prob)

    def tear(self, seq: int, total_bytes: int) -> int | None:
        """How many bytes of record ``seq`` survive, or None for all.

        Returns a byte count in ``[0, total_bytes)`` when the tear
        fires (so at least the trailing newline is always lost), or
        ``None`` when the record was flushed whole before the crash.
        The draw stream is keyed by the record sequence number, so the
        outcome is independent of how the crash point was chosen.
        """
        if total_bytes <= 0:
            raise FaultInjectionError(
                f"total_bytes must be positive, got {total_bytes!r}")
        rng = spawn_rng(self.seed, _STREAM_TORN_WRITE, seq)
        if rng.random() >= self.torn_prob:
            return None
        return int(rng.integers(0, total_bytes))


@dataclass(frozen=True, kw_only=True)
class ServiceFaultPlan:
    """Everything that will go wrong in one service session, fully seeded.

    Attributes:
        seed: plan-level randomness root, folded into every per-job
            stream (keyword-only, required).
        worker_crash: worker death mid-attempt, caught by heartbeats.
        workload_hang: wedged workloads, caught by the job watchdog.
        torn_write: torn journal tails at chaos crash points.
    """

    seed: int
    worker_crash: WorkerCrashModel | None = None
    workload_hang: WorkloadHangModel | None = None
    torn_write: JournalTornWriteModel | None = None

    def _fold(self, job_id: int) -> int:
        """Mix the plan seed with a job id into one stream index."""
        return int(np.random.SeedSequence([self.seed, job_id])
                   .generate_state(1)[0])

    def bind(self, job_id: int, label: str,
             timeline: Timeline | None = None) -> "JobFaults":
        """The stateful per-job injector for ``job_id``.

        Fault streams are functions of ``(plan seed, model seed, job
        id)`` only, so binding jobs in any order - or rebinding the same
        job during journal replay - reproduces identical fault draws.
        """
        folded = self._fold(job_id)
        return JobFaults(self, job_id=folded, label=label, timeline=timeline)


class JobFaults:
    """One job's fault processes, bound to the service timeline.

    The supervised execution loop polls the ``*_now`` hooks once per
    attempt; each hook draws from its own seeded stream and, when a
    fault fires, records the matching ``fault.*`` event.  ``injected``
    counts fires per kind for assertions.
    """

    def __init__(self, plan: ServiceFaultPlan, job_id: int, label: str,
                 timeline: Timeline | None = None) -> None:
        self.plan = plan
        self.job_id = job_id
        self.label = label
        self.timeline = timeline
        self.injected: dict[str, int] = {}
        self._crash_rng = (plan.worker_crash.start(job_id)
                           if plan.worker_crash else None)
        self._hang_rng = (plan.workload_hang.start(job_id)
                          if plan.workload_hang else None)

    def _emit(self, kind: str, label: str, duration_s: float = 0.0) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.timeline is not None:
            self.timeline.record(kind, "faults", label=label,
                                 duration_s=duration_s)

    def worker_crashes_now(self, attempt: int, dwell_s: float) -> bool:
        """Whether this attempt's worker dies before finishing.

        A firing records the supervisor's missed-heartbeat dwell
        ``dwell_s`` on the timeline - the span between the crash and
        the supervisor declaring the worker dead.
        """
        if self._crash_rng is None:
            return False
        if self._crash_rng.random() < self.plan.worker_crash.crash_prob:
            self._emit(FAULT_WORKER_CRASH,
                       f"{self.label} worker crash (attempt {attempt})",
                       duration_s=dwell_s)
            return True
        return False

    def workload_hangs_now(self, attempt: int) -> bool:
        """Whether this attempt's workload wedges without exiting.

        A zero-duration marker: the watchdog reset the service emits
        carries the detection dwell.
        """
        if self._hang_rng is None:
            return False
        if self._hang_rng.random() < self.plan.workload_hang.hang_prob:
            self._emit(FAULT_WORKLOAD_HANG,
                       f"{self.label} workload hang (attempt {attempt})")
            return True
        return False
