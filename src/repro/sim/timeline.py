"""The shared simulation timeline: monotonic clock + append-only ledger.

A :class:`Timeline` is the one place simulated time and energy advance.
Components call :meth:`Timeline.record` to log a typed interval; by
default the record also moves the clock forward, which is how the
stop-and-wait OTA loop, the MCU duty cycle and the FPGA boot all share
one notion of "now".  Concurrent activity (flash programming under a
radio transfer, merged sub-session traces) is recorded with
``advance=False`` and an explicit start time.

Views never mutate the ledger: time and energy totals are *replayed*
from the events in append order, which makes the derived sums
bit-identical to the sequential ``+=`` accumulators they replaced (see
``tests/test_sim_parity.py``).
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.sim.events import SimEvent

Subscriber = Callable[[SimEvent], None]


class Timeline:
    """Monotonic sim clock plus an append-only ledger of typed events.

    Attributes:
        now_s: current simulation time.  Moves forward via advancing
            :meth:`record` calls and :meth:`advance_to`; never backwards.
    """

    def __init__(self) -> None:
        self.now_s = 0.0
        self._events: list[SimEvent] = []
        self._subscribers: list[Subscriber] = []

    # -- ledger ------------------------------------------------------------

    def record(self, kind: str, component: str, label: str = "",
               duration_s: float = 0.0, power_w: float | None = None,
               energy_override_j: float | None = None,
               advance: bool = True,
               t_start_s: float | None = None) -> SimEvent:
        """Append one event; advancing events also move the clock.

        Args:
            kind: taxonomy tag (see :mod:`repro.sim.events`).
            component: owning hardware block.
            label: free-text detail.
            duration_s: interval length (>= 0).
            power_w: constant power across the interval, if known.
            energy_override_j: explicit energy for non-constant-power
                activity.
            advance: move ``now_s`` forward by ``duration_s``.  Must be
                ``False`` when ``t_start_s`` is given.
            t_start_s: explicit start for concurrent/out-of-band events;
                defaults to ``now_s``.

        Raises:
            ConfigurationError: for negative durations/powers, or an
                advancing event with an explicit start time.
        """
        if t_start_s is not None and advance:
            raise ConfigurationError(
                "events with an explicit start time cannot advance the "
                "clock; pass advance=False")
        start = self.now_s if t_start_s is None else t_start_s
        event = SimEvent(
            t_start_s=start, duration_s=duration_s, kind=kind,
            component=component, label=label, power_w=power_w,
            energy_override_j=energy_override_j, advanced=advance)
        self._append(event)
        if advance:
            self.now_s += event.duration_s
        return event

    def advance_to(self, time_s: float) -> None:
        """Jump the clock forward to an absolute time (no ledger entry).

        Raises:
            ConfigurationError: when ``time_s`` is in the past.
        """
        if time_s < self.now_s:
            raise ConfigurationError(
                f"cannot advance to {time_s!r} before now {self.now_s!r}")
        self.now_s = time_s

    def merge(self, other: "Timeline", offset_s: float = 0.0) -> None:
        """Splice another timeline's events in, shifted by ``offset_s``.

        Merged events never advance this timeline's clock: the caller
        accounts for the sub-timeline's span explicitly (e.g. as an
        ``ota.session`` span event).  Used to embed per-session packet
        detail into a campaign-level ledger for tracing.
        """
        for event in other._events:
            self._append(event.shifted(offset_s))

    def _append(self, event: SimEvent) -> None:
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, callback: Subscriber) -> Subscriber:
        """Register a callback invoked with every appended event."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        """Remove a previously registered callback.

        Raises:
            ConfigurationError: when the callback is not subscribed.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            raise ConfigurationError(
                "callback is not subscribed to this timeline") from None

    # -- introspection -----------------------------------------------------

    @property
    def events(self) -> tuple[SimEvent, ...]:
        """The ledger, in append order (immutable snapshot)."""
        return tuple(self._events)

    def checkpoint(self) -> int:
        """Current ledger length; pass to queries as ``since``."""
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def components(self) -> tuple[str, ...]:
        """Distinct components, in order of first appearance."""
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.component, None)
        return tuple(seen)

    # -- replay views ------------------------------------------------------

    def _select(self, kinds: Iterable[str] | None, component: str | None,
                since: int, advancing_only: bool) -> Iterator[SimEvent]:
        kind_set = None if kinds is None else frozenset(kinds)
        for event in self._events[since:]:
            if advancing_only and not event.advanced:
                continue
            if kind_set is not None and event.kind not in kind_set:
                continue
            if component is not None and event.component != component:
                continue
            yield event

    def time_s(self, kinds: Iterable[str] | None = None,
               component: str | None = None, since: int = 0,
               advancing_only: bool = False) -> float:
        """Total duration of matching events, summed in append order."""
        total = 0.0
        for event in self._select(kinds, component, since, advancing_only):
            total += event.duration_s
        return total

    def energy_j(self, kinds: Iterable[str] | None = None,
                 component: str | None = None, since: int = 0,
                 advancing_only: bool = False) -> float:
        """Total energy of matching events, summed in append order."""
        total = 0.0
        for event in self._select(kinds, component, since, advancing_only):
            total += event.energy_j
        return total

    def count(self, kinds: Iterable[str] | None = None,
              component: str | None = None, since: int = 0,
              advancing_only: bool = False) -> int:
        """Number of matching events."""
        return sum(1 for _ in self._select(
            kinds, component, since, advancing_only))

    def time_by_component(self, since: int = 0) -> dict[str, float]:
        """Per-component busy time (replayed in append order)."""
        totals: dict[str, float] = {}
        for event in self._events[since:]:
            totals[event.component] = totals.get(event.component, 0.0) \
                + event.duration_s
        return totals

    def energy_by_component(self, since: int = 0) -> dict[str, float]:
        """Per-component energy (replayed in append order)."""
        totals: dict[str, float] = {}
        for event in self._events[since:]:
            totals[event.component] = totals.get(event.component, 0.0) \
                + event.energy_j
        return totals

    def total_energy_j(self, since: int = 0) -> float:
        """Whole-ledger energy in append order."""
        return self.energy_j(since=since)

    def __repr__(self) -> str:
        return (f"<Timeline now={self.now_s:.6f}s "
                f"events={len(self._events)}>")


def _shifted_ledgers(timelines: Sequence[Timeline],
                     offsets_s: Sequence[float] | None
                     ) -> tuple[list[list[SimEvent]], float]:
    """Shift each input ledger, sorted by start time; plus the merged now.

    Per-node ledgers are near-chronological already (the clock is
    monotonic), but non-advancing events recorded with an explicit
    earlier ``t_start_s`` — concurrent flash activity, spliced
    sub-sessions — can sit out of order, so each input gets a stable
    per-ledger sort (O(n) on already-ordered input) before the k-way
    merge assumes sortedness.
    """
    if offsets_s is None:
        offsets_s = [0.0] * len(timelines)
    if len(offsets_s) != len(timelines):
        raise ConfigurationError(
            f"got {len(timelines)} timelines but {len(offsets_s)} offsets")
    key = attrgetter("t_start_s")
    ledgers = [sorted((event.shifted(offset) for event in timeline),
                      key=key)
               for timeline, offset in zip(timelines, offsets_s)]
    now_s = max((timeline.now_s + offset
                 for timeline, offset in zip(timelines, offsets_s)),
                default=0.0)
    return ledgers, now_s


def merge_timelines(timelines: Sequence[Timeline],
                    offsets_s: Sequence[float] | None = None) -> Timeline:
    """Merge many per-node ledgers into one chronological timeline.

    Uses a ``heapq.merge`` k-way merge over the already-ordered input
    ledgers — O(N log k) comparisons for N total events over k inputs,
    versus the O(N log N) of concatenating and re-sorting.  ``heapq``'s
    merge is stable across iterables (ties go to the earlier input), so
    the result is bit-identical to the re-sorting
    :func:`merge_timelines_reference` twin (see
    ``tests/test_sim_stream.py``).

    Merged events never advance the output clock (they are re-emitted
    via :meth:`SimEvent.shifted`); the merged ``now_s`` is the latest
    input clock plus its offset.

    Args:
        timelines: the input ledgers, e.g. one per fleet node.
        offsets_s: optional per-input time shift (defaults to zero).

    Raises:
        ConfigurationError: when offsets and timelines disagree in
            length.
    """
    ledgers, now_s = _shifted_ledgers(timelines, offsets_s)
    merged = Timeline()
    for event in heapq.merge(*ledgers, key=attrgetter("t_start_s")):
        merged._append(event)
    merged.advance_to(now_s)
    return merged


def merge_timelines_reference(timelines: Sequence[Timeline],
                              offsets_s: Sequence[float] | None = None
                              ) -> Timeline:
    """Concatenate-and-stable-sort twin of :func:`merge_timelines`.

    Kept as the plain-Python specification of the merge order: events
    in global start-time order, ties broken by input order then by
    within-input append order (exactly what one stable sort over the
    concatenation yields).
    """
    ledgers, now_s = _shifted_ledgers(timelines, offsets_s)
    events = [event for ledger in ledgers for event in ledger]
    events.sort(key=attrgetter("t_start_s"))
    merged = Timeline()
    for event in events:
        merged._append(event)
    merged.advance_to(now_s)
    return merged
