"""Hierarchical timeline rollups and the bounded-memory JSONL spill.

A 20-node campaign can afford a full :class:`~repro.sim.Timeline`
ledger — a few hundred thousand :class:`~repro.sim.events.SimEvent`
objects.  A 100k-node fleet campaign cannot: tens of millions of event
rows would dominate RAM before the first query ran.  This module holds
the two fleet-scale alternatives:

* :class:`TimelineRollup` — the hierarchical aggregate of a ledger:
  per ``(kind, component)`` event counts, busy time and energy.  Rollups
  merge associatively, so per-shard aggregates combine into a campaign
  aggregate without ever materializing the union ledger.
* :class:`StreamingLedgerWriter` — an incremental JSON-Lines writer
  with a bounded in-memory row buffer.  Producers append one row at a
  time; the buffer drains to disk every ``buffer_rows`` rows, so the
  resident cost of spilling a million-row ledger is a few kilobytes.
  :func:`read_jsonl_records` is the matching generator-based reader.

The spill format follows :mod:`repro.sim.trace`: one JSON object per
line, each carrying a ``record`` tag naming its type.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ConfigurationError
from repro.sim.timeline import Timeline

DEFAULT_BUFFER_ROWS = 1024
"""Rows buffered in memory before the spill writer drains to disk."""


class RollupBin:
    """One cell of a rollup: aggregate of all events sharing a key.

    Attributes:
        count: number of events aggregated.
        time_s: summed event durations.
        energy_j: summed event energies.
    """

    __slots__ = ("count", "time_s", "energy_j")

    def __init__(self, count: int = 0, time_s: float = 0.0,
                 energy_j: float = 0.0) -> None:
        self.count = count
        self.time_s = time_s
        self.energy_j = energy_j

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RollupBin):
            return NotImplemented
        return (self.count == other.count
                and self.time_s == other.time_s
                and self.energy_j == other.energy_j)

    def __repr__(self) -> str:
        return (f"RollupBin(count={self.count}, time_s={self.time_s!r}, "
                f"energy_j={self.energy_j!r})")


class TimelineRollup:
    """Per ``(kind, component)`` aggregate of a (possibly virtual) ledger.

    The rollup is the fleet-scale stand-in for a full ledger: it answers
    the questions the replay views answer (how many events of each kind,
    how much busy time, how much energy) without holding the events.
    Merging is associative and order-preserving over float sums only when
    callers keep a fixed merge order — the fleet engine always merges
    shards in shard order, which is what makes its totals shard-count
    invariant.
    """

    def __init__(self) -> None:
        self._bins: dict[tuple[str, str], RollupBin] = {}

    # -- accumulation ------------------------------------------------------

    def add(self, kind: str, component: str, count: int = 1,
            time_s: float = 0.0, energy_j: float = 0.0) -> None:
        """Fold ``count`` events worth of time/energy into one cell.

        Raises:
            ConfigurationError: for negative counts or durations.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if time_s < 0.0:
            raise ConfigurationError(f"time must be >= 0, got {time_s!r}")
        if count == 0 and time_s == 0.0 and energy_j == 0.0:
            return
        cell = self._bins.get((kind, component))
        if cell is None:
            cell = RollupBin()
            self._bins[(kind, component)] = cell
        cell.count += count
        cell.time_s += time_s
        cell.energy_j += energy_j

    def merge(self, other: "TimelineRollup") -> None:
        """Fold another rollup into this one, cell by cell."""
        for (kind, component), cell in other._bins.items():
            self.add(kind, component, count=cell.count,
                     time_s=cell.time_s, energy_j=cell.energy_j)

    @classmethod
    def from_timeline(cls, timeline: Timeline) -> "TimelineRollup":
        """Aggregate a materialized ledger (replayed in append order)."""
        rollup = cls()
        for event in timeline:
            rollup.add(event.kind, event.component,
                       time_s=event.duration_s, energy_j=event.energy_j)
        return rollup

    # -- views -------------------------------------------------------------

    @property
    def bins(self) -> dict[tuple[str, str], RollupBin]:
        """The cells, keyed by ``(kind, component)`` (live view)."""
        return self._bins

    def count(self, kind: str, component: str | None = None) -> int:
        """Events of ``kind`` (for one component, or summed over all)."""
        return sum(cell.count for (k, c), cell in self._bins.items()
                   if k == kind and (component is None or c == component))

    def time_s(self, kind: str, component: str | None = None) -> float:
        """Busy time of ``kind`` (one component, or summed over all)."""
        return sum(cell.time_s for (k, c), cell in self._bins.items()
                   if k == kind and (component is None or c == component))

    def by_kind(self) -> dict[str, int]:
        """Event counts collapsed over components, keyed by kind."""
        totals: dict[str, int] = {}
        for (kind, _), cell in self._bins.items():
            totals[kind] = totals.get(kind, 0) + cell.count
        return totals

    @property
    def total_events(self) -> int:
        """Events aggregated across every cell."""
        return sum(cell.count for cell in self._bins.values())

    @property
    def total_time_s(self) -> float:
        """Busy time aggregated across every cell."""
        return sum(cell.time_s for cell in self._bins.values())

    @property
    def total_energy_j(self) -> float:
        """Energy aggregated across every cell."""
        return sum(cell.energy_j for cell in self._bins.values())

    # -- serialization -----------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Spill rows (``record: "rollup"``), sorted for determinism."""
        return [{"record": "rollup", "kind": kind, "component": component,
                 "count": cell.count, "time_s": cell.time_s,
                 "energy_j": cell.energy_j}
                for (kind, component), cell in sorted(self._bins.items())]

    @classmethod
    def from_rows(cls, rows: Iterable[dict[str, Any]]) -> "TimelineRollup":
        """Rebuild a rollup from its spill rows.

        Raises:
            ConfigurationError: for rows that are not rollup records.
        """
        rollup = cls()
        for row in rows:
            if row.get("record") != "rollup":
                raise ConfigurationError(
                    f"expected a rollup row, got {row.get('record')!r}")
            rollup.add(row["kind"], row["component"],
                       count=int(row["count"]),
                       time_s=float(row["time_s"]),
                       energy_j=float(row["energy_j"]))
        return rollup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimelineRollup):
            return NotImplemented
        return self._bins == other._bins

    def __repr__(self) -> str:
        return (f"<TimelineRollup cells={len(self._bins)} "
                f"events={self.total_events}>")


class StreamingLedgerWriter:
    """Incremental JSONL writer with a bounded in-memory buffer.

    Rows accumulate in a list of pre-serialized lines and drain to the
    underlying file every ``buffer_rows`` rows, so writing a ledger of
    any length keeps O(``buffer_rows``) rows resident.  The writer
    tracks ``rows_written`` and the high-water mark ``max_buffered`` so
    callers (and the fleet benchmark) can assert the bound held.

    Use as a context manager::

        with StreamingLedgerWriter(path) as writer:
            writer.write_row({"record": "node", ...})
    """

    def __init__(self, path: str | Path,
                 buffer_rows: int = DEFAULT_BUFFER_ROWS) -> None:
        if buffer_rows < 1:
            raise ConfigurationError(
                f"buffer_rows must be >= 1, got {buffer_rows}")
        self.path = Path(path)
        self.buffer_rows = buffer_rows
        self.rows_written = 0
        self.max_buffered = 0
        self._buffer: list[str] = []
        self._handle = self.path.open("w", encoding="utf-8")
        self._closed = False

    def write_row(self, record: dict[str, Any]) -> None:
        """Serialize one row; drains the buffer when it fills.

        Raises:
            ConfigurationError: when the writer is already closed.
        """
        if self._closed:
            raise ConfigurationError("writer is closed")
        self._buffer.append(json.dumps(record))
        if len(self._buffer) > self.max_buffered:
            self.max_buffered = len(self._buffer)
        if len(self._buffer) >= self.buffer_rows:
            self.flush()

    def write_rows(self, records: Iterable[dict[str, Any]]) -> None:
        """Write many rows through the same bounded buffer."""
        for record in records:
            self.write_row(record)

    def flush(self) -> None:
        """Drain the buffer to disk."""
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self.rows_written += len(self._buffer)
            self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "StreamingLedgerWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl_records(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield spill rows one at a time (never loads the whole file).

    Raises:
        ConfigurationError: for a row that is not a JSON object.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if not isinstance(row, dict):
                raise ConfigurationError(
                    f"expected a JSON object per line, got {row!r}")
            yield row
