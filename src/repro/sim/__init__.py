"""Shared simulation timeline: one clock, one ledger, many views.

Every number the paper reports — the Fig. 14 OTA programming CDFs, the
Table 3 power breakdown, the Table 4 timings, the battery-lifetime
claims — is an integral over a timeline of radio/MCU/FPGA state
changes.  This package provides the single event-driven core those
integrals are computed on:

* :class:`~repro.sim.timeline.Timeline` — a monotonic simulation clock
  plus an append-only ledger of typed :class:`~repro.sim.events.SimEvent`
  records (radio mode switches, packet TX/RX/timeouts, MCU mode
  transitions, FPGA configuration, flash activity, sleep intervals),
  each carrying component, label, duration and power draw.
* :mod:`repro.sim.trace` — JSONL and Chrome ``trace_event`` exporters
  so a campaign can be inspected in a flame-graph viewer, plus the
  JSONL reader that round-trips a ledger.
* :mod:`repro.sim.stream` — fleet-scale aggregation: hierarchical
  :class:`~repro.sim.stream.TimelineRollup` aggregates and the
  bounded-memory :class:`~repro.sim.stream.StreamingLedgerWriter`
  JSONL spill, so a 100k-node campaign's ledger never has to
  materialize in RAM.
* :func:`~repro.sim.timeline.merge_timelines` — ``heapq``-based k-way
  merge of many per-node ledgers into one chronological trace (with
  its re-sorting ``merge_timelines_reference`` parity twin).

The protocol, MCU, FPGA, power and testbed layers all emit events into
a ``Timeline`` instead of keeping private ``clock +=`` accumulators;
their reports are views derived from the ledger (see the parity tests
in ``tests/test_sim_parity.py`` for the bit-exactness contract).
"""

from repro.sim.events import (
    CONTROL_RX,
    CONTROL_TX,
    FAULT_BROWNOUT,
    FAULT_CORRUPT,
    FAULT_FLASH,
    FAULT_HANG,
    FAULT_KINDS,
    FAULT_LOSS,
    FAULT_OUTAGE,
    FAULT_WORKER_CRASH,
    FAULT_WORKLOAD_HANG,
    FLASH_BUSY,
    FPGA_CONFIG,
    MCU_DECOMPRESS,
    MCU_MODE,
    MCU_RUN,
    METER_SEGMENT,
    OTA_CHECKPOINT,
    OTA_FAILURE,
    OTA_REQUEST,
    OTA_RESUME,
    OTA_RETRY_WAIT,
    OTA_ROLLBACK,
    OTA_SESSION,
    OTA_VERIFY,
    PACKET_DELIVERED,
    PACKET_RX,
    PACKET_TIMEOUT,
    PACKET_TX,
    RADIO_MODE,
    SCHEDULER_FIRE,
    SERVICE_ADMIT,
    SERVICE_BREAKER_CLOSE,
    SERVICE_BREAKER_HALF_OPEN,
    SERVICE_BREAKER_OPEN,
    SERVICE_CACHE_HIT,
    SERVICE_COMPLETE,
    SERVICE_DISPATCH,
    SERVICE_EXECUTE,
    SERVICE_KINDS,
    SERVICE_PROGRESS,
    SERVICE_QUARANTINE,
    SERVICE_REJECT,
    SERVICE_RETRY,
    SERVICE_SHED,
    SERVICE_SUBMIT,
    SLEEP,
    WATCHDOG_RESET,
    SimEvent,
)
from repro.sim.stream import (
    RollupBin,
    StreamingLedgerWriter,
    TimelineRollup,
    read_jsonl_records,
)
from repro.sim.timeline import (
    Timeline,
    merge_timelines,
    merge_timelines_reference,
)
from repro.sim.trace import (
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CONTROL_RX",
    "CONTROL_TX",
    "FAULT_BROWNOUT",
    "FAULT_CORRUPT",
    "FAULT_FLASH",
    "FAULT_HANG",
    "FAULT_KINDS",
    "FAULT_LOSS",
    "FAULT_OUTAGE",
    "FAULT_WORKER_CRASH",
    "FAULT_WORKLOAD_HANG",
    "FLASH_BUSY",
    "FPGA_CONFIG",
    "MCU_DECOMPRESS",
    "MCU_MODE",
    "MCU_RUN",
    "METER_SEGMENT",
    "OTA_CHECKPOINT",
    "OTA_FAILURE",
    "OTA_REQUEST",
    "OTA_RESUME",
    "OTA_RETRY_WAIT",
    "OTA_ROLLBACK",
    "OTA_SESSION",
    "OTA_VERIFY",
    "PACKET_DELIVERED",
    "PACKET_RX",
    "PACKET_TIMEOUT",
    "PACKET_TX",
    "RADIO_MODE",
    "SCHEDULER_FIRE",
    "SERVICE_ADMIT",
    "SERVICE_BREAKER_CLOSE",
    "SERVICE_BREAKER_HALF_OPEN",
    "SERVICE_BREAKER_OPEN",
    "SERVICE_CACHE_HIT",
    "SERVICE_COMPLETE",
    "SERVICE_DISPATCH",
    "SERVICE_EXECUTE",
    "SERVICE_KINDS",
    "SERVICE_PROGRESS",
    "SERVICE_QUARANTINE",
    "SERVICE_REJECT",
    "SERVICE_RETRY",
    "SERVICE_SHED",
    "SERVICE_SUBMIT",
    "SLEEP",
    "WATCHDOG_RESET",
    "RollupBin",
    "SimEvent",
    "StreamingLedgerWriter",
    "Timeline",
    "TimelineRollup",
    "from_jsonl",
    "merge_timelines",
    "merge_timelines_reference",
    "read_jsonl_records",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
