"""Trace exporters for the simulation timeline.

Two formats:

* **JSONL** — one JSON object per line (a ``timeline`` header followed
  by one ``event`` row per ledger entry).  Loss-free: :func:`from_jsonl`
  reconstructs an equal :class:`Timeline`, so traces can be archived
  with benchmark results and re-queried later.
* **Chrome ``trace_event``** — the ``{"traceEvents": [...]}`` document
  ``chrome://tracing`` / Perfetto load.  Components map to threads and
  every interval becomes a complete (``"ph": "X"``) event, which renders
  a campaign as a flame-style lane chart: radio packets, MCU
  decompression and FPGA boots each on their own lane.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.sim.events import SimEvent
from repro.sim.timeline import Timeline

_HEADER_RECORD = "timeline"
_EVENT_RECORD = "event"

MICROSECONDS_PER_SECOND = 1e6
"""Chrome trace timestamps are microseconds."""


# -- JSONL ------------------------------------------------------------------

def _event_to_dict(event: SimEvent) -> dict:
    return {
        "record": _EVENT_RECORD,
        "t_start_s": event.t_start_s,
        "duration_s": event.duration_s,
        "kind": event.kind,
        "component": event.component,
        "label": event.label,
        "power_w": event.power_w,
        "energy_override_j": event.energy_override_j,
        "advanced": event.advanced,
    }


def to_jsonl(timeline: Timeline) -> str:
    """Serialize a timeline as JSON Lines (header + one row per event)."""
    lines = [json.dumps({"record": _HEADER_RECORD,
                         "now_s": timeline.now_s,
                         "events": len(timeline)})]
    lines.extend(json.dumps(_event_to_dict(event)) for event in timeline)
    return "\n".join(lines) + "\n"


def write_jsonl(timeline: Timeline, path: str | Path) -> Path:
    """Write the JSONL serialization to ``path``."""
    target = Path(path)
    target.write_text(to_jsonl(timeline), encoding="utf-8")
    return target


def from_jsonl(text: str) -> Timeline:
    """Reconstruct a timeline from its JSONL serialization.

    Raises:
        ConfigurationError: for a missing/invalid header or malformed
            event rows.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError("empty timeline serialization")
    header = json.loads(lines[0])
    if header.get("record") != _HEADER_RECORD:
        raise ConfigurationError(
            f"expected a timeline header, got {header.get('record')!r}")
    timeline = Timeline()
    for line in lines[1:]:
        row = json.loads(line)
        if row.get("record") != _EVENT_RECORD:
            raise ConfigurationError(
                f"expected an event row, got {row.get('record')!r}")
        timeline._append(SimEvent(
            t_start_s=row["t_start_s"],
            duration_s=row["duration_s"],
            kind=row["kind"],
            component=row["component"],
            label=row.get("label", ""),
            power_w=row.get("power_w"),
            energy_override_j=row.get("energy_override_j"),
            advanced=bool(row.get("advanced", False))))
    timeline.advance_to(float(header["now_s"]))
    return timeline


# -- Chrome trace_event -----------------------------------------------------

def to_chrome_trace(timeline: Timeline) -> dict:
    """Render the ledger as a Chrome ``trace_event`` document.

    Components become threads (one lane each in the viewer); every
    event becomes a complete ``"X"`` slice carrying its kind, power and
    energy in ``args``.  Zero-duration markers are emitted as instant
    ``"i"`` events so delivered-fragment and failure marks stay visible.
    """
    components = timeline.components()
    tids = {component: index + 1
            for index, component in enumerate(components)}
    trace_events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
         "args": {"name": component}}
        for component, tid in tids.items()]
    for event in timeline:
        base = {
            "name": event.label or event.kind,
            "cat": event.kind,
            "pid": 0,
            "tid": tids[event.component],
            "ts": event.t_start_s * MICROSECONDS_PER_SECOND,
            "args": {
                "kind": event.kind,
                "power_w": event.power_w,
                "energy_j": event.energy_j,
                "advanced": event.advanced,
            },
        }
        if event.duration_s > 0:
            base["ph"] = "X"
            base["dur"] = event.duration_s * MICROSECONDS_PER_SECOND
        else:
            base["ph"] = "i"
            base["s"] = "t"
        trace_events.append(base)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str | Path) -> Path:
    """Write the Chrome trace JSON document to ``path``."""
    target = Path(path)
    target.write_text(json.dumps(to_chrome_trace(timeline)),
                      encoding="utf-8")
    return target
