"""Typed simulation events: the rows of the timeline ledger.

Event *kinds* form a small closed taxonomy (dotted ``layer.action``
strings) so views can select by behaviour class without string
matching on free-text labels.  The taxonomy mirrors the state changes
the paper's evaluation integrates over:

==================  =====================================================
kind                meaning
==================  =====================================================
``radio.mode``      transceiver state switch (sleep/TRXOFF/RX/TX dwell)
``packet.tx``       one packet transmission (ACKs, NACKs, uplink data)
``packet.rx``       one packet reception (firmware fragments, downlink)
``packet.timeout``  an ACK-or-data wait that expired
``packet.done``     zero-duration marker: a fragment was delivered
``control.tx``      protocol control message sent (ready message)
``control.rx``      protocol control message received (request, end)
``mcu.mode``        MCU power-mode transition (zero-duration marker)
``mcu.run``         MCU dwell in its current mode
``mcu.decompress``  node-side miniLZO block decompression
``fpga.config``     quad-SPI bitstream load / fabric boot
``flash.busy``      external flash erase/program activity (concurrent)
``sleep``           duty-cycle sleep interval
``meter.segment``   a constant-power :class:`EnergyMeter` segment
``scheduler.fire``  a discrete-event scheduler action ran
``ota.request``     AP campaign announcement airtime
``ota.session``     one node's whole programming session (span)
``ota.retry``       AP waiting out a node's next listen window
``ota.failure``     zero-duration marker: a session or fragment died
``ota.checkpoint``  resume checkpoint persisted to the flash metadata log
``ota.resume``      a rebooted node resumed its transfer mid-image
``ota.rollback``    CRC-verify failed; node fell back to the golden image
``ota.verify``      image CRC verification before boot
``watchdog.reset``  the watchdog expired and rebooted a hung node
``fault.loss``      injected packet loss (Gilbert-Elliott burst state)
``fault.corrupt``   injected bit corruption on a delivered packet
``fault.flash``     injected flash page-program failure or stuck bits
``fault.brownout``  injected node brownout/reboot mid-transfer
``fault.outage``    packet fell inside an injected AP outage window
``fault.hang``      injected MCU hang (watchdog-detected)
``fault.worker_crash``  injected service-worker crash mid-attempt (the
                    span is the supervisor's missed-heartbeat dwell)
``fault.workload_hang``  injected workload hang (zero-duration marker;
                    the watchdog reset carries the detection dwell)
``service.submit``  a tenant submitted a job to the campaign service
``service.admit``   the job cleared quota/rate-limit admission
``service.reject``  admission refused the job (quota or rate limit)
``service.shed``    admission shed the job at an overload high-water mark
``service.dispatch``  the scheduler picked the job off the queue
``service.progress``  a workload adapter reported a progress milestone
``service.execute``  the workload's whole virtual-time execution span
``service.retry``   the supervisor backed off before re-running a job
``service.cache``   the result cache answered the job (zero recompute),
                    or evicted an entry that failed digest re-verification
``service.complete``  the job finished and its result was recorded
``service.quarantine``  the job struck out and was quarantined as poison
``service.breaker.open``  a per-workload circuit breaker tripped open
``service.breaker.half_open``  an open breaker started a probe window
``service.breaker.close``  a half-open breaker's probe succeeded
==================  =====================================================

The ``fault.*`` namespace is reserved for *injected* failures from
:mod:`repro.faults`: traces carry exactly what was done to the system,
distinct from the ``ota.*`` events that show how it coped.  The
``service.*`` namespace is reserved for the multi-tenant campaign
service (:mod:`repro.service`): its virtual-time scheduler journals
every admission, dispatch and completion decision as ledger rows so a
tenant can stream a job's progress.

Events carry an optional ``power_w`` so energy falls out of the ledger
as ``power x duration``; activities whose energy is not a constant-power
integral (flash erase/program mixes) store an explicit
``energy_override_j`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

RADIO_MODE = "radio.mode"
PACKET_TX = "packet.tx"
PACKET_RX = "packet.rx"
PACKET_TIMEOUT = "packet.timeout"
PACKET_DELIVERED = "packet.done"
CONTROL_TX = "control.tx"
CONTROL_RX = "control.rx"
MCU_MODE = "mcu.mode"
MCU_RUN = "mcu.run"
MCU_DECOMPRESS = "mcu.decompress"
FPGA_CONFIG = "fpga.config"
FLASH_BUSY = "flash.busy"
SLEEP = "sleep"
METER_SEGMENT = "meter.segment"
SCHEDULER_FIRE = "scheduler.fire"
OTA_REQUEST = "ota.request"
OTA_SESSION = "ota.session"
OTA_RETRY_WAIT = "ota.retry"
OTA_FAILURE = "ota.failure"
OTA_CHECKPOINT = "ota.checkpoint"
OTA_RESUME = "ota.resume"
OTA_ROLLBACK = "ota.rollback"
OTA_VERIFY = "ota.verify"
WATCHDOG_RESET = "watchdog.reset"
FAULT_LOSS = "fault.loss"
FAULT_CORRUPT = "fault.corrupt"
FAULT_FLASH = "fault.flash"
FAULT_BROWNOUT = "fault.brownout"
FAULT_OUTAGE = "fault.outage"
FAULT_HANG = "fault.hang"
FAULT_WORKER_CRASH = "fault.worker_crash"
FAULT_WORKLOAD_HANG = "fault.workload_hang"
SERVICE_SUBMIT = "service.submit"
SERVICE_ADMIT = "service.admit"
SERVICE_REJECT = "service.reject"
SERVICE_SHED = "service.shed"
SERVICE_DISPATCH = "service.dispatch"
SERVICE_PROGRESS = "service.progress"
SERVICE_EXECUTE = "service.execute"
SERVICE_RETRY = "service.retry"
SERVICE_CACHE_HIT = "service.cache"
SERVICE_COMPLETE = "service.complete"
SERVICE_QUARANTINE = "service.quarantine"
SERVICE_BREAKER_OPEN = "service.breaker.open"
SERVICE_BREAKER_HALF_OPEN = "service.breaker.half_open"
SERVICE_BREAKER_CLOSE = "service.breaker.close"

#: Every kind the ledger understands, for validation and docs.
ALL_KINDS = frozenset({
    RADIO_MODE, PACKET_TX, PACKET_RX, PACKET_TIMEOUT, PACKET_DELIVERED,
    CONTROL_TX, CONTROL_RX, MCU_MODE, MCU_RUN, MCU_DECOMPRESS,
    FPGA_CONFIG, FLASH_BUSY, SLEEP, METER_SEGMENT, SCHEDULER_FIRE,
    OTA_REQUEST, OTA_SESSION, OTA_RETRY_WAIT, OTA_FAILURE,
    OTA_CHECKPOINT, OTA_RESUME, OTA_ROLLBACK, OTA_VERIFY, WATCHDOG_RESET,
    FAULT_LOSS, FAULT_CORRUPT, FAULT_FLASH, FAULT_BROWNOUT, FAULT_OUTAGE,
    FAULT_HANG, FAULT_WORKER_CRASH, FAULT_WORKLOAD_HANG,
    SERVICE_SUBMIT, SERVICE_ADMIT, SERVICE_REJECT, SERVICE_SHED,
    SERVICE_DISPATCH, SERVICE_PROGRESS, SERVICE_EXECUTE, SERVICE_RETRY,
    SERVICE_CACHE_HIT, SERVICE_COMPLETE, SERVICE_QUARANTINE,
    SERVICE_BREAKER_OPEN, SERVICE_BREAKER_HALF_OPEN, SERVICE_BREAKER_CLOSE,
})

#: The injected-failure namespace (every kind repro.faults may emit).
FAULT_KINDS = frozenset({
    FAULT_LOSS, FAULT_CORRUPT, FAULT_FLASH, FAULT_BROWNOUT, FAULT_OUTAGE,
    FAULT_HANG, FAULT_WORKER_CRASH, FAULT_WORKLOAD_HANG,
})

#: The campaign-service namespace (every kind repro.service may emit).
SERVICE_KINDS = frozenset({
    SERVICE_SUBMIT, SERVICE_ADMIT, SERVICE_REJECT, SERVICE_SHED,
    SERVICE_DISPATCH, SERVICE_PROGRESS, SERVICE_EXECUTE, SERVICE_RETRY,
    SERVICE_CACHE_HIT, SERVICE_COMPLETE, SERVICE_QUARANTINE,
    SERVICE_BREAKER_OPEN, SERVICE_BREAKER_HALF_OPEN, SERVICE_BREAKER_CLOSE,
})


@dataclass(frozen=True)
class SimEvent:
    """One ledger row: a typed state interval on the simulation timeline.

    Attributes:
        t_start_s: absolute simulation time the interval begins.
        duration_s: interval length (zero for instantaneous markers).
        kind: taxonomy tag, one of the module-level kind constants.
        component: which hardware block the interval belongs to
            (``"node_radio"``, ``"mcu"``, ``"fpga"``, ``"flash"``...).
        label: free-text detail (``"data seq=3"``, ``"lpm3"``...).
        power_w: power draw across the interval, if constant.
        energy_override_j: explicit energy for activities that are not
            constant-power integrals (takes precedence over ``power_w``).
        advanced: whether recording this event moved the shared clock
            (``False`` for concurrent/background activity and for
            events merged in from a sub-timeline).
    """

    t_start_s: float
    duration_s: float
    kind: str
    component: str
    label: str = ""
    power_w: float | None = None
    energy_override_j: float | None = None
    advanced: bool = True

    def __post_init__(self) -> None:
        if self.t_start_s < 0:
            raise ConfigurationError(
                f"event start must be >= 0, got {self.t_start_s!r}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {self.duration_s!r}")
        if self.power_w is not None and self.power_w < 0:
            raise ConfigurationError(
                f"power must be >= 0, got {self.power_w!r}")
        if not self.kind:
            raise ConfigurationError("event kind must be non-empty")
        if not self.component:
            raise ConfigurationError("event component must be non-empty")

    @property
    def t_end_s(self) -> float:
        """Absolute simulation time the interval ends."""
        return self.t_start_s + self.duration_s

    @property
    def energy_j(self) -> float:
        """Energy the interval consumed (0 when no power is attributed)."""
        if self.energy_override_j is not None:
            return self.energy_override_j
        if self.power_w is None:
            return 0.0
        return self.power_w * self.duration_s

    def shifted(self, offset_s: float) -> "SimEvent":
        """A copy translated by ``offset_s``, marked as non-advancing."""
        return SimEvent(
            t_start_s=self.t_start_s + offset_s,
            duration_s=self.duration_s,
            kind=self.kind,
            component=self.component,
            label=self.label,
            power_w=self.power_w,
            energy_override_j=self.energy_override_j,
            advanced=False)
