"""The workload registry: the one sanctioned door to the engines.

Every computation the service can run is an adapter registered here by
kind.  The registry is the REPRO014 service-discipline boundary: code
in :mod:`repro.service` and the CLI must reach engines *through*
``WorkloadRegistry.invoke`` (whose adapters live in
:mod:`repro.service.workloads`, the single exempted module), never by
calling :func:`repro.testbed.run_campaign` and friends directly.

Invocations are counted per kind, which is how the tests assert the
result cache's zero-recompute property: resubmitting an identical
seeded spec must leave the counter unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError, ReproError

ProgressEmit = Callable[[str], None]
"""Adapter progress callback: one milestone label per call."""

WorkloadRunner = Callable[[Mapping[str, Any], int, ProgressEmit],
                          tuple[Any, float]]
"""An adapter: ``(config, seed, emit) -> (payload, virtual_cost_s)``.

The payload must be JSON-able (it is canonicalized into the
:class:`~repro.service.jobspec.JobResult`); the virtual cost is the
deterministic span the scheduler charges the virtual clock for the
execution.
"""


class UnknownWorkloadError(ReproError):
    """A job named a workload kind no adapter is registered for."""


class WorkloadRegistry:
    """Mapping of workload kinds to adapters, with invocation counters."""

    def __init__(self) -> None:
        self._runners: dict[str, WorkloadRunner] = {}
        self._invocations: dict[str, int] = {}

    def register(self, kind: str, runner: WorkloadRunner,
                 replace: bool = False) -> WorkloadRunner:
        """Register ``runner`` under ``kind``.

        Raises:
            ConfigurationError: for an empty kind, or a duplicate
                registration without ``replace=True``.
        """
        if not kind:
            raise ConfigurationError("workload kind must be non-empty")
        if kind in self._runners and not replace:
            raise ConfigurationError(
                f"workload {kind!r} is already registered; "
                f"pass replace=True to override")
        self._runners[kind] = runner
        self._invocations.setdefault(kind, 0)
        return runner

    def kinds(self) -> tuple[str, ...]:
        """Registered workload kinds, sorted for stable display."""
        return tuple(sorted(self._runners))

    def __contains__(self, kind: str) -> bool:
        return kind in self._runners

    def invoke(self, kind: str, config: Mapping[str, Any], seed: int,
               emit: ProgressEmit) -> tuple[Any, float]:
        """Run the adapter for ``kind`` and count the invocation.

        Raises:
            UnknownWorkloadError: for an unregistered kind.
        """
        try:
            runner = self._runners[kind]
        except KeyError:
            raise UnknownWorkloadError(
                f"no workload registered for kind {kind!r}; "
                f"known kinds: {', '.join(self.kinds()) or '(none)'}"
            ) from None
        self._invocations[kind] += 1
        return runner(config, seed, emit)

    def count_replayed(self, kind: str) -> None:
        """Count a journal-replayed run without executing the adapter.

        Crash recovery substitutes journaled results for engine
        invocations; bumping the counter keeps the per-kind totals —
        and everything fingerprinted from them — identical to the
        uninterrupted session's.

        Raises:
            UnknownWorkloadError: for an unregistered kind.
        """
        if kind not in self._runners:
            raise UnknownWorkloadError(
                f"no workload registered for kind {kind!r}; "
                f"known kinds: {', '.join(self.kinds()) or '(none)'}")
        self._invocations[kind] += 1

    def invocations(self, kind: str | None = None) -> int:
        """Engine runs so far, for one kind or in total."""
        if kind is not None:
            return self._invocations.get(kind, 0)
        return sum(self._invocations.values())

    def invocation_counts(self) -> dict[str, int]:
        """Per-kind invocation counters, key-sorted."""
        return {kind: self._invocations[kind]
                for kind in sorted(self._invocations)}
