"""Deterministic priority job queue.

A binary heap ordered by ``(priority, submission sequence)``: lower
priority values dispatch first, and jobs of equal priority dispatch in
exact admission order.  The tiebreaker makes heap order total, so pop
order is a pure function of the push sequence — no identity hashing,
no insertion-order hash-map effects, nothing the determinism double-run
could catch varying across interpreters.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.service.api import Job


class JobQueue:
    """Priority queue of admitted jobs awaiting dispatch."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, "Job"]] = []

    def push(self, job: "Job") -> None:
        """Enqueue an admitted job under its spec's priority band."""
        heapq.heappush(self._heap, (job.spec.priority, job.job_id, job))

    def pop(self) -> "Job":
        """Dequeue the most urgent job (FIFO within a priority band).

        Raises:
            ConfigurationError: when the queue is empty.
        """
        if not self._heap:
            raise ConfigurationError("job queue is empty")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
