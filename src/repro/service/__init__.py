"""Testbed-as-a-service: the multi-tenant campaign service.

The service turns the repo's engines (OTA campaigns, fleet sharding,
link-layer sweeps, LoRaWAN ADR) into schedulable workloads behind one
front door:

* :mod:`repro.service.jobspec` — typed job specs/results with a
  canonical serialization and a SHA-256 content address;
* :mod:`repro.service.cache` — the content-addressed result cache
  (identical seeded jobs dedupe with zero engine recompute);
* :mod:`repro.service.tenancy` — per-tenant quotas and token buckets;
* :mod:`repro.service.queue` — the deterministic priority queue;
* :mod:`repro.service.registry` / :mod:`repro.service.workloads` —
  the REPRO014 boundary and the engine adapters behind it;
* :mod:`repro.service.api` — :class:`CampaignService`, the virtual-time
  scheduler tying it all together on a :class:`repro.sim.Timeline`.
"""

from repro.service.api import (
    ADMISSION_OVERHEAD_S,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_REJECTED,
    JOB_RUNNING,
    CampaignService,
    Job,
    ServiceStats,
)
from repro.service.cache import DEFAULT_RESULT_CACHE_ENTRIES, ResultCache
from repro.service.jobspec import (
    DEFAULT_TENANT,
    PRIORITY_BATCH,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    JobResult,
    JobSpec,
    canonical_json,
    content_address,
)
from repro.service.queue import JobQueue
from repro.service.registry import (
    UnknownWorkloadError,
    WorkloadRegistry,
)
from repro.service.tenancy import (
    TenantConfig,
    TenantCounters,
    TenantState,
    TokenBucket,
)
from repro.service.workloads import BUILTIN_WORKLOADS, default_registry

__all__ = [
    "ADMISSION_OVERHEAD_S",
    "BUILTIN_WORKLOADS",
    "DEFAULT_RESULT_CACHE_ENTRIES",
    "DEFAULT_TENANT",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_REJECTED",
    "JOB_RUNNING",
    "PRIORITY_BATCH",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "CampaignService",
    "Job",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "ServiceStats",
    "TenantConfig",
    "TenantCounters",
    "TenantState",
    "TokenBucket",
    "UnknownWorkloadError",
    "WorkloadRegistry",
    "canonical_json",
    "content_address",
    "default_registry",
]
