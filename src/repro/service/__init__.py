"""Testbed-as-a-service: the multi-tenant campaign service.

The service turns the repo's engines (OTA campaigns, fleet sharding,
link-layer sweeps, LoRaWAN ADR) into schedulable workloads behind one
front door:

* :mod:`repro.service.jobspec` — typed job specs/results with a
  canonical serialization and a SHA-256 content address;
* :mod:`repro.service.cache` — the content-addressed result cache
  (identical seeded jobs dedupe with zero engine recompute);
* :mod:`repro.service.tenancy` — per-tenant quotas and token buckets;
* :mod:`repro.service.queue` — the deterministic priority queue;
* :mod:`repro.service.registry` / :mod:`repro.service.workloads` —
  the REPRO014 boundary and the engine adapters behind it;
* :mod:`repro.service.api` — :class:`CampaignService`, the virtual-time
  scheduler tying it all together on a :class:`repro.sim.Timeline`;
* :mod:`repro.service.resilience` — crash recovery (the write-ahead
  job journal), supervised workers, circuit breakers and load shedding.
"""

from repro.service.api import (
    ADMISSION_OVERHEAD_S,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUARANTINED,
    JOB_QUEUED,
    JOB_REJECTED,
    JOB_RUNNING,
    TERMINAL_STATES,
    CampaignService,
    Job,
    ServiceStats,
)
from repro.service.cache import DEFAULT_RESULT_CACHE_ENTRIES, ResultCache
from repro.service.jobspec import (
    DEFAULT_TENANT,
    PRIORITY_BATCH,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    JobResult,
    JobSpec,
    canonical_json,
    content_address,
)
from repro.service.queue import JobQueue
from repro.service.registry import (
    UnknownWorkloadError,
    WorkloadRegistry,
)
from repro.service.resilience import (
    BreakerConfig,
    CircuitBreaker,
    CrashPlan,
    HeartbeatMonitor,
    JobJournal,
    SheddingPolicy,
    SupervisorConfig,
    read_journal,
)
from repro.service.tenancy import (
    TenantConfig,
    TenantCounters,
    TenantState,
    TokenBucket,
)
from repro.service.workloads import BUILTIN_WORKLOADS, default_registry

__all__ = [
    "ADMISSION_OVERHEAD_S",
    "BUILTIN_WORKLOADS",
    "DEFAULT_RESULT_CACHE_ENTRIES",
    "DEFAULT_TENANT",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_QUARANTINED",
    "JOB_QUEUED",
    "JOB_REJECTED",
    "JOB_RUNNING",
    "PRIORITY_BATCH",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "TERMINAL_STATES",
    "BreakerConfig",
    "CampaignService",
    "CircuitBreaker",
    "CrashPlan",
    "HeartbeatMonitor",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "ServiceStats",
    "SheddingPolicy",
    "SupervisorConfig",
    "TenantConfig",
    "TenantCounters",
    "TenantState",
    "TokenBucket",
    "UnknownWorkloadError",
    "WorkloadRegistry",
    "canonical_json",
    "content_address",
    "default_registry",
]
