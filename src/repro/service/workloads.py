"""Built-in workload adapters: every engine behind one registry.

Each adapter wraps one engine the CLI used to call directly — platform
summary, power table, LoRa/BLE sweeps, the campus OTA campaign, the
fleet engine and the ADR study — behind the uniform
``(config, seed, emit) -> (payload, virtual_cost_s)`` contract of
:class:`~repro.service.registry.WorkloadRegistry`.

Two invariants matter here:

* **Draw-sequence parity.**  An adapter reproduces its legacy CLI
  code path *exactly* — same generator construction point
  (:func:`repro.seeding.job_rng`), same engine call order, same draw
  sequence — so a service-routed job is bit-identical to the direct
  library call it replaced (pinned in ``tests/test_service_parity.py``).
* **Deterministic virtual cost.**  The cost an adapter reports is a
  pure function of its results (simulated campaign spans, trial
  counts), never of wall time, so the service's virtual clock is
  replayable.

This module is the single REPRO014 exemption: engines may be called
directly here and nowhere else under ``repro/service/`` or the CLI.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.seeding import job_rng
from repro.service.registry import ProgressEmit, WorkloadRegistry

ADMIN_COST_S = 1e-3
"""Virtual cost of table-lookup workloads (info, power)."""

SWEEP_TRIAL_COST_S = 1e-4
"""Virtual cost charged per sweep trial (symbol/bit/packet)."""

ADR_NODE_COST_S = 1.0
"""Virtual cost charged per deployment node in the ADR study."""

#: FPGA utilization per campaign image label (the legacy CLI table).
CAMPAIGN_IMAGE_UTILIZATION = {"lora": 0.1125, "ble": 0.03}

CAMPAIGN_BITSTREAM_SEED = 42
"""The legacy CLI's fixed bitstream-content seed (not the job seed)."""


class _Config:
    """Typed reader over a job's config mapping with typo detection."""

    def __init__(self, kind: str, config: Mapping[str, Any]) -> None:
        self._kind = kind
        self._config = dict(config)
        self._seen: set[str] = set()

    def take(self, name: str, default: Any) -> Any:
        self._seen.add(name)
        return self._config.get(name, default)

    def finish(self) -> None:
        unknown = set(self._config) - self._seen
        if unknown:
            raise ConfigurationError(
                f"unknown config keys for workload {self._kind!r}: "
                f"{sorted(unknown)}")


def run_info(config: Mapping[str, Any], seed: int,
             emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """Platform summary: cost, FPGA budgets, operation timings."""
    from repro.core.timing import platform_timings
    from repro.fpga import LFE5U_25F_LUTS, lora_rx_design, lora_tx_design
    from repro.platforms import total_cost_usd

    reader = _Config("info", config)
    spreading_factor = reader.take("spreading_factor", 8)
    reader.finish()
    emit("platform tables")
    payload = {
        "unit_cost_usd": float(total_cost_usd()),
        "fpga_luts": int(LFE5U_25F_LUTS),
        "modem_sf": int(spreading_factor),
        "lora_tx_luts": int(lora_tx_design(spreading_factor).luts),
        "lora_rx_luts": int(lora_rx_design(spreading_factor).luts),
        "timings_ms": [[operation, float(milliseconds)]
                       for operation, milliseconds
                       in platform_timings().as_table()],
    }
    return payload, ADMIN_COST_S


def run_power(config: Mapping[str, Any], seed: int,
              emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """Battery power per platform state (the legacy ``repro power``)."""
    from repro.power import PlatformState, PowerManagementUnit

    reader = _Config("power", config)
    tx_power_dbm = float(reader.take("tx_power_dbm", 14.0))
    reader.finish()
    pmu = PowerManagementUnit()
    rows = [(PlatformState.SLEEP, {}),
            (PlatformState.MCU_ONLY, {}),
            (PlatformState.IQ_TX, {"tx_power_dbm": tx_power_dbm}),
            (PlatformState.IQ_RX, {}),
            (PlatformState.CONCURRENT_RX, {}),
            (PlatformState.BACKBONE_RX, {}),
            (PlatformState.BACKBONE_TX, {})]
    table = []
    for state, kwargs in rows:
        pmu.enter_state(state, **kwargs)
        table.append([state.value, float(pmu.battery_power_w())])
    emit(f"{len(table)} platform states")
    return {"states": table, "tx_power_dbm": tx_power_dbm}, ADMIN_COST_S


def _sweep_rssi_grid(start: float, stop: float,
                     step: float) -> np.ndarray:
    """The legacy CLI's descending RSSI grid (inclusive of ``stop``)."""
    return np.arange(start, stop - 0.5, -step)


def run_sweep_lora(config: Mapping[str, Any], seed: int,
                   emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """Chirp SER vs RSSI sweep (the legacy ``repro sweep-lora``)."""
    from repro.core.sweeps import lora_symbol_error_rate
    from repro.phy.lora import LoRaParams

    reader = _Config("sweep-lora", config)
    spreading_factor = int(reader.take("spreading_factor", 8))
    bandwidth_khz = float(reader.take("bandwidth_khz", 125.0))
    start = float(reader.take("start_dbm", -110.0))
    stop = float(reader.take("stop_dbm", -134.0))
    step = float(reader.take("step_db", 3.0))
    symbols = int(reader.take("symbols", 150))
    reader.finish()

    rng = job_rng(seed)
    params = LoRaParams(spreading_factor, bandwidth_khz * 1e3)
    points = []
    for rssi in _sweep_rssi_grid(start, stop, step):
        point = lora_symbol_error_rate(params, float(rssi), symbols, rng)
        points.append({"rssi_dbm": float(point.rssi_dbm),
                       "error_rate": float(point.error_rate),
                       "trials": int(point.trials)})
        emit(f"rssi {point.rssi_dbm:.1f} dBm")
    payload = {"describe": params.describe(), "symbols": symbols,
               "points": points}
    cost = sum(point["trials"] for point in points) * SWEEP_TRIAL_COST_S
    return payload, cost


def run_sweep_ble(config: Mapping[str, Any], seed: int,
                  emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """BLE beacon BER vs RSSI sweep (the legacy ``repro sweep-ble``)."""
    from repro.core.sweeps import ble_beacon_error_rate

    reader = _Config("sweep-ble", config)
    start = float(reader.take("start_dbm", -80.0))
    stop = float(reader.take("stop_dbm", -98.0))
    step = float(reader.take("step_db", 3.0))
    packets = int(reader.take("packets", 8))
    reader.finish()

    rng = job_rng(seed)
    points = []
    for rssi in _sweep_rssi_grid(start, stop, step):
        point = ble_beacon_error_rate(float(rssi), packets, rng)
        points.append({"rssi_dbm": float(point.rssi_dbm),
                       "error_rate": float(point.error_rate),
                       "trials": int(point.trials)})
        emit(f"rssi {point.rssi_dbm:.1f} dBm")
    payload = {"packets": packets, "points": points}
    cost = sum(point["trials"] for point in points) * SWEEP_TRIAL_COST_S
    return payload, cost


def run_testbed_campaign(config: Mapping[str, Any], seed: int,
                         emit: ProgressEmit
                         ) -> tuple[dict[str, Any], float]:
    """Campus OTA programming campaign (the legacy ``repro campaign``)."""
    from repro.fpga import generate_bitstream
    from repro.testbed import campus_deployment, run_campaign

    reader = _Config("campaign", config)
    image_label = reader.take("image", "ble")
    nodes = int(reader.take("nodes", 20))
    reader.finish()
    if image_label not in CAMPAIGN_IMAGE_UTILIZATION:
        raise ConfigurationError(
            f"unknown campaign image {image_label!r}; choose from "
            f"{sorted(CAMPAIGN_IMAGE_UTILIZATION)}")

    rng = job_rng(seed)
    deployment = campus_deployment(num_nodes=nodes)
    utilization = CAMPAIGN_IMAGE_UTILIZATION[image_label]
    image = generate_bitstream(utilization, seed=CAMPAIGN_BITSTREAM_SEED)
    emit(f"programming {nodes} nodes with the {image_label} image")
    campaign = run_campaign(deployment, image, image_label, rng)
    durations = campaign.durations_s()
    emit(f"programmed {durations.size}/{nodes} nodes")
    payload = {
        "image": image_label,
        "image_kib": len(image) // 1024,
        "nodes": nodes,
        "programmed": int(durations.size),
        "durations_s": [float(value) for value in durations],
        "mean_duration_s": float(campaign.mean_duration_s()),
        "min_duration_s": float(durations.min()),
        "max_duration_s": float(durations.max()),
        "total_node_energy_j": float(campaign.total_node_energy_j()),
    }
    cost = float(np.sum(durations))
    return payload, cost


def run_fleet(config: Mapping[str, Any], seed: int,
              emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """Vectorized fleet campaign (the legacy ``repro fleet``)."""
    from repro.ota.fleet import (
        FleetBurstLoss,
        FleetCampaignConfig,
        run_fleet_campaign_sharded,
        write_fleet_spill,
    )

    reader = _Config("fleet", config)
    nodes = int(reader.take("nodes", 100_000))
    image_bytes = int(reader.take("image_bytes", 1800))
    shards = int(reader.take("shards", 1))
    processes = reader.take("processes", None)
    loss = bool(reader.take("loss", False))
    verify_failure_prob = float(reader.take("verify_failure_prob", 0.0))
    spill_path = reader.take("spill", None)
    reader.finish()

    fleet_config = FleetCampaignConfig(
        num_nodes=nodes, image_bytes=image_bytes, seed=seed,
        loss=FleetBurstLoss() if loss else None,
        verify_failure_prob=verify_failure_prob)
    emit(f"stepping {nodes} nodes x {fleet_config.num_fragments} "
         f"fragments across {shards} shard(s)")
    report = run_fleet_campaign_sharded(
        fleet_config, shards=shards,
        processes=None if processes is None else int(processes))
    payload = {
        "nodes": nodes,
        "image_bytes": image_bytes,
        "num_fragments": int(fleet_config.num_fragments),
        "shards": shards,
        # Ordered pairs, not a mapping: canonicalization key-sorts
        # mappings, and the CLI must print outcomes in engine order.
        "outcomes": [[label, int(count)] for label, count
                     in report.outcome_counts().items()],
        "total_events": int(report.total_events),
        "total_energy_j": float(report.total_energy_j),
    }
    if spill_path is not None:
        stats = write_fleet_spill(report, spill_path)
        payload["spill"] = {"path": str(spill_path),
                            "rows_written": int(stats["rows_written"]),
                            "max_buffered": int(stats["max_buffered"])}
        emit(f"spilled {stats['rows_written']} rows")
    cost = float(np.max(report.duration_s))
    return payload, cost


def run_adr(config: Mapping[str, Any], seed: int,
            emit: ProgressEmit) -> tuple[dict[str, Any], float]:
    """Rate-adaptation study (the legacy ``repro adr``)."""
    from repro.protocols.lorawan.adr import fixed_rate_cost, simulate_adr
    from repro.testbed import campus_deployment

    reader = _Config("adr", config)
    reader.finish()

    rng = job_rng(seed)
    deployment = campus_deployment()
    _, baseline = fixed_rate_cost(12, 14.0)
    rows = []
    for node in deployment.nodes:
        path_loss = (deployment.ap_tx_power_dbm
                     + deployment.ap_antenna_gain_dbi
                     - deployment.downlink_rssi_dbm(node, rng))
        result = simulate_adr(path_loss, rng)
        saving = baseline / result.energy_j_per_packet
        rows.append({
            "node_id": int(node.node_id),
            "path_loss_db": float(path_loss),
            "final_sf": int(result.final_sf),
            "final_tx_power_dbm": float(result.final_tx_power_dbm),
            "saving": float(saving),
            "delivery_ratio": float(result.delivery_ratio),
        })
        emit(f"node {node.node_id} converged SF{result.final_sf}")
    payload = {"baseline_energy_j_per_packet": float(baseline),
               "nodes": rows}
    return payload, len(rows) * ADR_NODE_COST_S


#: Kind -> adapter, in registration order.
BUILTIN_WORKLOADS: tuple[tuple[str, Callable], ...] = (
    ("info", run_info),
    ("power", run_power),
    ("sweep-lora", run_sweep_lora),
    ("sweep-ble", run_sweep_ble),
    ("campaign", run_testbed_campaign),
    ("fleet", run_fleet),
    ("adr", run_adr),
)


def default_registry() -> WorkloadRegistry:
    """A registry with every built-in workload registered."""
    registry = WorkloadRegistry()
    for kind, runner in BUILTIN_WORKLOADS:
        registry.register(kind, runner)
    return registry
