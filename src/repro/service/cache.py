"""Content-addressed whole-campaign result cache.

This extends the :mod:`repro.perf` plan-cache idiom — a bounded LRU
with hit/miss/eviction counters — from derived DSP artifacts up to
whole :class:`~repro.service.jobspec.JobResult` values.  The key is the
spec's SHA-256 content address, so identical seeded jobs submitted by
any tenant dedupe to one engine run; a hit re-serves the cached result
with zero engine recompute (asserted in the tests via the registry's
invocation counters).

Unlike :class:`repro.perf.cache.PlanCache`, lookups and stores are
separate operations: the scheduler must *know* whether a job hit so it
can journal a ``service.cache`` ledger event instead of dispatching the
workload — ``get_or_build`` would hide that decision.  The counters
snapshot reuses :class:`repro.perf.cache.CacheStats`, so service cache
stats surface exactly like plan-cache stats do in the bench metadata.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.errors import ConfigurationError
from repro.perf.cache import CacheStats
from repro.service.jobspec import JobResult

DEFAULT_RESULT_CACHE_ENTRIES = 256
"""Default result-cache capacity; whole campaigns are few and large."""


class ResultCache:
    """Bounded LRU mapping content addresses to job results.

    Args:
        max_entries: maximum resident results; least recently used
            results are evicted past this bound.
        on_corruption: called with the content address whenever a
            stored result fails digest re-verification on lookup (the
            entry is evicted and the lookup degrades to a miss).

    Raises:
        ConfigurationError: for a non-positive capacity.
    """

    def __init__(self,
                 max_entries: int = DEFAULT_RESULT_CACHE_ENTRIES,
                 on_corruption: Callable[[str], None] | None = None) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._on_corruption = on_corruption
        self._entries: OrderedDict[str, tuple[JobResult, str]] = \
            OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corruptions = 0

    @property
    def corruptions(self) -> int:
        """Entries that failed re-verification and were evicted."""
        return self._corruptions

    def get(self, address: str) -> JobResult | None:
        """The cached result for ``address``, or ``None`` on a miss.

        Hits refresh recency; both outcomes update the counters.  Every
        hit re-verifies the result against the content fingerprint
        recorded at store time; a mismatch (bit rot, an in-place
        mutation of the shared result object) evicts the entry, reports
        it via ``on_corruption`` and degrades to a miss — a corrupt
        cache must cost a recompute, never serve a wrong answer.
        """
        entry = self._entries.get(address)
        if entry is None:
            self._misses += 1
            return None
        result, stored_fingerprint = entry
        if result.fingerprint() != stored_fingerprint:
            del self._entries[address]
            self._corruptions += 1
            self._misses += 1
            if self._on_corruption is not None:
                self._on_corruption(address)
            return None
        self._entries.move_to_end(address)
        self._hits += 1
        return result

    def put(self, result: JobResult) -> None:
        """Store a freshly computed result under its content address.

        Re-storing an existing address refreshes recency but keeps the
        original result: content-addressed values are immutable, so the
        first computation is as good as any.
        """
        if result.address not in self._entries:
            self._entries[result.address] = (result, result.fingerprint())
        self._entries.move_to_end(result.address)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop all results and reset the counters (test isolation)."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corruptions = 0

    def stats(self) -> CacheStats:
        """Counters snapshot, same shape as the plan cache's."""
        return CacheStats(hits=self._hits, misses=self._misses,
                          entries=len(self._entries),
                          evictions=self._evictions)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: str) -> bool:
        return address in self._entries
