"""The campaign service facade: submit, schedule, execute, stream.

:class:`CampaignService` is the testbed-as-a-service front door.  A
tenant submits a :class:`~repro.service.jobspec.JobSpec`; admission
(load shedding + quota + token bucket) happens at a seeded virtual
timestamp; admitted jobs wait in a priority queue; dispatch routes each
job through the content-addressed
:class:`~repro.service.cache.ResultCache`, the per-workload circuit
breakers and — only on a miss with a closed breaker — the supervised
execution loop around the
:class:`~repro.service.registry.WorkloadRegistry`.

Every decision is journaled twice: as a ``service.*`` event on one
:class:`repro.sim.Timeline` (the service's *only* clock — admission
overheads are seeded draws, execution spans are the deterministic
virtual costs the adapters report, and nothing ever reads wall time),
and, when a :class:`~repro.service.resilience.JobJournal` is attached,
as a hash-chained write-ahead record on disk.  Determinism is what
makes the journal a *recovery log* rather than an audit trail:
:meth:`CampaignService.recover` re-drives the journaled prefix through
the normal code paths — every RNG draw, ledger event and admission
verdict regenerates bit-identically — substituting only the engine
invocations of journaled successful runs, so a crashed session resumes
with a ``service_session_fingerprint`` equal to an uninterrupted run's
(the ``make chaos-service`` contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, JournalError, ReproError
from repro.faults.service import ServiceFaultPlan
from repro.perf.cache import CacheStats
from repro.seeding import job_rng
from repro.service.cache import DEFAULT_RESULT_CACHE_ENTRIES, ResultCache
from repro.service.jobspec import DEFAULT_TENANT, JobResult, JobSpec
from repro.service.queue import JobQueue
from repro.service.registry import UnknownWorkloadError, WorkloadRegistry
from repro.service.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.service.resilience.codec import (
    decode_breaker,
    decode_fault_plan,
    decode_result,
    decode_shedding,
    decode_spec,
    decode_supervisor,
    decode_tenant,
    encode_breaker,
    encode_fault_plan,
    encode_result,
    encode_shedding,
    encode_spec,
    encode_supervisor,
    encode_tenant,
)
from repro.service.resilience.journal import (
    RECORD_ADMIT,
    RECORD_COMPLETE,
    RECORD_DISPATCH,
    RECORD_FAIL,
    RECORD_OPEN,
    RECORD_QUARANTINE,
    RECORD_RECOVER,
    RECORD_REJECT,
    RECORD_SUBMIT,
    RECORD_TENANT,
    TERMINAL_RECORD_TYPES,
    JobJournal,
    JournalRecord,
    read_journal,
)
from repro.service.resilience.shedding import SheddingPolicy
from repro.service.resilience.supervisor import (
    HeartbeatMonitor,
    SupervisorConfig,
    job_jitter_rng,
)
from repro.service.tenancy import TenantConfig, TenantState
from repro.service.workloads import default_registry
from repro.sim import (
    SERVICE_ADMIT,
    SERVICE_BREAKER_CLOSE,
    SERVICE_BREAKER_HALF_OPEN,
    SERVICE_BREAKER_OPEN,
    SERVICE_CACHE_HIT,
    SERVICE_COMPLETE,
    SERVICE_DISPATCH,
    SERVICE_EXECUTE,
    SERVICE_PROGRESS,
    SERVICE_QUARANTINE,
    SERVICE_REJECT,
    SERVICE_RETRY,
    SERVICE_SHED,
    SERVICE_SUBMIT,
    WATCHDOG_RESET,
    SimEvent,
    Timeline,
)

SERVICE_COMPONENT = "service"
"""Timeline component every service.* ledger row is attributed to."""

ADMISSION_OVERHEAD_S = 1e-3
"""Mean virtual-time cost of processing one submission."""

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_REJECTED = "rejected"
JOB_FAILED = "failed"
JOB_QUARANTINED = "quarantined"

#: States a job can never leave (the chaos all-terminal invariant).
TERMINAL_STATES = frozenset({
    JOB_COMPLETED, JOB_REJECTED, JOB_FAILED, JOB_QUARANTINED,
})


@dataclass
class Job:
    """One submission's lifecycle record inside the service.

    Attributes:
        job_id: monotonically assigned submission sequence number (the
            deterministic FIFO tiebreaker within a priority band).
        spec: the submitted job specification.
        state: one of the ``JOB_*`` lifecycle constants.
        submitted_at_s: virtual time admission finished processing.
        started_at_s: virtual time the scheduler dispatched the job.
        completed_at_s: virtual time the job finished.
        result: the (possibly cache-served) result when completed.
        cache_hit: whether the result cache answered with zero engine
            recompute.
        detail: rejection, failure or quarantine reason, empty
            otherwise.
        attempts: supervised execution attempts made (0 for jobs the
            cache answered or admission refused).
        progress: milestone details the workload reported on its last
            attempt (journaled so recovery can re-emit them).
    """

    job_id: int
    spec: JobSpec
    state: str = JOB_QUEUED
    submitted_at_s: float = 0.0
    started_at_s: float | None = None
    completed_at_s: float | None = None
    result: JobResult | None = field(default=None, repr=False)
    cache_hit: bool = False
    detail: str = ""
    attempts: int = 0
    progress: tuple[str, ...] = field(default=(), repr=False)

    @property
    def label(self) -> str:
        """The ledger label prefix all this job's events carry."""
        return f"job{self.job_id}"


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of the service's counters, plan-cache-stats style.

    Attributes:
        submitted: jobs that entered admission.
        admitted: jobs that cleared shedding, quota and rate limits.
        rejected: jobs refused (admission, shedding or open breaker).
        completed: jobs finished (fresh runs plus cache hits).
        failed: jobs whose workload raised.
        quarantined: poison jobs that struck out of their retry budget.
        shed: rejections specifically due to overload shedding.
        cache_hits: completions served from the result cache.
        queue_depth: jobs currently awaiting dispatch.
        virtual_now_s: the service clock.
        cache: result-cache counters (same shape as plan-cache stats).
        invocations: per-kind engine invocation counters.
        tenants: per-tenant counter mappings.
    """

    submitted: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    quarantined: int
    shed: int
    cache_hits: int
    queue_depth: int
    virtual_now_s: float
    cache: CacheStats
    invocations: dict[str, int]
    tenants: dict[str, dict[str, int]]

    @property
    def cache_hit_ratio(self) -> float:
        """Completions served from cache (0 when nothing completed)."""
        return self.cache_hits / self.completed if self.completed else 0.0


class CampaignService:
    """Deterministic multi-tenant campaign scheduler.

    Args:
        registry: workload registry (defaults to the built-in adapters).
        tenants: extra tenant configurations; a permissive ``default``
            tenant is always present.
        cache_entries: result-cache capacity.
        seed: seeds the admission-overhead draws — the service's only
            session-level randomness, making the virtual clock a pure
            function of ``(seed, submission sequence)``.
        journal: write-ahead job journal for crash recovery; ``None``
            keeps the session in memory only.
        supervisor: supervision policy (deadline, heartbeats, retry
            budget); ``None`` means a passive single-attempt policy
            that is bit-identical to unsupervised execution.
        breakers: per-workload circuit-breaker policy; ``None``
            disables breakers.
        shedding: admission load-shedding policy; ``None`` disables
            shedding.
        faults: service-layer chaos plan (worker crashes, workload
            hangs); ``None`` injects nothing and draws nothing.
    """

    def __init__(self, registry: WorkloadRegistry | None = None,
                 tenants: tuple[TenantConfig, ...] = (),
                 cache_entries: int = DEFAULT_RESULT_CACHE_ENTRIES,
                 seed: int = 0,
                 journal: JobJournal | None = None,
                 supervisor: SupervisorConfig | None = None,
                 breakers: BreakerConfig | None = None,
                 shedding: SheddingPolicy | None = None,
                 faults: ServiceFaultPlan | None = None) -> None:
        self.registry = registry if registry is not None \
            else default_registry()
        self.timeline = Timeline()
        self.cache = ResultCache(max_entries=cache_entries,
                                 on_corruption=self._on_cache_corruption)
        self._queue = JobQueue()
        self._seed = seed
        self._cache_entries = cache_entries
        self._rng = job_rng(seed)
        self._jobs: dict[int, Job] = {}
        self._next_job_id = 1
        self._failed = 0
        self._quarantined = 0
        self._shed = 0
        self._supervisor = (supervisor if supervisor is not None
                            else SupervisorConfig())
        self._breaker_config = breakers
        self._breakers: dict[str, CircuitBreaker] = {}
        self._shedding = shedding
        self._faults = faults
        self._replay_runs: dict[int, tuple[Any, float, tuple[str, ...]]] = {}
        self._tenants: dict[str, TenantState] = {}
        self._journal = journal
        if journal is not None:
            journal.append(RECORD_OPEN, {
                "seed": seed,
                "cache_entries": cache_entries,
                "supervisor": encode_supervisor(supervisor),
                "breakers": encode_breaker(breakers),
                "shedding": encode_shedding(shedding),
                "faults": encode_fault_plan(faults),
            })
        self.add_tenant(TenantConfig(name=DEFAULT_TENANT,
                                     max_pending=1024,
                                     bucket_capacity=1024.0,
                                     refill_per_s=1024.0))
        for config in tenants:
            self.add_tenant(config)

    # -- tenancy -----------------------------------------------------------

    def add_tenant(self, config: TenantConfig) -> TenantState:
        """Register a tenant (replacing re-registers policy, not state).

        Raises:
            ConfigurationError: when the tenant already exists.
        """
        if config.name in self._tenants:
            raise ConfigurationError(
                f"tenant {config.name!r} already registered")
        state = TenantState(config, now_s=self.timeline.now_s)
        self._tenants[config.name] = state
        # The default tenant is implicit in every session (recovery
        # re-adds it unconditionally), so only explicit tenants are
        # journaled.
        if self._journal is not None and config.name != DEFAULT_TENANT:
            self._journal.append(RECORD_TENANT, encode_tenant(config))
        return state

    def tenant(self, name: str) -> TenantState:
        """The live state for ``name``.

        Raises:
            ConfigurationError: for an unknown tenant.
        """
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {name!r}; known: "
                f"{', '.join(sorted(self._tenants))}") from None

    def tenant_names(self) -> tuple[str, ...]:
        """Registered tenant names, sorted for stable display."""
        return tuple(sorted(self._tenants))

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job: journal, shed check, quota, rate limit, queue.

        Returns the job record either queued (``state == "queued"``) or
        rejected (``state == "rejected"`` with ``detail`` set).  The
        admission decision itself costs a seeded draw of virtual time,
        so ordering and rate-limit outcomes are replayable.  The
        write-ahead ``submit`` record lands before any state changes:
        a crash anywhere after it re-drives the whole submission.

        Raises:
            UnknownWorkloadError: when no adapter is registered for the
                spec's kind (a malformed spec, not an admission verdict).
            ConfigurationError: for an unknown tenant.
        """
        if spec.kind not in self.registry:
            raise UnknownWorkloadError(
                f"no workload registered for kind {spec.kind!r}; "
                f"known kinds: {', '.join(self.registry.kinds())}")
        tenant = self.tenant(spec.tenant)
        if self._journal is not None:
            self._journal.append(RECORD_SUBMIT, {
                "job_id": self._next_job_id, "spec": encode_spec(spec)})
        job = Job(job_id=self._next_job_id, spec=spec)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        tenant.counters.submitted += 1
        overhead = float(
            self._rng.uniform(0.5, 1.5)) * ADMISSION_OVERHEAD_S
        self.timeline.record(
            SERVICE_SUBMIT, SERVICE_COMPONENT,
            label=(f"{job.label} submit kind={spec.kind} "
                   f"tenant={spec.tenant}"),
            duration_s=overhead)
        job.submitted_at_s = self.timeline.now_s
        if self._shedding is not None:
            reason = self._shedding.should_shed(
                len(self._queue), tenant.pending)
            if reason is not None:
                return self._shed_job(job, tenant, reason)
        if not tenant.has_quota():
            return self._reject(
                job, tenant,
                f"tenant {spec.tenant!r} pending quota "
                f"({tenant.config.max_pending}) exhausted")
        if not tenant.bucket.try_take(self.timeline.now_s):
            return self._reject(
                job, tenant,
                f"tenant {spec.tenant!r} rate limit exceeded "
                f"(bucket empty)")
        tenant.pending += 1
        tenant.counters.admitted += 1
        job.state = JOB_QUEUED
        self._queue.push(job)
        self.timeline.record(
            SERVICE_ADMIT, SERVICE_COMPONENT,
            label=f"{job.label} admit priority={spec.priority}")
        if self._journal is not None:
            self._journal.append(RECORD_ADMIT, {"job_id": job.job_id})
        return job

    def _reject(self, job: Job, tenant: TenantState, reason: str) -> Job:
        job.state = JOB_REJECTED
        job.detail = reason
        tenant.counters.rejected += 1
        self.timeline.record(
            SERVICE_REJECT, SERVICE_COMPONENT,
            label=f"{job.label} reject: {reason}")
        if self._journal is not None:
            self._journal.append(RECORD_REJECT,
                                 {"job_id": job.job_id, "reason": reason})
        return job

    def _shed_job(self, job: Job, tenant: TenantState, reason: str) -> Job:
        """Refuse a submission at an overload high-water mark."""
        job.state = JOB_REJECTED
        job.detail = reason
        tenant.counters.rejected += 1
        self._shed += 1
        self.timeline.record(
            SERVICE_SHED, SERVICE_COMPONENT,
            label=f"{job.label} shed: {reason}")
        if self._journal is not None:
            self._journal.append(RECORD_REJECT,
                                 {"job_id": job.job_id, "reason": reason})
        return job

    def _reject_dispatched(self, job: Job, tenant: TenantState,
                           reason: str) -> Job:
        """Refuse an already-admitted job at dispatch (open breaker)."""
        job.state = JOB_REJECTED
        job.detail = reason
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        tenant.counters.rejected += 1
        self.timeline.record(
            SERVICE_REJECT, SERVICE_COMPONENT,
            label=f"{job.label} reject: {reason}")
        if self._journal is not None:
            self._journal.append(RECORD_REJECT,
                                 {"job_id": job.job_id, "reason": reason})
        return job

    # -- scheduling --------------------------------------------------------

    def _breaker(self, kind: str) -> CircuitBreaker | None:
        """The lazily created breaker guarding ``kind`` (or ``None``)."""
        if self._breaker_config is None:
            return None
        breaker = self._breakers.get(kind)
        if breaker is None:
            breaker = CircuitBreaker(self._breaker_config, kind)
            self._breakers[kind] = breaker
        return breaker

    def run_next(self) -> Job | None:
        """Dispatch the most urgent queued job; ``None`` when idle."""
        if not self._queue:
            return None
        job = self._queue.pop()
        tenant = self.tenant(job.spec.tenant)
        if self._journal is not None:
            self._journal.append(RECORD_DISPATCH, {"job_id": job.job_id})
        job.state = JOB_RUNNING
        job.started_at_s = self.timeline.now_s
        self.timeline.record(
            SERVICE_DISPATCH, SERVICE_COMPONENT,
            label=f"{job.label} dispatch kind={job.spec.kind}")
        address = job.spec.content_address
        cached = self.cache.get(address)
        if cached is not None:
            job.result = cached
            job.cache_hit = True
            self.timeline.record(
                SERVICE_CACHE_HIT, SERVICE_COMPONENT,
                label=f"{job.label} cache hit {address[:12]}")
            return self._complete(job, tenant)
        breaker = self._breaker(job.spec.kind)
        if breaker is not None:
            allowed, transition = breaker.allow(self.timeline.now_s)
            if transition == "half_open":
                self.timeline.record(
                    SERVICE_BREAKER_HALF_OPEN, SERVICE_COMPONENT,
                    label=(f"{job.label} breaker half-open "
                           f"kind={job.spec.kind} (probe)"))
            if not allowed:
                return self._reject_dispatched(
                    job, tenant,
                    f"circuit breaker open for kind {job.spec.kind!r}")
        return self._execute_supervised(job, tenant, breaker)

    def _execute_supervised(self, job: Job, tenant: TenantState,
                            breaker: CircuitBreaker | None) -> Job:
        """The supervised attempt loop: crash/hang/deadline aware.

        Each attempt first polls the per-job fault streams (a crashed
        or hung attempt never reaches the engine), then invokes the
        workload — or, during journal replay, substitutes the logged
        result — and finally checks the per-job deadline.  Transient
        strikes retry under the supervisor's
        :class:`~repro.ota.mac.RetryPolicy` budget and then quarantine;
        an engine :class:`~repro.errors.ReproError` fails permanently
        (the job is deterministic — a rerun fails identically).
        """
        cfg = self._supervisor
        policy = cfg.policy
        faults = (self._faults.bind(job.job_id, job.label, self.timeline)
                  if self._faults is not None else None)
        jitter = job_jitter_rng(policy, job.job_id)
        monitor = HeartbeatMonitor(cfg.heartbeat_timeout_s)
        address = job.spec.content_address
        strikes = 0
        while True:
            attempt = strikes + 1
            job.attempts = attempt
            monitor.arm(self.timeline.now_s)
            reason: str | None = None
            if faults is not None and faults.worker_crashes_now(
                    attempt, monitor.timeout_s):
                monitor.declare_dead()
                reason = f"worker crashed (attempt {attempt})"
            elif faults is not None and faults.workload_hangs_now(attempt):
                monitor.kick(self.timeline.now_s)
                self.timeline.record(
                    WATCHDOG_RESET, SERVICE_COMPONENT,
                    label=(f"{job.label} watchdog reset after "
                           f"{cfg.watchdog_timeout_s:g} s hang"),
                    duration_s=cfg.watchdog_timeout_s)
                reason = f"workload hung (attempt {attempt})"
            else:
                replay = self._replay_runs.get(job.job_id)
                if replay is not None:
                    payload, cost, progress = replay
                    for detail in progress:
                        self.timeline.record(
                            SERVICE_PROGRESS, SERVICE_COMPONENT,
                            label=f"{job.label} progress: {detail}",
                            advance=False)
                    job.progress = tuple(progress)
                    self.registry.count_replayed(job.spec.kind)
                else:
                    job.progress = ()
                    try:
                        payload, cost = self.registry.invoke(
                            job.spec.kind, job.spec.config_mapping(),
                            job.spec.seed,
                            self._progress_emitter(job, monitor))
                    except ReproError as exc:
                        monitor.disarm()
                        return self._fail(job, tenant, exc, breaker)
                monitor.disarm()
                if cfg.deadline_s is not None:
                    remaining = (job.started_at_s + cfg.deadline_s
                                 - self.timeline.now_s)
                    if cost > remaining:
                        self.timeline.record(
                            WATCHDOG_RESET, SERVICE_COMPONENT,
                            label=(f"{job.label} killed at deadline "
                                   f"{cfg.deadline_s:g} s "
                                   f"(attempt {attempt})"),
                            duration_s=max(remaining, 0.0))
                        reason = f"deadline exceeded (attempt {attempt})"
                if reason is None:
                    self._replay_runs.pop(job.job_id, None)
                    self.timeline.record(
                        SERVICE_EXECUTE, SERVICE_COMPONENT,
                        label=f"{job.label} execute kind={job.spec.kind}",
                        duration_s=cost)
                    job.result = JobResult(
                        address=address, kind=job.spec.kind,
                        seed=job.spec.seed, payload=payload,
                        virtual_cost_s=cost)
                    self.cache.put(job.result)
                    if breaker is not None:
                        self._emit_breaker_transition(
                            job, breaker.record_success(), breaker)
                    return self._complete(job, tenant)
            strikes += 1
            if strikes >= policy.max_attempts:
                return self._quarantine(job, tenant, breaker, reason)
            delay = policy.delay_s(strikes - 1, jitter)
            self.timeline.record(
                SERVICE_RETRY, SERVICE_COMPONENT,
                label=(f"{job.label} retry {strikes + 1}/"
                       f"{policy.max_attempts} after {reason}"),
                duration_s=delay)

    def _emit_breaker_transition(self, job: Job, transition: str | None,
                                 breaker: CircuitBreaker) -> None:
        if transition == "open":
            self.timeline.record(
                SERVICE_BREAKER_OPEN, SERVICE_COMPONENT,
                label=(f"{job.label} breaker open kind={breaker.kind} "
                       f"until t={breaker.reopen_at_s:g} s"))
        elif transition == "close":
            self.timeline.record(
                SERVICE_BREAKER_CLOSE, SERVICE_COMPONENT,
                label=f"{job.label} breaker close kind={breaker.kind}")
        elif transition == "half_open":
            self.timeline.record(
                SERVICE_BREAKER_HALF_OPEN, SERVICE_COMPONENT,
                label=(f"{job.label} breaker half-open "
                       f"kind={breaker.kind} (probe)"))

    def _progress_emitter(self, job: Job, monitor: HeartbeatMonitor):
        def emit(detail: str) -> None:
            self.timeline.record(
                SERVICE_PROGRESS, SERVICE_COMPONENT,
                label=f"{job.label} progress: {detail}",
                advance=False)
            job.progress = job.progress + (detail,)
            monitor.kick(self.timeline.now_s)
        return emit

    def _complete(self, job: Job, tenant: TenantState) -> Job:
        job.state = JOB_COMPLETED
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        tenant.counters.completed += 1
        if job.cache_hit:
            tenant.counters.cache_hits += 1
        self.timeline.record(
            SERVICE_COMPLETE, SERVICE_COMPONENT,
            label=(f"{job.label} complete "
                   f"{'cached' if job.cache_hit else 'computed'}"))
        if self._journal is not None:
            self._journal.append(RECORD_COMPLETE, {
                "job_id": job.job_id, "cache_hit": job.cache_hit,
                "result": encode_result(job.result),
                "progress": list(job.progress)})
        return job

    def _fail(self, job: Job, tenant: TenantState, exc: ReproError,
              breaker: CircuitBreaker | None = None) -> Job:
        job.state = JOB_FAILED
        job.detail = f"{type(exc).__name__}: {exc}"
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        self._failed += 1
        if breaker is not None:
            self._emit_breaker_transition(
                job, breaker.record_failure(self.timeline.now_s), breaker)
        self.timeline.record(
            SERVICE_COMPLETE, SERVICE_COMPONENT,
            label=f"{job.label} failed: {job.detail}")
        if self._journal is not None:
            self._journal.append(RECORD_FAIL, {
                "job_id": job.job_id, "detail": job.detail})
        return job

    def _quarantine(self, job: Job, tenant: TenantState,
                    breaker: CircuitBreaker | None, reason: str) -> Job:
        """Terminal state for a poison job that struck out."""
        job.state = JOB_QUARANTINED
        job.detail = (f"quarantined after {job.attempts} strikes; "
                      f"last strike: {reason}")
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        tenant.counters.quarantined += 1
        self._quarantined += 1
        if breaker is not None:
            self._emit_breaker_transition(
                job, breaker.record_failure(self.timeline.now_s), breaker)
        self.timeline.record(
            SERVICE_QUARANTINE, SERVICE_COMPONENT,
            label=f"{job.label} quarantined: {reason}")
        if self._journal is not None:
            self._journal.append(RECORD_QUARANTINE, {
                "job_id": job.job_id, "detail": job.detail})
        return job

    def _on_cache_corruption(self, address: str) -> None:
        """Ledger hook for a cache entry that failed re-verification."""
        self.timeline.record(
            SERVICE_CACHE_HIT, SERVICE_COMPONENT,
            label=f"cache corruption: evicted {address[:12]}",
            advance=False)

    def run_until_idle(self) -> list[Job]:
        """Drain the queue; returns the jobs finished by this call."""
        finished: list[Job] = []
        while True:
            job = self.run_next()
            if job is None:
                return finished
            finished.append(job)

    def submit_and_run(self, spec: JobSpec) -> Job:
        """Submit one job and drain the queue (the thin-client path).

        The returned job is completed, failed, rejected or quarantined
        — never left queued.
        """
        job = self.submit(spec)
        if job.state == JOB_QUEUED:
            self.run_until_idle()
        return job

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def recover(cls, journal_path: str,
                registry: WorkloadRegistry | None = None
                ) -> "CampaignService":
        """Resume a crashed session from its write-ahead journal.

        Reads and chain-verifies the journal (dropping a torn tail),
        rebuilds the service from the ``open`` record's configuration,
        and re-drives every journaled transition through the normal
        code paths — regenerating all RNG draws, ledger events and
        verdicts bit-identically — while substituting the engine
        invocations of journaled successful runs from their logged
        results.  In-flight jobs (a ``dispatch`` intent without a
        terminal outcome) re-execute live; jobs whose terminal record
        was lost get it re-appended; then the journal chain resumes
        with a ``recover`` marker.

        Args:
            journal_path: the crashed session's journal file.
            registry: the same workload registry the session ran with
                (registries are code, not data — the journal cannot
                carry them); defaults to the built-in adapters.

        Raises:
            JournalError: for a corrupt journal or a replay that
                diverges from the journaled history.
        """
        read_result = read_journal(journal_path)
        records = read_result.records
        if not records or records[0].type != RECORD_OPEN:
            raise JournalError(
                f"journal {journal_path!r} has no open record; "
                f"nothing to recover")
        opened = records[0].payload
        for key in ("seed", "cache_entries"):
            if key not in opened:
                raise JournalError(
                    f"journal open record is missing the {key!r} field")
        service = cls(
            registry=registry,
            cache_entries=opened["cache_entries"],
            seed=opened["seed"],
            supervisor=decode_supervisor(opened.get("supervisor")),
            breakers=decode_breaker(opened.get("breakers")),
            shedding=decode_shedding(opened.get("shedding")),
            faults=decode_fault_plan(opened.get("faults")))
        journaled_terminals: set[int] = set()
        for record in records:
            if record.type not in TERMINAL_RECORD_TYPES:
                continue
            job_id = record.payload.get("job_id")
            if not isinstance(job_id, int):
                raise JournalError(
                    f"journal {record.type} record {record.seq} has no "
                    f"integer job_id")
            journaled_terminals.add(job_id)
            if (record.type == RECORD_COMPLETE
                    and not record.payload.get("cache_hit", False)):
                result = decode_result(record.payload.get("result") or {})
                progress = tuple(record.payload.get("progress") or ())
                service._replay_runs[job_id] = (
                    result.payload, result.virtual_cost_s, progress)
        for record in records[1:]:
            service._replay_record(record)
        service._replay_runs.clear()
        journal = JobJournal.resume(journal_path)
        service._journal = journal
        journal.append(RECORD_RECOVER, {
            "resumed_at_seq": len(records),
            "torn_tail": read_result.torn_tail})
        for job in service.jobs():
            if (job.state in TERMINAL_STATES
                    and job.job_id not in journaled_terminals):
                service._append_terminal_record(job)
        return service

    def _replay_record(self, record: JournalRecord) -> None:
        """Re-drive one journaled transition, verifying audit records.

        Raises:
            JournalError: when the replayed state diverges from what
                the journal recorded (a corrupt or foreign journal).
        """
        rtype = record.type
        payload = record.payload
        if rtype == RECORD_TENANT:
            self.add_tenant(decode_tenant(payload))
            return
        if rtype == RECORD_RECOVER:
            return
        job_id = payload.get("job_id")
        if not isinstance(job_id, int):
            raise JournalError(
                f"journal {rtype} record {record.seq} has no integer "
                f"job_id")
        if rtype == RECORD_SUBMIT:
            spec_payload = payload.get("spec")
            if not isinstance(spec_payload, dict):
                raise JournalError(
                    f"journal submit record {record.seq} has no spec")
            job = self.submit(decode_spec(spec_payload))
            if job.job_id != job_id:
                raise JournalError(
                    f"replay diverged: submit record {record.seq} "
                    f"expected job {job_id}, produced job {job.job_id}")
            return
        if rtype == RECORD_DISPATCH:
            job = self.run_next()
            if job is None or job.job_id != job_id:
                got = "idle queue" if job is None else f"job {job.job_id}"
                raise JournalError(
                    f"replay diverged: dispatch record {record.seq} "
                    f"expected job {job_id}, got {got}")
            return
        job = self._jobs.get(job_id)
        if job is None:
            raise JournalError(
                f"journal {rtype} record {record.seq} references "
                f"unknown job {job_id}")
        if rtype == RECORD_ADMIT:
            if job.state != JOB_QUEUED:
                raise JournalError(
                    f"replay diverged: admit record {record.seq} but "
                    f"job {job_id} is {job.state!r}")
            return
        if rtype == RECORD_REJECT:
            if job.state != JOB_REJECTED \
                    or job.detail != payload.get("reason"):
                raise JournalError(
                    f"replay diverged: reject record {record.seq} but "
                    f"job {job_id} is {job.state!r} "
                    f"({job.detail!r} != {payload.get('reason')!r})")
            return
        if rtype == RECORD_COMPLETE:
            mismatch = (job.state != JOB_COMPLETED
                        or job.cache_hit != payload.get("cache_hit")
                        or job.result is None
                        or job.result.fingerprint()
                        != decode_result(
                            payload.get("result") or {}).fingerprint())
            if mismatch:
                raise JournalError(
                    f"replay diverged: complete record {record.seq} "
                    f"does not match job {job_id} "
                    f"(state {job.state!r}, cache_hit {job.cache_hit})")
            return
        if rtype == RECORD_FAIL:
            if job.state != JOB_FAILED \
                    or job.detail != payload.get("detail"):
                raise JournalError(
                    f"replay diverged: fail record {record.seq} but "
                    f"job {job_id} is {job.state!r}")
            return
        if rtype == RECORD_QUARANTINE:
            if job.state != JOB_QUARANTINED \
                    or job.detail != payload.get("detail"):
                raise JournalError(
                    f"replay diverged: quarantine record {record.seq} "
                    f"but job {job_id} is {job.state!r}")
            return
        raise JournalError(
            f"journal record {record.seq} has unreplayable type {rtype!r}")

    def _append_terminal_record(self, job: Job) -> None:
        """Re-journal a terminal outcome whose record the crash ate."""
        if job.state == JOB_COMPLETED:
            self._journal.append(RECORD_COMPLETE, {
                "job_id": job.job_id, "cache_hit": job.cache_hit,
                "result": encode_result(job.result),
                "progress": list(job.progress)})
        elif job.state == JOB_FAILED:
            self._journal.append(RECORD_FAIL, {
                "job_id": job.job_id, "detail": job.detail})
        elif job.state == JOB_QUARANTINED:
            self._journal.append(RECORD_QUARANTINE, {
                "job_id": job.job_id, "detail": job.detail})
        elif job.state == JOB_REJECTED:
            self._journal.append(RECORD_REJECT, {
                "job_id": job.job_id, "reason": job.detail})

    # -- introspection -----------------------------------------------------

    def job(self, job_id: int) -> Job:
        """The lifecycle record for ``job_id``.

        Raises:
            ConfigurationError: for an unknown job id.
        """
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown job id {job_id}") from None

    def jobs(self) -> tuple[Job, ...]:
        """Every job this service has seen, in submission order."""
        return tuple(self._jobs[job_id]
                     for job_id in sorted(self._jobs))

    def job_events(self, job_id: int) -> tuple[SimEvent, ...]:
        """The job's progress ledger: its ``service.*`` event stream."""
        prefix = f"job{self.job(job_id).job_id} "
        return tuple(event for event in self.timeline
                     if event.label.startswith(prefix))

    def stats(self) -> ServiceStats:
        """Counters snapshot across admission, cache and execution."""
        tenants = {name: state.counters.as_dict()
                   for name, state in sorted(self._tenants.items())}
        totals = {key: sum(counters[key] for counters in tenants.values())
                  for key in ("submitted", "admitted", "rejected",
                              "completed", "cache_hits", "quarantined")}
        return ServiceStats(
            submitted=totals["submitted"],
            admitted=totals["admitted"],
            rejected=totals["rejected"],
            completed=totals["completed"],
            failed=self._failed,
            quarantined=totals["quarantined"],
            shed=self._shed,
            cache_hits=totals["cache_hits"],
            queue_depth=len(self._queue),
            virtual_now_s=self.timeline.now_s,
            cache=self.cache.stats(),
            invocations=self.registry.invocation_counts(),
            tenants=tenants)
