"""The campaign service facade: submit, schedule, execute, stream.

:class:`CampaignService` is the testbed-as-a-service front door.  A
tenant submits a :class:`~repro.service.jobspec.JobSpec`; admission
(quota + token bucket) happens at a seeded virtual timestamp; admitted
jobs wait in a priority queue; dispatch routes each job through the
content-addressed :class:`~repro.service.cache.ResultCache` and — only
on a miss — the :class:`~repro.service.registry.WorkloadRegistry`.

Every decision is journaled as a ``service.*`` event on one
:class:`repro.sim.Timeline`, which is also the service's *only* clock:
admission overheads are seeded draws, execution spans are the
deterministic virtual costs the adapters report, and nothing ever reads
wall time.  Two services fed the same submission sequence therefore
produce bit-identical ledgers, results and stats — the property the
``REPRO_DETERMINISM=1`` double-run check re-proves in two fresh
interpreters (:func:`repro.analysis.determinism.service_check_from_env`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.perf.cache import CacheStats
from repro.seeding import job_rng
from repro.service.cache import DEFAULT_RESULT_CACHE_ENTRIES, ResultCache
from repro.service.jobspec import DEFAULT_TENANT, JobResult, JobSpec
from repro.service.queue import JobQueue
from repro.service.registry import UnknownWorkloadError, WorkloadRegistry
from repro.service.tenancy import TenantConfig, TenantState
from repro.service.workloads import default_registry
from repro.sim import (
    SERVICE_ADMIT,
    SERVICE_CACHE_HIT,
    SERVICE_COMPLETE,
    SERVICE_DISPATCH,
    SERVICE_EXECUTE,
    SERVICE_PROGRESS,
    SERVICE_REJECT,
    SERVICE_SUBMIT,
    SimEvent,
    Timeline,
)

SERVICE_COMPONENT = "service"
"""Timeline component every service.* ledger row is attributed to."""

ADMISSION_OVERHEAD_S = 1e-3
"""Mean virtual-time cost of processing one submission."""

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_REJECTED = "rejected"
JOB_FAILED = "failed"


@dataclass
class Job:
    """One submission's lifecycle record inside the service.

    Attributes:
        job_id: monotonically assigned submission sequence number (the
            deterministic FIFO tiebreaker within a priority band).
        spec: the submitted job specification.
        state: one of the ``JOB_*`` lifecycle constants.
        submitted_at_s: virtual time admission finished processing.
        started_at_s: virtual time the scheduler dispatched the job.
        completed_at_s: virtual time the job finished.
        result: the (possibly cache-served) result when completed.
        cache_hit: whether the result cache answered with zero engine
            recompute.
        detail: rejection or failure reason, empty otherwise.
    """

    job_id: int
    spec: JobSpec
    state: str = JOB_QUEUED
    submitted_at_s: float = 0.0
    started_at_s: float | None = None
    completed_at_s: float | None = None
    result: JobResult | None = field(default=None, repr=False)
    cache_hit: bool = False
    detail: str = ""

    @property
    def label(self) -> str:
        """The ledger label prefix all this job's events carry."""
        return f"job{self.job_id}"


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of the service's counters, plan-cache-stats style.

    Attributes:
        submitted: jobs that entered admission.
        admitted: jobs that cleared quota and rate limits.
        rejected: jobs refused at admission.
        completed: jobs finished (fresh runs plus cache hits).
        failed: jobs whose workload raised.
        cache_hits: completions served from the result cache.
        queue_depth: jobs currently awaiting dispatch.
        virtual_now_s: the service clock.
        cache: result-cache counters (same shape as plan-cache stats).
        invocations: per-kind engine invocation counters.
        tenants: per-tenant counter mappings.
    """

    submitted: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    cache_hits: int
    queue_depth: int
    virtual_now_s: float
    cache: CacheStats
    invocations: dict[str, int]
    tenants: dict[str, dict[str, int]]

    @property
    def cache_hit_ratio(self) -> float:
        """Completions served from cache (0 when nothing completed)."""
        return self.cache_hits / self.completed if self.completed else 0.0


class CampaignService:
    """Deterministic multi-tenant campaign scheduler.

    Args:
        registry: workload registry (defaults to the built-in adapters).
        tenants: extra tenant configurations; a permissive ``default``
            tenant is always present.
        cache_entries: result-cache capacity.
        seed: seeds the admission-overhead draws — the service's only
            randomness, making the virtual clock a pure function of
            ``(seed, submission sequence)``.
    """

    def __init__(self, registry: WorkloadRegistry | None = None,
                 tenants: tuple[TenantConfig, ...] = (),
                 cache_entries: int = DEFAULT_RESULT_CACHE_ENTRIES,
                 seed: int = 0) -> None:
        self.registry = registry if registry is not None \
            else default_registry()
        self.timeline = Timeline()
        self.cache = ResultCache(max_entries=cache_entries)
        self._queue = JobQueue()
        self._rng = job_rng(seed)
        self._jobs: dict[int, Job] = {}
        self._next_job_id = 1
        self._failed = 0
        self._tenants: dict[str, TenantState] = {}
        self.add_tenant(TenantConfig(name=DEFAULT_TENANT,
                                     max_pending=1024,
                                     bucket_capacity=1024.0,
                                     refill_per_s=1024.0))
        for config in tenants:
            self.add_tenant(config)

    # -- tenancy -----------------------------------------------------------

    def add_tenant(self, config: TenantConfig) -> TenantState:
        """Register a tenant (replacing re-registers policy, not state).

        Raises:
            ConfigurationError: when the tenant already exists.
        """
        if config.name in self._tenants:
            raise ConfigurationError(
                f"tenant {config.name!r} already registered")
        state = TenantState(config, now_s=self.timeline.now_s)
        self._tenants[config.name] = state
        return state

    def tenant(self, name: str) -> TenantState:
        """The live state for ``name``.

        Raises:
            ConfigurationError: for an unknown tenant.
        """
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {name!r}; known: "
                f"{', '.join(sorted(self._tenants))}") from None

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job: quota, rate limit, queue.

        Returns the job record either queued (``state == "queued"``) or
        rejected (``state == "rejected"`` with ``detail`` set).  The
        admission decision itself costs a seeded draw of virtual time,
        so ordering and rate-limit outcomes are replayable.

        Raises:
            UnknownWorkloadError: when no adapter is registered for the
                spec's kind (a malformed spec, not an admission verdict).
            ConfigurationError: for an unknown tenant.
        """
        if spec.kind not in self.registry:
            raise UnknownWorkloadError(
                f"no workload registered for kind {spec.kind!r}; "
                f"known kinds: {', '.join(self.registry.kinds())}")
        tenant = self.tenant(spec.tenant)
        job = Job(job_id=self._next_job_id, spec=spec)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        tenant.counters.submitted += 1
        overhead = float(
            self._rng.uniform(0.5, 1.5)) * ADMISSION_OVERHEAD_S
        self.timeline.record(
            SERVICE_SUBMIT, SERVICE_COMPONENT,
            label=(f"{job.label} submit kind={spec.kind} "
                   f"tenant={spec.tenant}"),
            duration_s=overhead)
        job.submitted_at_s = self.timeline.now_s
        if not tenant.has_quota():
            return self._reject(
                job, tenant,
                f"tenant {spec.tenant!r} pending quota "
                f"({tenant.config.max_pending}) exhausted")
        if not tenant.bucket.try_take(self.timeline.now_s):
            return self._reject(
                job, tenant,
                f"tenant {spec.tenant!r} rate limit exceeded "
                f"(bucket empty)")
        tenant.pending += 1
        tenant.counters.admitted += 1
        job.state = JOB_QUEUED
        self._queue.push(job)
        self.timeline.record(
            SERVICE_ADMIT, SERVICE_COMPONENT,
            label=f"{job.label} admit priority={spec.priority}")
        return job

    def _reject(self, job: Job, tenant: TenantState, reason: str) -> Job:
        job.state = JOB_REJECTED
        job.detail = reason
        tenant.counters.rejected += 1
        self.timeline.record(
            SERVICE_REJECT, SERVICE_COMPONENT,
            label=f"{job.label} reject: {reason}")
        return job

    # -- scheduling --------------------------------------------------------

    def run_next(self) -> Job | None:
        """Dispatch the most urgent queued job; ``None`` when idle."""
        if not self._queue:
            return None
        job = self._queue.pop()
        tenant = self.tenant(job.spec.tenant)
        job.state = JOB_RUNNING
        job.started_at_s = self.timeline.now_s
        self.timeline.record(
            SERVICE_DISPATCH, SERVICE_COMPONENT,
            label=f"{job.label} dispatch kind={job.spec.kind}")
        address = job.spec.content_address
        cached = self.cache.get(address)
        if cached is not None:
            job.result = cached
            job.cache_hit = True
            self.timeline.record(
                SERVICE_CACHE_HIT, SERVICE_COMPONENT,
                label=f"{job.label} cache hit {address[:12]}")
            return self._complete(job, tenant)
        try:
            payload, cost = self.registry.invoke(
                job.spec.kind, job.spec.config_mapping(), job.spec.seed,
                self._progress_emitter(job))
        except ReproError as exc:
            return self._fail(job, tenant, exc)
        self.timeline.record(
            SERVICE_EXECUTE, SERVICE_COMPONENT,
            label=f"{job.label} execute kind={job.spec.kind}",
            duration_s=cost)
        job.result = JobResult(address=address, kind=job.spec.kind,
                               seed=job.spec.seed, payload=payload,
                               virtual_cost_s=cost)
        self.cache.put(job.result)
        return self._complete(job, tenant)

    def _progress_emitter(self, job: Job):
        def emit(detail: str) -> None:
            self.timeline.record(
                SERVICE_PROGRESS, SERVICE_COMPONENT,
                label=f"{job.label} progress: {detail}",
                advance=False)
        return emit

    def _complete(self, job: Job, tenant: TenantState) -> Job:
        job.state = JOB_COMPLETED
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        tenant.counters.completed += 1
        if job.cache_hit:
            tenant.counters.cache_hits += 1
        self.timeline.record(
            SERVICE_COMPLETE, SERVICE_COMPONENT,
            label=(f"{job.label} complete "
                   f"{'cached' if job.cache_hit else 'computed'}"))
        return job

    def _fail(self, job: Job, tenant: TenantState,
              exc: ReproError) -> Job:
        job.state = JOB_FAILED
        job.detail = f"{type(exc).__name__}: {exc}"
        job.completed_at_s = self.timeline.now_s
        tenant.pending -= 1
        self._failed += 1
        self.timeline.record(
            SERVICE_COMPLETE, SERVICE_COMPONENT,
            label=f"{job.label} failed: {job.detail}")
        return job

    def run_until_idle(self) -> list[Job]:
        """Drain the queue; returns the jobs finished by this call."""
        finished: list[Job] = []
        while True:
            job = self.run_next()
            if job is None:
                return finished
            finished.append(job)

    def submit_and_run(self, spec: JobSpec) -> Job:
        """Submit one job and drain the queue (the thin-client path).

        The returned job is completed, failed or rejected — never left
        queued.
        """
        job = self.submit(spec)
        if job.state == JOB_QUEUED:
            self.run_until_idle()
        return job

    # -- introspection -----------------------------------------------------

    def job(self, job_id: int) -> Job:
        """The lifecycle record for ``job_id``.

        Raises:
            ConfigurationError: for an unknown job id.
        """
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown job id {job_id}") from None

    def jobs(self) -> tuple[Job, ...]:
        """Every job this service has seen, in submission order."""
        return tuple(self._jobs[job_id]
                     for job_id in sorted(self._jobs))

    def job_events(self, job_id: int) -> tuple[SimEvent, ...]:
        """The job's progress ledger: its ``service.*`` event stream."""
        prefix = f"job{self.job(job_id).job_id} "
        return tuple(event for event in self.timeline
                     if event.label.startswith(prefix))

    def stats(self) -> ServiceStats:
        """Counters snapshot across admission, cache and execution."""
        tenants = {name: state.counters.as_dict()
                   for name, state in sorted(self._tenants.items())}
        totals = {key: sum(counters[key] for counters in tenants.values())
                  for key in ("submitted", "admitted", "rejected",
                              "completed", "cache_hits")}
        return ServiceStats(
            submitted=totals["submitted"],
            admitted=totals["admitted"],
            rejected=totals["rejected"],
            completed=totals["completed"],
            failed=self._failed,
            cache_hits=totals["cache_hits"],
            queue_depth=len(self._queue),
            virtual_now_s=self.timeline.now_s,
            cache=self.cache.stats(),
            invocations=self.registry.invocation_counts(),
            tenants=tenants)
