"""Supervised worker model: deadlines, heartbeats, bounded retry.

The supervisor wraps every engine execution the service dispatches:

* a per-job **heartbeat monitor** — the :class:`repro.mcu.watchdog`
  kick-or-expire idiom on the service's virtual clock — turns an
  injected worker crash into a bounded detection dwell instead of a
  lost session;
* a per-job **watchdog deadline** catches workloads that wedge without
  exiting (heartbeats keep flowing, progress does not);
* a **bounded retry budget** — the OTA :class:`RetryPolicy` reused at
  the service layer, with a deterministic per-job jitter stream — backs
  transient strikes off without synchronized retry storms;
* **poison-job quarantine**: a job that strikes out lands in the
  terminal ``JOB_QUARANTINED`` state, never an infinite retry loop.

Crash/hang/deadline strikes are *transient* (retried); an engine
raising :class:`~repro.errors.ReproError` is *permanent* (the job is
deterministic — rerunning it fails identically) and fails the job
immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
# The MAC retry policy is scheduling machinery, not an engine entry
# point: reusing it keeps one backoff vocabulary across layers.
from repro.ota.mac import RetryPolicy  # reprolint: disable=REPRO014

# Sub-stream tag for per-job supervision jitter (the OTA jitter stream
# uses 0x0177; this one must stay distinct under a shared seed).
_STREAM_SUPERVISOR = 0x0178


@dataclass(frozen=True, kw_only=True)
class SupervisorConfig:
    """Supervision policy for dispatched jobs.

    The default configuration is *passive*: a single attempt, no
    deadline, no jitter — with no fault plan bound, supervised
    execution is bit-identical to the unsupervised code path (the same
    ``policy=None`` contract the OTA retry layer honours).

    Attributes:
        policy: bounded retry budget and backoff for transient strikes
            (worker crash, workload hang, deadline overrun);
            ``max_attempts`` is the quarantine threshold.
        heartbeat_timeout_s: dwell before a crashed (silent) worker is
            declared dead.
        watchdog_timeout_s: dwell before a hung (alive-but-stuck)
            workload is reset.
        deadline_s: per-job virtual-time budget measured from dispatch;
            ``None`` means unbounded.
    """

    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=1))
    heartbeat_timeout_s: float = 5.0
    watchdog_timeout_s: float = 10.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout_s must be positive, "
                f"got {self.heartbeat_timeout_s!r}")
        if self.watchdog_timeout_s <= 0:
            raise ConfigurationError(
                f"watchdog_timeout_s must be positive, "
                f"got {self.watchdog_timeout_s!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive or None, "
                f"got {self.deadline_s!r}")


def job_jitter_rng(policy: RetryPolicy,
                   job_id: int) -> np.random.Generator | None:
    """The per-job backoff jitter stream (``None`` when jitter is off).

    Keyed by ``(policy seed, supervisor stream tag, job id)`` so delays
    are independent of dispatch order and replay bit-identically during
    journal recovery.
    """
    if policy.jitter_fraction == 0.0:
        return None
    return np.random.default_rng(
        [policy.seed, _STREAM_SUPERVISOR, job_id])


class HeartbeatMonitor:
    """Kick-or-expire heartbeat tracking on the virtual clock.

    The :class:`repro.mcu.watchdog.Watchdog` idiom without the event
    scheduler: the supervisor arms the monitor at dispatch, the worker
    kicks it at every progress milestone, and a worker that goes silent
    is declared dead ``timeout_s`` after its last kick.  ``resets``
    counts declared deaths, mirroring ``Watchdog.resets``.
    """

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ConfigurationError(
                f"heartbeat timeout must be positive, got {timeout_s!r}")
        self.timeout_s = timeout_s
        self.armed = False
        self.expired = False
        self.resets = 0
        self._last_kick_s = 0.0

    def arm(self, now_s: float) -> None:
        """Start watching; the first deadline is one timeout from now."""
        self.armed = True
        self.expired = False
        self._last_kick_s = now_s

    def kick(self, now_s: float) -> None:
        """A heartbeat arrived: push the deadline past ``now_s``."""
        self._last_kick_s = now_s

    @property
    def deadline_s(self) -> float:
        """Absolute virtual time the worker is declared dead."""
        return self._last_kick_s + self.timeout_s

    def declare_dead(self) -> float:
        """Record a missed-heartbeat death; returns the detection dwell.

        The dwell is the full timeout: the supervisor only notices a
        silent worker when the deadline lapses.
        """
        self.armed = False
        self.expired = True
        self.resets += 1
        return self.timeout_s

    def disarm(self) -> None:
        """Stop watching (the attempt finished)."""
        self.armed = False
