"""Admission-control load shedding: reject early when overloaded.

Under overload a service that keeps admitting drowns: queue latency
grows without bound and every tenant suffers.  The shedding policy
refuses new work *at admission* — after the submission is journaled and
charged its admission overhead, before quota and rate-limit checks —
once the global queue depth or the submitting tenant's backlog crosses
a high-water mark.  A shed job ends ``JOB_REJECTED`` with a
``service.shed`` ledger event, so a trace distinguishes overload
rejections from quota or rate-limit rejections.

The decision is a pure function of the service's deterministic state
(queue depth, tenant backlog), so it replays bit-exactly during journal
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, kw_only=True)
class SheddingPolicy:
    """High-water marks above which admission sheds new jobs.

    Attributes:
        queue_high_water: shed when this many jobs already await
            dispatch (``None`` disables the global mark).
        tenant_high_water: shed when the submitting tenant already has
            this many jobs pending (``None`` disables the per-tenant
            mark).
    """

    queue_high_water: int | None = 64
    tenant_high_water: int | None = None

    def __post_init__(self) -> None:
        for name in ("queue_high_water", "tenant_high_water"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1 or None, got {value!r}")
        if self.queue_high_water is None and self.tenant_high_water is None:
            raise ConfigurationError(
                "shedding policy needs at least one high-water mark")

    def should_shed(self, queue_depth: int,
                    tenant_pending: int) -> str | None:
        """The shed reason at the given load, or ``None`` to admit."""
        if (self.queue_high_water is not None
                and queue_depth >= self.queue_high_water):
            return (f"queue depth {queue_depth} at high-water mark "
                    f"{self.queue_high_water}")
        if (self.tenant_high_water is not None
                and tenant_pending >= self.tenant_high_water):
            return (f"tenant backlog {tenant_pending} at high-water "
                    f"mark {self.tenant_high_water}")
        return None
