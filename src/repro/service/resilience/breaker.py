"""Per-workload circuit breakers: fail fast when an engine is sick.

A breaker guards one workload *kind*.  Consecutive failures trip it
open; open breakers short-circuit dispatch (the job is rejected without
touching the engine, though the result cache still answers hits — the
degradation story); after a seeded-jittered cooldown the breaker goes
half-open and admits a single probe job whose outcome closes or
re-opens it.  All state runs on the service's virtual clock, and the
probe jitter draws from a per-kind ``default_rng`` stream derived from
the breaker seed and a hash of the kind name, so breaker behaviour is a
pure function of configuration and the dispatch history — replayable
bit-exactly during journal recovery.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

# Sub-stream tag separating breaker jitter from every other service
# stream rooted at the same seed.
_STREAM_BREAKER = 0x00B5


def _kind_index(kind: str) -> int:
    """A stable 64-bit stream index for a workload kind.

    Built from SHA-256 rather than ``hash()`` so the stream — and with
    it every probe-jitter draw — is identical across interpreter runs
    (``hash()`` is salted per process).
    """
    return int.from_bytes(
        hashlib.sha256(kind.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True, kw_only=True)
class BreakerConfig:
    """Circuit-breaker policy, shared by every per-kind breaker.

    Attributes:
        seed: root of the probe-jitter streams (keyword-only, required).
        failure_threshold: consecutive failures that trip a closed
            breaker open.
        open_duration_s: base cooldown before an open breaker admits a
            probe.
        probe_jitter_fraction: +/- fractional spread on the cooldown so
            recovered breakers do not probe in lockstep.
    """

    seed: int
    failure_threshold: int = 3
    open_duration_s: float = 30.0
    probe_jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}")
        if self.open_duration_s <= 0:
            raise ConfigurationError(
                f"open_duration_s must be positive, "
                f"got {self.open_duration_s!r}")
        if not 0.0 <= self.probe_jitter_fraction < 1.0:
            raise ConfigurationError(
                f"probe_jitter_fraction must be in [0, 1), "
                f"got {self.probe_jitter_fraction!r}")


class CircuitBreaker:
    """The closed/open/half-open state machine for one workload kind.

    The three mutators return the transition they caused (``"open"``,
    ``"half_open"``, ``"close"`` or ``None``) so the service can emit
    the matching ``service.breaker.*`` ledger event.
    """

    def __init__(self, config: BreakerConfig, kind: str) -> None:
        self.config = config
        self.kind = kind
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened = 0
        self.reopen_at_s: float | None = None
        self._rng = np.random.default_rng(
            [config.seed, _STREAM_BREAKER, _kind_index(kind)])

    def allow(self, now_s: float) -> tuple[bool, str | None]:
        """Whether a dispatch may proceed at virtual time ``now_s``.

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits the caller as the probe.
        """
        if self.state == BREAKER_OPEN:
            if self.reopen_at_s is not None and now_s >= self.reopen_at_s:
                self.state = BREAKER_HALF_OPEN
                return True, "half_open"
            return False, None
        return True, None

    def record_success(self) -> str | None:
        """A guarded execution completed; closes a half-open breaker."""
        self.failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.reopen_at_s = None
            return "close"
        return None

    def record_failure(self, now_s: float) -> str | None:
        """A guarded execution failed; may trip the breaker open.

        A failed half-open probe re-opens immediately; a closed breaker
        opens once ``failure_threshold`` consecutive failures accrue.
        The cooldown is jittered from the per-kind stream — the draw
        happens only when the breaker actually opens, keeping the
        stream aligned under journal replay.
        """
        self.failures += 1
        if (self.state == BREAKER_HALF_OPEN
                or self.failures >= self.config.failure_threshold):
            spread = 0.0
            if self.config.probe_jitter_fraction > 0.0:
                spread = (self.config.probe_jitter_fraction
                          * (2.0 * float(self._rng.random()) - 1.0))
            self.state = BREAKER_OPEN
            self.reopen_at_s = (
                now_s + self.config.open_duration_s * (1.0 + spread))
            self.failures = 0
            self.opened += 1
            return "open"
        return None
