"""Crash recovery and graceful degradation for the campaign service.

Four pieces turn :class:`~repro.service.api.CampaignService` from a
happy-path demo into a service that survives its own failures:

* :mod:`~repro.service.resilience.journal` — the write-ahead,
  hash-chained JSONL job journal and the chaos :class:`CrashPlan`;
* :mod:`~repro.service.resilience.supervisor` — per-job deadlines,
  heartbeat monitoring, bounded :class:`RetryPolicy` retry and
  poison-job quarantine;
* :mod:`~repro.service.resilience.breaker` — per-workload
  closed/open/half-open circuit breakers with seeded probe jitter;
* :mod:`~repro.service.resilience.shedding` — admission-control load
  shedding at queue-depth / tenant-backlog high-water marks.

Everything here is deterministic on the service's virtual clock, which
is what makes crash recovery exact: replaying the journaled prefix
through the normal code paths regenerates the interrupted session
bit-for-bit (``service_session_fingerprint`` parity, proven across 25
seeds by ``make chaos-service``).
"""

from repro.service.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.service.resilience.journal import (
    GENESIS_DIGEST,
    RECORD_ADMIT,
    RECORD_COMPLETE,
    RECORD_DISPATCH,
    RECORD_FAIL,
    RECORD_OPEN,
    RECORD_QUARANTINE,
    RECORD_RECOVER,
    RECORD_REJECT,
    RECORD_SUBMIT,
    RECORD_TENANT,
    RECORD_TYPES,
    TERMINAL_RECORD_TYPES,
    CrashPlan,
    JobJournal,
    JournalReadResult,
    JournalRecord,
    read_journal,
)
from repro.service.resilience.shedding import SheddingPolicy
from repro.service.resilience.supervisor import (
    HeartbeatMonitor,
    RetryPolicy,
    SupervisorConfig,
    job_jitter_rng,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "GENESIS_DIGEST",
    "RECORD_ADMIT",
    "RECORD_COMPLETE",
    "RECORD_DISPATCH",
    "RECORD_FAIL",
    "RECORD_OPEN",
    "RECORD_QUARANTINE",
    "RECORD_RECOVER",
    "RECORD_REJECT",
    "RECORD_SUBMIT",
    "RECORD_TENANT",
    "RECORD_TYPES",
    "TERMINAL_RECORD_TYPES",
    "BreakerConfig",
    "CircuitBreaker",
    "CrashPlan",
    "HeartbeatMonitor",
    "JobJournal",
    "JournalReadResult",
    "JournalRecord",
    "RetryPolicy",
    "SheddingPolicy",
    "SupervisorConfig",
    "job_jitter_rng",
    "read_journal",
]
