"""JSON codecs for journal payloads: specs, results, and service config.

The journal must be self-contained: ``CampaignService.recover`` rebuilds
a session from the file alone (plus a workload registry, which is code,
not data).  These helpers round-trip every configuration object the
service was constructed with — bit-exactly for floats, because
``json.dumps``/``json.loads`` round-trip every finite double through
``repr`` — so a replayed spec hashes to the same content address and a
replayed config reconstructs the same seeded streams.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JournalError
from repro.faults.service import (
    JournalTornWriteModel,
    ServiceFaultPlan,
    WorkerCrashModel,
    WorkloadHangModel,
)
from repro.service.jobspec import JobResult, JobSpec
from repro.service.resilience.breaker import BreakerConfig
from repro.service.resilience.shedding import SheddingPolicy
from repro.service.resilience.supervisor import RetryPolicy, SupervisorConfig
from repro.service.tenancy import TenantConfig


def _require(payload: dict[str, Any], key: str, what: str) -> Any:
    if key not in payload:
        raise JournalError(
            f"journal {what} payload is missing the {key!r} field")
    return payload[key]


def encode_spec(spec: JobSpec) -> dict[str, Any]:
    """A job spec as a JSON-able mapping (canonical config included)."""
    return {"kind": spec.kind, "config": spec.config, "seed": spec.seed,
            "tenant": spec.tenant, "priority": spec.priority}


def decode_spec(payload: dict[str, Any]) -> JobSpec:
    """Rebuild a spec; re-canonicalization restores the pair-tuples."""
    return JobSpec(kind=_require(payload, "kind", "spec"),
                   config=_require(payload, "config", "spec"),
                   seed=_require(payload, "seed", "spec"),
                   tenant=_require(payload, "tenant", "spec"),
                   priority=_require(payload, "priority", "spec"))


def encode_result(result: JobResult) -> dict[str, Any]:
    """A job result as a JSON-able mapping."""
    return {"address": result.address, "kind": result.kind,
            "seed": result.seed, "payload": result.payload,
            "virtual_cost_s": result.virtual_cost_s}


def decode_result(payload: dict[str, Any]) -> JobResult:
    """Rebuild a result (payload re-canonicalizes on construction)."""
    return JobResult(address=_require(payload, "address", "result"),
                     kind=_require(payload, "kind", "result"),
                     seed=_require(payload, "seed", "result"),
                     payload=_require(payload, "payload", "result"),
                     virtual_cost_s=_require(
                         payload, "virtual_cost_s", "result"))


def encode_tenant(config: TenantConfig) -> dict[str, Any]:
    return {"name": config.name, "max_pending": config.max_pending,
            "bucket_capacity": config.bucket_capacity,
            "refill_per_s": config.refill_per_s}


def decode_tenant(payload: dict[str, Any]) -> TenantConfig:
    return TenantConfig(
        name=_require(payload, "name", "tenant"),
        max_pending=_require(payload, "max_pending", "tenant"),
        bucket_capacity=_require(payload, "bucket_capacity", "tenant"),
        refill_per_s=_require(payload, "refill_per_s", "tenant"))


def encode_retry_policy(policy: RetryPolicy) -> dict[str, Any]:
    return {"max_attempts": policy.max_attempts, "backoff": policy.backoff,
            "base_delay_s": policy.base_delay_s,
            "max_delay_s": policy.max_delay_s,
            "jitter_fraction": policy.jitter_fraction,
            "session_deadline_s": policy.session_deadline_s,
            "seed": policy.seed}


def decode_retry_policy(payload: dict[str, Any]) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=_require(payload, "max_attempts", "policy"),
        backoff=_require(payload, "backoff", "policy"),
        base_delay_s=_require(payload, "base_delay_s", "policy"),
        max_delay_s=_require(payload, "max_delay_s", "policy"),
        jitter_fraction=_require(payload, "jitter_fraction", "policy"),
        session_deadline_s=_require(
            payload, "session_deadline_s", "policy"),
        seed=_require(payload, "seed", "policy"))


def encode_supervisor(config: SupervisorConfig | None
                      ) -> dict[str, Any] | None:
    if config is None:
        return None
    return {"policy": encode_retry_policy(config.policy),
            "heartbeat_timeout_s": config.heartbeat_timeout_s,
            "watchdog_timeout_s": config.watchdog_timeout_s,
            "deadline_s": config.deadline_s}


def decode_supervisor(payload: dict[str, Any] | None
                      ) -> SupervisorConfig | None:
    if payload is None:
        return None
    return SupervisorConfig(
        policy=decode_retry_policy(
            _require(payload, "policy", "supervisor")),
        heartbeat_timeout_s=_require(
            payload, "heartbeat_timeout_s", "supervisor"),
        watchdog_timeout_s=_require(
            payload, "watchdog_timeout_s", "supervisor"),
        deadline_s=_require(payload, "deadline_s", "supervisor"))


def encode_breaker(config: BreakerConfig | None) -> dict[str, Any] | None:
    if config is None:
        return None
    return {"seed": config.seed,
            "failure_threshold": config.failure_threshold,
            "open_duration_s": config.open_duration_s,
            "probe_jitter_fraction": config.probe_jitter_fraction}


def decode_breaker(payload: dict[str, Any] | None) -> BreakerConfig | None:
    if payload is None:
        return None
    return BreakerConfig(
        seed=_require(payload, "seed", "breaker"),
        failure_threshold=_require(
            payload, "failure_threshold", "breaker"),
        open_duration_s=_require(payload, "open_duration_s", "breaker"),
        probe_jitter_fraction=_require(
            payload, "probe_jitter_fraction", "breaker"))


def encode_shedding(policy: SheddingPolicy | None
                    ) -> dict[str, Any] | None:
    if policy is None:
        return None
    return {"queue_high_water": policy.queue_high_water,
            "tenant_high_water": policy.tenant_high_water}


def decode_shedding(payload: dict[str, Any] | None
                    ) -> SheddingPolicy | None:
    if payload is None:
        return None
    return SheddingPolicy(
        queue_high_water=_require(
            payload, "queue_high_water", "shedding"),
        tenant_high_water=_require(
            payload, "tenant_high_water", "shedding"))


def encode_fault_plan(plan: ServiceFaultPlan | None
                      ) -> dict[str, Any] | None:
    if plan is None:
        return None
    crash = plan.worker_crash
    hang = plan.workload_hang
    torn = plan.torn_write
    return {
        "seed": plan.seed,
        "worker_crash": (None if crash is None else
                         {"seed": crash.seed,
                          "crash_prob": crash.crash_prob}),
        "workload_hang": (None if hang is None else
                          {"seed": hang.seed,
                           "hang_prob": hang.hang_prob}),
        "torn_write": (None if torn is None else
                       {"seed": torn.seed,
                        "torn_prob": torn.torn_prob}),
    }


def decode_fault_plan(payload: dict[str, Any] | None
                      ) -> ServiceFaultPlan | None:
    if payload is None:
        return None
    crash = _require(payload, "worker_crash", "fault plan")
    hang = _require(payload, "workload_hang", "fault plan")
    torn = _require(payload, "torn_write", "fault plan")
    return ServiceFaultPlan(
        seed=_require(payload, "seed", "fault plan"),
        worker_crash=(None if crash is None else WorkerCrashModel(
            seed=_require(crash, "seed", "worker crash model"),
            crash_prob=_require(crash, "crash_prob",
                                "worker crash model"))),
        workload_hang=(None if hang is None else WorkloadHangModel(
            seed=_require(hang, "seed", "workload hang model"),
            hang_prob=_require(hang, "hang_prob",
                               "workload hang model"))),
        torn_write=(None if torn is None else JournalTornWriteModel(
            seed=_require(torn, "seed", "torn write model"),
            torn_prob=_require(torn, "torn_prob", "torn write model"))))
