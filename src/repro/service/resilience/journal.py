"""Write-ahead job journal: the service's crash-recovery log.

Every lifecycle transition the :class:`~repro.service.api.CampaignService`
makes is appended to a JSONL file as a canonically serialized record
carrying a chained SHA-256 digest (each record's digest covers its body
*and* the previous record's digest, genesis-anchored), so corruption or
reordering anywhere in the log is detected on read.  Intent records
(``submit``, ``dispatch``) are written *before* the service acts;
outcome records (``complete``, ``fail``, ``quarantine``, ``reject``)
after.  Because the service is a deterministic virtual-time machine,
:meth:`CampaignService.recover <repro.service.api.CampaignService.recover>`
rebuilds a crashed session by re-driving the recorded prefix through the
normal code paths — every RNG draw, ledger event and admission verdict
regenerates — substituting only the engine invocation of journaled
successful runs from the logged results.

Serialization uses plain ``json.dumps(..., sort_keys=True)``: Python's
``repr``-based float rendering round-trips every finite double
bit-exactly through ``json.loads``, which is what lets replayed specs
and results hash to the same content addresses as the originals.

Torn tails: a crash mid-append can leave a partial final line.
:func:`read_journal` accepts a *valid* trailing record that merely lost
its newline, drops an invalid trailing fragment (``torn_tail=True``),
and raises :class:`~repro.errors.JournalError` for any invalid record
that *is* newline-terminated — mid-file damage is corruption, not a
crash artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, BinaryIO

from repro.errors import JournalError, SimulatedCrashError
from repro.faults.service import JournalTornWriteModel

RECORD_OPEN = "open"
RECORD_TENANT = "tenant"
RECORD_SUBMIT = "submit"
RECORD_ADMIT = "admit"
RECORD_REJECT = "reject"
RECORD_DISPATCH = "dispatch"
RECORD_COMPLETE = "complete"
RECORD_FAIL = "fail"
RECORD_QUARANTINE = "quarantine"
RECORD_RECOVER = "recover"

RECORD_TYPES = frozenset({
    RECORD_OPEN, RECORD_TENANT, RECORD_SUBMIT, RECORD_ADMIT,
    RECORD_REJECT, RECORD_DISPATCH, RECORD_COMPLETE, RECORD_FAIL,
    RECORD_QUARANTINE, RECORD_RECOVER,
})

#: Terminal outcome record types (at most one per job, audit-verified).
TERMINAL_RECORD_TYPES = frozenset({
    RECORD_COMPLETE, RECORD_FAIL, RECORD_QUARANTINE, RECORD_REJECT,
})

GENESIS_DIGEST = "0" * 64
"""The ``prev`` digest of the first record: anchors the hash chain."""


@dataclass(frozen=True)
class JournalRecord:
    """One parsed, chain-verified journal line.

    Attributes:
        seq: zero-based position in the journal.
        type: one of the ``RECORD_*`` constants.
        payload: the record's JSON body (shape depends on ``type``).
        prev: the previous record's digest (genesis for ``seq == 0``).
        digest: SHA-256 over the canonical body serialization.
    """

    seq: int
    type: str
    payload: dict[str, Any]
    prev: str
    digest: str


@dataclass(frozen=True)
class JournalReadResult:
    """What :func:`read_journal` recovered from a journal file.

    Attributes:
        records: every chain-verified record, in sequence order.
        torn_tail: whether an invalid trailing fragment (a torn write
            from a crash mid-append) was dropped.
    """

    records: tuple[JournalRecord, ...]
    torn_tail: bool


def _canonical_body(seq: int, rtype: str, payload: dict[str, Any],
                    prev: str) -> str:
    """The digest pre-image: the record body, canonically serialized."""
    try:
        return json.dumps(
            {"payload": payload, "prev": prev, "seq": seq, "type": rtype},
            sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"journal payload for {rtype!r} record is not "
            f"JSON-serializable: {exc}") from exc


def _record_line(record: JournalRecord) -> bytes:
    """The exact bytes a record occupies on disk (newline included)."""
    body = json.loads(_canonical_body(
        record.seq, record.type, record.payload, record.prev))
    body["digest"] = record.digest
    return (json.dumps(body, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def _make_record(seq: int, rtype: str, payload: dict[str, Any],
                 prev: str) -> JournalRecord:
    if rtype not in RECORD_TYPES:
        raise JournalError(f"unknown journal record type {rtype!r}")
    body = _canonical_body(seq, rtype, payload, prev)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return JournalRecord(seq=seq, type=rtype, payload=payload,
                         prev=prev, digest=digest)


def _parse_segment(segment: bytes, seq: int, prev: str) -> JournalRecord:
    """Parse and chain-verify one journal line.

    Raises:
        JournalError: for malformed JSON, a digest mismatch, a broken
            chain link, an out-of-sequence record, or an unknown type.
    """
    try:
        parsed = json.loads(segment.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise JournalError(
            f"journal record {seq} is not valid JSON: {exc}") from exc
    if not isinstance(parsed, dict):
        raise JournalError(
            f"journal record {seq} is not a JSON object")
    for key in ("digest", "payload", "prev", "seq", "type"):
        if key not in parsed:
            raise JournalError(
                f"journal record {seq} is missing the {key!r} field")
    if parsed["seq"] != seq:
        raise JournalError(
            f"journal record out of sequence: expected seq {seq}, "
            f"got {parsed['seq']!r}")
    if parsed["prev"] != prev:
        raise JournalError(
            f"journal record {seq} breaks the hash chain: prev "
            f"{parsed['prev']!r} != expected {prev!r}")
    rtype = parsed["type"]
    if rtype not in RECORD_TYPES:
        raise JournalError(
            f"journal record {seq} has unknown type {rtype!r}")
    payload = parsed["payload"]
    if not isinstance(payload, dict):
        raise JournalError(
            f"journal record {seq} payload is not a JSON object")
    body = _canonical_body(seq, rtype, payload, prev)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if parsed["digest"] != digest:
        raise JournalError(
            f"journal record {seq} digest mismatch: stored "
            f"{parsed['digest']!r}, recomputed {digest!r}")
    return JournalRecord(seq=seq, type=rtype, payload=payload,
                         prev=prev, digest=digest)


def read_journal(path: str) -> JournalReadResult:
    """Parse and chain-verify a journal file, tolerating a torn tail.

    A trailing record that verifies but lost only its newline (a tear
    that cut exactly the separator) is accepted as durable.  An invalid
    trailing fragment is dropped and reported via ``torn_tail``.
    Invalid *newline-terminated* records are corruption and raise.

    Raises:
        JournalError: for a missing file or mid-file corruption.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path!r}: {exc}") from exc
    records: list[JournalRecord] = []
    prev = GENESIS_DIGEST
    segments = raw.split(b"\n")
    # Everything before the final separator was newline-terminated and
    # must verify; the final segment is empty (clean tail), a whole
    # record that lost only its newline, or a torn fragment.
    for segment in segments[:-1]:
        record = _parse_segment(segment, len(records), prev)
        records.append(record)
        prev = record.digest
    tail = segments[-1]
    torn_tail = False
    if tail:
        try:
            record = _parse_segment(tail, len(records), prev)
        except JournalError:  # reprolint: disable=REPRO016
            # An invalid un-terminated tail is the expected artifact of
            # a crash mid-append, not corruption: drop it.  (Recovery
            # discipline note: this handler deliberately swallows the
            # error - the dropped record "never durably happened".)
            torn_tail = True
        else:
            records.append(record)
    return JournalReadResult(records=tuple(records), torn_tail=torn_tail)


@dataclass(frozen=True)
class CrashPlan:
    """Deterministic kill switch for the chaos harness.

    The owning :class:`JobJournal` raises
    :class:`~repro.errors.SimulatedCrashError` while appending the
    record whose sequence number equals ``after_records`` — i.e. after
    exactly ``after_records`` records are durable — optionally tearing
    the dying record's bytes via a
    :class:`~repro.faults.service.JournalTornWriteModel`.

    Attributes:
        after_records: journal boundary (record count) the crash fires
            at.
        torn_write: when set, decides how many bytes of the dying
            record reach disk; when ``None`` the whole record lands.
    """

    after_records: int
    torn_write: JournalTornWriteModel | None = None

    def __post_init__(self) -> None:
        if self.after_records < 0:
            raise JournalError(
                f"after_records must be >= 0, "
                f"got {self.after_records!r}")


class JobJournal:
    """Append-only, hash-chained lifecycle log for one service session.

    Args:
        path: journal file path; a fresh journal truncates it.
        crash_plan: optional chaos kill switch (see :class:`CrashPlan`).
    """

    def __init__(self, path: str,
                 crash_plan: CrashPlan | None = None) -> None:
        self.path = path
        self.crash_plan = crash_plan
        self._seq = 0
        self._prev = GENESIS_DIGEST
        self._handle: BinaryIO | None = open(path, "wb")

    @classmethod
    def resume(cls, path: str,
               crash_plan: CrashPlan | None = None) -> "JobJournal":
        """Continue an existing journal's chain after a crash.

        Re-reads and chain-verifies the file, rewrites it without any
        torn tail, and positions the journal to append the next record.

        Raises:
            JournalError: when the existing journal is corrupt.
        """
        result = read_journal(path)
        journal = cls.__new__(cls)
        journal.path = path
        journal.crash_plan = crash_plan
        journal._seq = len(result.records)
        journal._prev = (result.records[-1].digest if result.records
                         else GENESIS_DIGEST)
        journal._handle = open(path, "wb")
        for record in result.records:
            journal._handle.write(_record_line(record))
        journal._handle.flush()
        return journal

    @property
    def records_written(self) -> int:
        """Records appended so far (the next record's sequence number)."""
        return self._seq

    def append(self, rtype: str, payload: dict[str, Any]) -> JournalRecord:
        """Append one record, honouring the crash plan.

        Raises:
            JournalError: when the journal is closed or the payload is
                not JSON-serializable.
            SimulatedCrashError: when the crash plan fires on this
                append (the record may land whole, torn, or not at all).
        """
        if self._handle is None:
            raise JournalError("journal is closed")
        record = _make_record(self._seq, rtype, payload, self._prev)
        data = _record_line(record)
        plan = self.crash_plan
        if plan is not None and self._seq == plan.after_records:
            keep: int | None = None
            if plan.torn_write is not None:
                keep = plan.torn_write.tear(self._seq, len(data))
            self._handle.write(data if keep is None else data[:keep])
            self._handle.flush()
            self.close()
            raise SimulatedCrashError(
                f"chaos crash while appending journal record "
                f"{record.seq} ({rtype})")
        self._handle.write(data)
        self._handle.flush()
        self._seq += 1
        self._prev = record.digest
        return record

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
