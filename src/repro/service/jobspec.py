"""Typed job specifications with content-addressed identity.

A :class:`JobSpec` is the unit of work a tenant submits to the campaign
service: a registered workload kind, a JSON-able configuration mapping
and a root seed.  Because every engine in this repository is a pure
function of ``(config, seed)`` — that is the whole reproducibility
contract the lint rules and parity goldens enforce — two specs with
equal ``(kind, config, seed)`` denote the *same computation*, and the
service dedupes them through a content-addressed result cache.

The content address is a SHA-256 over a canonical serialization:
mappings are emitted with sorted keys, sequences positionally, and
floats as ``float.hex()`` so the address distinguishes values that
differ in the last ulp (a JSON round-trip through decimal would not).
Tenant and priority are routing metadata, not identity: two tenants
submitting the same seeded job share one cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError

PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_BATCH = 20
"""Priority bands: lower sorts earlier.  Ties dispatch in submit order."""

DEFAULT_TENANT = "default"


def canonical_form(value: Any) -> Any:
    """Normalize a JSON-able value into an immutable canonical shape.

    Mappings become key-sorted tuples of ``(key, value)`` pairs,
    sequences become tuples, scalars pass through.  The result is
    hashable-free of dicts/lists so a frozen :class:`JobSpec` cannot be
    mutated through its config after submission.

    Raises:
        ConfigurationError: for non-string mapping keys or values
            outside the JSON-able vocabulary (no numpy arrays, no
            arbitrary objects — specs must be wire-shippable).
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Mapping):
        items = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"config keys must be strings, got {key!r}")
            items.append((key, canonical_form(value[key])))
        return tuple(items)
    if isinstance(value, (list, tuple)):
        return tuple(canonical_form(item) for item in value)
    raise ConfigurationError(
        f"config values must be JSON-able scalars/sequences/mappings, "
        f"got {type(value).__name__}: {value!r}")


def canonical_json(value: Any) -> str:
    """Render a canonical form (or raw JSON-able value) as one string.

    Floats are rendered via ``float.hex()`` so the serialization is
    bit-exact; mappings (already key-sorted tuples of pairs after
    :func:`canonical_form`) render as JSON objects.  The output is the
    hashing pre-image for :func:`content_address` and the fingerprint
    base for the determinism double-run check.
    """
    form = canonical_form(value)
    return _render(form)


def _render(form: Any) -> str:
    if isinstance(form, bool):
        return "true" if form else "false"
    if form is None:
        return "null"
    if isinstance(form, float):
        return json.dumps(form.hex())
    if isinstance(form, int):
        return str(form)
    if isinstance(form, str):
        return json.dumps(form, ensure_ascii=True)
    if isinstance(form, tuple) and _is_pair_tuple(form):
        inner = ",".join(f"{json.dumps(k)}:{_render(v)}" for k, v in form)
        return "{" + inner + "}"
    if isinstance(form, tuple):
        return "[" + ",".join(_render(item) for item in form) + "]"
    raise ConfigurationError(
        f"cannot render non-canonical value {form!r}")


def _is_pair_tuple(form: tuple) -> bool:
    """Whether a tuple is a canonicalized mapping (all (str, v) pairs)."""
    return (len(form) > 0
            and all(isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[0], str) for item in form))


def content_address(kind: str, config: Any, seed: int) -> str:
    """SHA-256 content address over the job's identity triple."""
    preimage = canonical_json(
        {"kind": kind, "config": config, "seed": seed})
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One unit of schedulable work: ``(kind, config, seed)`` + routing.

    Attributes:
        kind: workload kind registered in the
            :class:`~repro.service.registry.WorkloadRegistry`.
        config: JSON-able workload configuration (canonicalized on
            construction; empty mapping for parameterless workloads).
        seed: root seed of every random stream the workload draws.
        tenant: submitting tenant name (routing metadata, not identity).
        priority: scheduling band; lower dispatches first.
    """

    kind: str
    config: Any = ()
    seed: int = 0
    tenant: str = DEFAULT_TENANT
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("job kind must be non-empty")
        if self.seed < 0:
            raise ConfigurationError(
                f"job seed must be >= 0, got {self.seed}")
        if not self.tenant:
            raise ConfigurationError("tenant name must be non-empty")
        object.__setattr__(self, "config", canonical_form(self.config))

    @property
    def content_address(self) -> str:
        """The spec's SHA-256 identity (tenant/priority excluded)."""
        return content_address(self.kind, self.config, self.seed)

    def config_mapping(self) -> dict[str, Any]:
        """The canonical config re-inflated as a plain dict for adapters.

        Nested mappings stay in canonical pair-tuple form only at the
        top level conversion point; adapters read scalar knobs, so one
        level of dict view is what they need (nested values are
        re-inflated recursively).
        """
        return _inflate_mapping(self.config)


def _inflate_mapping(form: Any) -> dict[str, Any]:
    if form == ():
        return {}
    if not (isinstance(form, tuple) and _is_pair_tuple(form)):
        raise ConfigurationError(
            f"job config must be a mapping, got {form!r}")
    return {key: _inflate(value) for key, value in form}


def _inflate(form: Any) -> Any:
    if isinstance(form, tuple) and _is_pair_tuple(form):
        return _inflate_mapping(form)
    if isinstance(form, tuple):
        return tuple(_inflate(item) for item in form)
    return form


@dataclass(frozen=True)
class JobResult:
    """What a completed job produced, cache-addressable and re-servable.

    Attributes:
        address: the producing spec's content address.
        kind: workload kind that produced the payload.
        seed: root seed the workload ran under.
        payload: JSON-able result data (canonicalized, so cached results
            are immutable and bit-stable across re-serves).
        virtual_cost_s: deterministic virtual-time execution span the
            workload reported (what the scheduler charged the clock).
    """

    address: str
    kind: str
    seed: int
    payload: Any = field(repr=False)
    virtual_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if self.virtual_cost_s < 0:
            raise ConfigurationError(
                f"virtual cost must be >= 0, got {self.virtual_cost_s!r}")
        object.__setattr__(self, "payload", canonical_form(self.payload))

    def payload_mapping(self) -> dict[str, Any]:
        """The canonical payload re-inflated as a plain dict."""
        return _inflate_mapping(self.payload)

    def fingerprint(self) -> str:
        """SHA-256 over the result's canonical serialization."""
        preimage = canonical_json(
            {"address": self.address, "kind": self.kind,
             "seed": self.seed, "payload": self.payload,
             "virtual_cost_s": self.virtual_cost_s})
        return hashlib.sha256(preimage.encode("utf-8")).hexdigest()
