"""Per-tenant admission control: quotas and token-bucket rate limits.

A testbed serves users who do not own the nodes (the paper's whole
premise), so one tenant must not be able to starve the fleet.  Two
deterministic mechanisms gate admission, both driven purely by the
service's *virtual* clock — no wall time anywhere, so the same
submission sequence always admits and rejects the same jobs:

* a **pending quota**: at most ``max_pending`` of a tenant's jobs may
  sit queued at once (completed/rejected jobs free their slot);
* a **token bucket**: each admission spends one token; tokens refill at
  ``refill_per_s`` per virtual second up to ``bucket_capacity``, so
  bursts are bounded while sustained virtual-time throughput converges
  to the refill rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenantConfig:
    """Admission policy for one tenant.

    Attributes:
        name: tenant identifier jobs route by.
        max_pending: jobs allowed in the queue at once.
        bucket_capacity: maximum banked admission tokens (burst size).
        refill_per_s: tokens regained per virtual second.
    """

    name: str
    max_pending: int = 64
    bucket_capacity: float = 16.0
    refill_per_s: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if self.bucket_capacity < 1.0:
            raise ConfigurationError(
                f"bucket capacity must be >= 1, "
                f"got {self.bucket_capacity!r}")
        if self.refill_per_s <= 0.0:
            raise ConfigurationError(
                f"refill rate must be positive, got {self.refill_per_s!r}")


class TokenBucket:
    """Deterministic token bucket over virtual time.

    The bucket never reads a clock itself: callers pass the service's
    virtual ``now_s`` into :meth:`try_take`, which first credits the
    elapsed refill and then spends one token if available.
    """

    def __init__(self, capacity: float, refill_per_s: float,
                 now_s: float = 0.0) -> None:
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.tokens = capacity
        self._last_refill_s = now_s

    def _refill(self, now_s: float) -> None:
        if now_s < self._last_refill_s:
            raise ConfigurationError(
                f"virtual time moved backwards: {now_s!r} < "
                f"{self._last_refill_s!r}")
        self.tokens = min(
            self.capacity,
            self.tokens + (now_s - self._last_refill_s) * self.refill_per_s)
        self._last_refill_s = now_s

    def try_take(self, now_s: float) -> bool:
        """Spend one token at virtual time ``now_s`` if one is banked."""
        self._refill(now_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def peek(self, now_s: float) -> float:
        """Tokens available at ``now_s`` without spending any."""
        self._refill(now_s)
        return self.tokens


@dataclass
class TenantCounters:
    """Running totals of one tenant's interaction with the service."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    cache_hits: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"submitted": self.submitted, "admitted": self.admitted,
                "rejected": self.rejected, "completed": self.completed,
                "cache_hits": self.cache_hits,
                "quarantined": self.quarantined}


class TenantState:
    """One tenant's live admission state inside the service."""

    def __init__(self, config: TenantConfig, now_s: float = 0.0) -> None:
        self.config = config
        self.bucket = TokenBucket(config.bucket_capacity,
                                  config.refill_per_s, now_s)
        self.counters = TenantCounters()
        self.pending = 0

    def has_quota(self) -> bool:
        """Whether another job fits under the pending quota."""
        return self.pending < self.config.max_pending
