"""External RF front-end models: SE2435L (900 MHz) and SKY66112 (2.4 GHz).

The AT86RF215's 14 dBm maximum is below the FCC's 30 dBm ceiling, so
tinySDR adds optional external PAs (paper section 3.1.1): the SE2435L
boosts the 900 MHz path to 30 dBm and the SKY66112 the 2.4 GHz path to
27 dBm.  Both include a receive LNA and a bypass circuit; bypass draws at
most 280 uA and sleep only 1 uA - numbers the power model uses directly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerError


class FrontendMode(enum.Enum):
    """Operating mode of an RF front-end module."""

    SLEEP = "sleep"
    BYPASS = "bypass"
    PA = "pa"
    LNA = "lna"


@dataclass(frozen=True)
class FrontendSpec:
    """Datasheet constants of one front-end chip.

    Attributes:
        name: part number.
        band_hz: (low, high) RF band covered.
        max_output_dbm: PA saturated output power.
        gain_db: small-signal PA gain.
        lna_gain_db: receive LNA gain.
        lna_noise_figure_db: LNA noise figure.
        pa_efficiency: DC-to-RF efficiency at full output.
        bypass_current_a: maximum bypass-mode current.
        sleep_current_a: sleep-mode current.
        lna_current_a: receive LNA current.
        supply_v: supply voltage.
    """

    name: str
    band_hz: tuple[float, float]
    max_output_dbm: float
    gain_db: float
    lna_gain_db: float
    lna_noise_figure_db: float
    pa_efficiency: float
    bypass_current_a: float
    sleep_current_a: float
    lna_current_a: float
    supply_v: float


# datasheet: Skyworks SE2435L; paper: section 3.1.1 (900 MHz front end)
SE2435L = FrontendSpec(
    name="SE2435L",
    band_hz=(860e6, 930e6),
    max_output_dbm=30.0,
    gain_db=16.0,
    lna_gain_db=12.0,
    lna_noise_figure_db=1.5,
    pa_efficiency=0.30,
    bypass_current_a=280e-6,
    sleep_current_a=1e-6,
    lna_current_a=7e-3,
    supply_v=3.5,
)

# datasheet: Skyworks SKY66112-11; paper: section 3.1.1 (2.4 GHz front end)
SKY66112 = FrontendSpec(
    name="SKY66112",
    band_hz=(2.4e9, 2.4835e9),
    max_output_dbm=27.0,
    gain_db=14.0,
    lna_gain_db=11.0,
    lna_noise_figure_db=2.0,
    pa_efficiency=0.28,
    bypass_current_a=280e-6,
    sleep_current_a=1e-6,
    lna_current_a=6e-3,
    supply_v=3.0,
)


class RfFrontend:
    """One bypassable PA/LNA front-end module."""

    def __init__(self, spec: FrontendSpec) -> None:
        self.spec = spec
        self.mode = FrontendMode.SLEEP

    def set_mode(self, mode: FrontendMode) -> None:
        """Select sleep, bypass, PA (transmit) or LNA (receive) mode."""
        self.mode = mode

    def output_power_dbm(self, input_power_dbm: float) -> float:
        """RF output power for a given drive level in the current mode.

        Raises:
            PowerError: when called in sleep mode.
            ConfigurationError: in LNA mode (receive path has no TX output).
        """
        if self.mode == FrontendMode.SLEEP:
            raise PowerError(f"{self.spec.name} is asleep")
        if self.mode == FrontendMode.BYPASS:
            return input_power_dbm
        if self.mode == FrontendMode.LNA:
            raise ConfigurationError(
                f"{self.spec.name} is in LNA (receive) mode")
        return min(input_power_dbm + self.spec.gain_db,
                   self.spec.max_output_dbm)

    def required_drive_dbm(self, target_output_dbm: float) -> float:
        """Radio drive level needed for a target PA output.

        Raises:
            ConfigurationError: if the target exceeds the PA's maximum.
        """
        if target_output_dbm > self.spec.max_output_dbm:
            raise ConfigurationError(
                f"{self.spec.name} cannot produce {target_output_dbm!r} dBm "
                f"(max {self.spec.max_output_dbm})")
        return target_output_dbm - self.spec.gain_db

    def power_draw_w(self, output_power_dbm: float | None = None) -> float:
        """DC power draw in the current mode.

        In PA mode ``output_power_dbm`` selects the operating point; PA
        draw scales with RF output through the efficiency figure.
        """
        spec = self.spec
        if self.mode == FrontendMode.SLEEP:
            return spec.sleep_current_a * spec.supply_v
        if self.mode == FrontendMode.BYPASS:
            return spec.bypass_current_a * spec.supply_v
        if self.mode == FrontendMode.LNA:
            return spec.lna_current_a * spec.supply_v
        if output_power_dbm is None:
            output_power_dbm = spec.max_output_dbm
        if output_power_dbm > spec.max_output_dbm:
            raise ConfigurationError(
                f"{spec.name} cannot produce {output_power_dbm!r} dBm")
        rf_watts = 10.0 ** (output_power_dbm / 10.0) / 1e3
        return rf_watts / spec.pa_efficiency

    def rx_noise_figure_db(self, radio_nf_db: float) -> float:
        """Cascaded receive noise figure with/without the LNA (Friis).

        In bypass mode the radio's own NF dominates; with the LNA engaged
        the cascade improves toward the LNA's NF.
        """
        if self.mode != FrontendMode.LNA:
            return radio_nf_db
        lna_gain = 10.0 ** (self.spec.lna_gain_db / 10.0)
        lna_f = 10.0 ** (self.spec.lna_noise_figure_db / 10.0)
        radio_f = 10.0 ** (radio_nf_db / 10.0)
        cascade = lna_f + (radio_f - 1.0) / lna_gain
        return 10.0 * math.log10(cascade)
