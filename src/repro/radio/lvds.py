"""LVDS serial link model (paper section 3.2.1).

The radio-FPGA interface is low-voltage differential signaling: data and
clock pairs, with a 64 MHz clock sampled on both edges (double data rate)
to carry the 128 Mbps word stream.  This module models the link at the
level the design cares about: DDR lane framing, throughput budgeting, and
optional bit errors for robustness testing of the deserializer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, FramingError
from repro.radio.iqword import (
    BIT_RATE_BPS,
    WORD_BITS,
    WORD_RATE_HZ,
    bits_to_words,
    bits_to_words_reference,
    words_to_bits,
    words_to_bits_reference,
)

LVDS_CLOCK_HZ = 64_000_000  # paper: section 3.1.1 (64 MHz DDR LVDS clock)
"""Clock provided by the radio (RX) or FPGA PLL (TX)."""


@dataclass(frozen=True)
class LvdsTiming:
    """Link timing derived from the clock and DDR setting.

    Attributes:
        clock_hz: lane clock frequency.
        double_data_rate: sample on both clock edges.
    """

    clock_hz: float = LVDS_CLOCK_HZ
    double_data_rate: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(
                f"clock must be positive, got {self.clock_hz!r}")

    @property
    def bit_rate_bps(self) -> float:
        """Serial bit rate of the lane."""
        return self.clock_hz * (2 if self.double_data_rate else 1)

    @property
    def word_rate_hz(self) -> float:
        """32-bit words per second the lane can carry."""
        return self.bit_rate_bps / WORD_BITS

    def supports_sample_rate(self, sample_rate_hz: float) -> bool:
        """Whether the link can carry one I/Q word per baseband sample."""
        return self.word_rate_hz >= sample_rate_hz

    def throughput_margin(self, sample_rate_hz: float) -> float:
        """Ratio of link capacity to required word rate."""
        if sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be positive, got {sample_rate_hz!r}")
        return self.word_rate_hz / sample_rate_hz


def ddr_split(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a serial bit stream into rising- and falling-edge lanes.

    Raises:
        FramingError: for an odd-length stream (DDR carries bit pairs).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 2:
        raise FramingError(
            f"DDR stream must hold an even number of bits, got {bits.size}")
    return bits[0::2].copy(), bits[1::2].copy()


def ddr_merge(rising: np.ndarray, falling: np.ndarray) -> np.ndarray:
    """Interleave edge lanes back into the serial stream."""
    rising = np.asarray(rising, dtype=np.uint8)
    falling = np.asarray(falling, dtype=np.uint8)
    if rising.size != falling.size:
        raise FramingError(
            f"edge lanes must match in length: {rising.size} vs {falling.size}")
    merged = np.empty(rising.size * 2, dtype=np.uint8)
    merged[0::2] = rising
    merged[1::2] = falling
    return merged


def serialize_words(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Serialize 32-bit words onto the DDR edge lanes (vectorized).

    One call models the whole TX side of the link: word -> MSB-first bit
    stream -> rising/falling lane split, done with ``np.unpackbits`` and
    a reshape/transpose instead of per-bit loops.

    Returns:
        ``(rising, falling)`` lane bit arrays, each ``16 * len(words)``
        bits long.
    """
    bits = words_to_bits(words)
    lanes = bits.reshape(-1, 2)
    return lanes[:, 0].copy(), lanes[:, 1].copy()


def serialize_words_reference(words: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Scalar per-bit reference implementation of :func:`serialize_words`."""
    bits = words_to_bits_reference(words)
    rising = np.empty(bits.size // 2, dtype=np.uint8)
    falling = np.empty(bits.size // 2, dtype=np.uint8)
    for index in range(bits.size // 2):
        rising[index] = bits[2 * index]
        falling[index] = bits[2 * index + 1]
    return rising, falling


def deserialize_words(rising: np.ndarray, falling: np.ndarray,
                      offset: int = 0) -> np.ndarray:
    """Recover 32-bit words from the DDR edge lanes (vectorized).

    The RX side of the link: interleave the lanes back into the serial
    stream and repack whole words starting at bit ``offset`` (the result
    of the deserializer's alignment search).

    Raises:
        FramingError: on mismatched lane lengths or a stream shorter
            than one word after ``offset``.
    """
    rising = np.asarray(rising, dtype=np.uint8)
    falling = np.asarray(falling, dtype=np.uint8)
    if rising.size != falling.size:
        raise FramingError(
            f"edge lanes must match in length: {rising.size} vs {falling.size}")
    merged = np.empty(rising.size * 2, dtype=np.uint8)
    merged[0::2] = rising
    merged[1::2] = falling
    return bits_to_words(merged, offset)


def deserialize_words_reference(rising: np.ndarray, falling: np.ndarray,
                                offset: int = 0) -> np.ndarray:
    """Scalar per-bit reference implementation of :func:`deserialize_words`."""
    rising = np.asarray(rising, dtype=np.uint8)
    falling = np.asarray(falling, dtype=np.uint8)
    if rising.size != falling.size:
        raise FramingError(
            f"edge lanes must match in length: {rising.size} vs {falling.size}")
    merged = np.empty(rising.size * 2, dtype=np.uint8)
    for index in range(rising.size):
        merged[2 * index] = rising[index]
        merged[2 * index + 1] = falling[index]
    return bits_to_words_reference(merged, offset)


def inject_bit_errors(bits: np.ndarray, error_rate: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Flip bits independently with probability ``error_rate``.

    LVDS links are effectively error-free in practice; this exists so the
    test suite can verify that the deserializer detects corruption via the
    sync patterns rather than silently emitting garbage samples.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ConfigurationError(
            f"error rate must be in [0, 1], got {error_rate!r}")
    bits = np.asarray(bits, dtype=np.uint8).copy()
    flips = rng.random(bits.size) < error_rate
    bits[flips] ^= 1
    return bits


def verify_paper_budget() -> dict[str, float]:
    """The paper's arithmetic: 4 Mwords/s x 32 bits = 128 Mbps on 64 MHz DDR.

    Returns the derived numbers for documentation and tests.
    """
    timing = LvdsTiming()
    return {
        "word_rate_hz": float(WORD_RATE_HZ),
        "required_bps": float(BIT_RATE_BPS),
        "link_bps": timing.bit_rate_bps,
        "margin": timing.throughput_margin(WORD_RATE_HZ),
    }
