"""AT86RF215 I/Q radio transceiver model.

The radio chosen for tinySDR (paper Table 2): dual-band (389.5-510 MHz,
779-1020 MHz, 2400-2483.5 MHz), 4 MHz baseband sampling at 13-bit
resolution, 50 mW receive power, integrated LNA/AGC/filter/ADC on RX and
DAC plus a 14 dBm programmable PA on TX, with built-in support for the
MR-FSK / MR-OFDM / MR-O-QPSK / O-QPSK modem modes that can bypass the
FPGA entirely.

The model covers what the rest of the system observes:

* a state machine (SLEEP / TRXOFF / TXPREP / RX / TX) with the paper's
  measured transition latencies (Table 4);
* the RX chain - AGC gain, anti-alias filtering and 13-bit quantization
  of the incoming complex baseband;
* the TX chain - 13-bit DAC quantization and output power limiting;
* per-state power draw for the energy accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import design_lowpass, filter_block
from repro.dsp.fixedpoint import quantize_complex
from repro.errors import ConfigurationError, RadioError
from repro.sim import RADIO_MODE, Timeline

SAMPLE_RATE_HZ = 4_000_000  # paper: Table 2 (4 MHz baseband sampling)
ADC_BITS = 13  # paper: Table 2 (13-bit I/Q resolution)
DAC_BITS = 13  # paper: Table 2 (13-bit TX DAC)

MIN_TX_POWER_DBM = -14.0  # datasheet: AT86RF215, TXPWR field range
MAX_TX_POWER_DBM = 14.0  # paper: Table 2 (14 dBm programmable PA)

RX_POWER_W = 0.050  # paper: Table 2 (50 mW receive power)
"""Receive-mode power draw (paper Table 2: 50 mW)."""

SLEEP_POWER_W = 30e-9  # datasheet: AT86RF215, DEEP_SLEEP current
"""Deep-sleep draw of the radio chip itself (sub-microamp)."""

TRXOFF_POWER_W = 0.0003  # datasheet: AT86RF215, TRXOFF supply current

NOISE_FIGURE_DB = 4.0  # paper: section 3.1.1 (3-5 dB noise figure)
"""Paper: 'the RF front-end has a 3-5 dB noise figure'."""

DEFAULT_FREQUENCY_HZ = 915_000_000  # paper: 915 MHz ISM band evaluation
"""Default carrier: the 915 MHz ISM band used throughout the paper."""

FREQUENCY_BANDS_HZ = (  # datasheet: AT86RF215, supported frequency ranges
    (389_500_000, 510_000_000),
    (779_000_000, 1_020_000_000),
    (2_400_000_000, 2_483_500_000),
)

# Measured transition latencies, Table 4 of the paper.
RADIO_SETUP_S = 1.2e-3  # paper: Table 4
TX_TO_RX_S = 45e-6  # paper: Table 4
RX_TO_TX_S = 11e-6  # paper: Table 4
FREQUENCY_SWITCH_S = 220e-6  # paper: Table 4

IQ_RADIO = "iq_radio"
"""Timeline component name for the AT86RF215 I/Q radio."""


class RadioState(enum.Enum):
    """Transceiver state machine states."""

    SLEEP = "sleep"
    TRXOFF = "trxoff"
    TXPREP = "txprep"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class StateTransition:
    """A logged state change, for timing and energy accounting."""

    time_s: float
    state: RadioState
    frequency_hz: float


def tx_power_draw_w(output_power_dbm: float) -> float:
    """Radio DC draw while transmitting at a given RF output power.

    Modeled from the AT86RF215 datasheet curve: roughly constant chip
    overhead (~60 mW) plus a PA term that scales with RF output through a
    ~25 % efficiency, matching the flat-then-rising shape of paper Fig. 9.
    """
    if not MIN_TX_POWER_DBM <= output_power_dbm <= MAX_TX_POWER_DBM:
        raise ConfigurationError(
            f"output power must be {MIN_TX_POWER_DBM}..{MAX_TX_POWER_DBM} "
            f"dBm, got {output_power_dbm!r}")
    rf_watts = 10.0 ** (output_power_dbm / 10.0) / 1e3
    pa_efficiency = 0.25
    return 0.060 + rf_watts / pa_efficiency


class At86Rf215:
    """Behavioural model of the AT86RF215 transceiver.

    Args:
        frequency_hz: initial carrier frequency (must fall in a supported
            band).
        agc_enabled: scale RX samples to full scale before quantization,
            as the chip's automatic gain control does.
    """

    def __init__(self, frequency_hz: float = DEFAULT_FREQUENCY_HZ,
                 agc_enabled: bool = True,
                 timeline: Timeline | None = None) -> None:
        self._check_frequency(frequency_hz)
        self.frequency_hz = frequency_hz
        self.agc_enabled = agc_enabled
        self.tx_power_dbm = 0.0
        self.state = RadioState.SLEEP
        self.timeline = timeline if timeline is not None else Timeline()
        self._start_s = self.timeline.now_s
        self.transitions: list[StateTransition] = [
            StateTransition(0.0, RadioState.SLEEP, frequency_hz)]
        self._anti_alias_taps = design_lowpass(
            31, cutoff_hz=SAMPLE_RATE_HZ * 0.45, sample_rate_hz=SAMPLE_RATE_HZ)

    # -- configuration -------------------------------------------------------

    @staticmethod
    def _check_frequency(frequency_hz: float) -> None:
        for low, high in FREQUENCY_BANDS_HZ:
            if low <= frequency_hz <= high:
                return
        raise RadioError(
            f"frequency {frequency_hz!r} Hz outside supported bands "
            f"{FREQUENCY_BANDS_HZ}")

    def set_tx_power(self, power_dbm: float) -> None:
        """Program the internal PA output power.

        Raises:
            ConfigurationError: outside the -14..+14 dBm range.
        """
        if not MIN_TX_POWER_DBM <= power_dbm <= MAX_TX_POWER_DBM:
            raise ConfigurationError(
                f"TX power must be {MIN_TX_POWER_DBM}..{MAX_TX_POWER_DBM} "
                f"dBm, got {power_dbm!r}")
        self.tx_power_dbm = power_dbm

    def set_frequency(self, frequency_hz: float) -> float:
        """Retune the synthesizer; costs the 220 us switch latency.

        Returns:
            The switching delay applied.

        Raises:
            RadioError: for out-of-band frequencies or when asleep.
        """
        self._check_frequency(frequency_hz)
        if self.state == RadioState.SLEEP:
            raise RadioError("cannot retune while asleep")
        self.frequency_hz = frequency_hz
        self._advance(FREQUENCY_SWITCH_S, self.state)
        return FREQUENCY_SWITCH_S

    # -- state machine ---------------------------------------------------

    @property
    def clock_s(self) -> float:
        """Time this radio has been running, per the shared timeline."""
        return self.timeline.now_s - self._start_s

    def _advance(self, duration_s: float, new_state: RadioState) -> None:
        self.timeline.record(
            RADIO_MODE, IQ_RADIO,
            label=f"{self.state.value}->{new_state.value}",
            duration_s=duration_s,
            power_w=self.state_power_w(self.state))
        self.state = new_state
        self.transitions.append(
            StateTransition(self.clock_s, new_state, self.frequency_hz))

    def wake(self) -> float:
        """SLEEP -> TRXOFF; returns the setup latency consumed."""
        if self.state != RadioState.SLEEP:
            raise RadioError(f"wake from {self.state}, expected SLEEP")
        self._advance(RADIO_SETUP_S, RadioState.TRXOFF)
        return RADIO_SETUP_S

    def sleep(self) -> None:
        """Any state -> SLEEP (immediate power gate)."""
        self._advance(0.0, RadioState.SLEEP)

    def enter_rx(self) -> float:
        """Switch into receive mode; latency depends on the current state."""
        if self.state == RadioState.SLEEP:
            raise RadioError("wake the radio before entering RX")
        delay = TX_TO_RX_S if self.state == RadioState.TX else 0.0
        self._advance(delay, RadioState.RX)
        return delay

    def enter_tx(self) -> float:
        """Switch into transmit mode; latency depends on the current state."""
        if self.state == RadioState.SLEEP:
            raise RadioError("wake the radio before entering TX")
        delay = RX_TO_TX_S if self.state == RadioState.RX else 0.0
        self._advance(delay, RadioState.TX)
        return delay

    # -- signal path -------------------------------------------------------

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        """Run samples through the TX DAC and power scaling.

        The output is normalized so unit amplitude corresponds to the
        programmed ``tx_power_dbm``; the channel model applies absolute
        scaling.

        Raises:
            RadioError: when not in TX state.
        """
        if self.state != RadioState.TX:
            raise RadioError(f"transmit while in {self.state}, expected TX")
        samples = np.asarray(samples, dtype=np.complex128)
        peak = float(np.max(np.abs(samples))) if samples.size else 0.0
        if peak > 0:
            samples = samples / max(peak, 1.0)
        quantized = quantize_complex(samples, DAC_BITS)
        self._advance(samples.size / SAMPLE_RATE_HZ, RadioState.TX)
        return quantized

    def receive(self, samples: np.ndarray) -> np.ndarray:
        """Run incoming baseband through the RX chain.

        Anti-alias filter -> AGC -> 13-bit ADC.  The incoming array is the
        channel's output (signal plus noise at the antenna reference).

        Raises:
            RadioError: when not in RX state.
        """
        if self.state != RadioState.RX:
            raise RadioError(f"receive while in {self.state}, expected RX")
        samples = np.asarray(samples, dtype=np.complex128)
        filtered = filter_block(self._anti_alias_taps, samples)
        if self.agc_enabled and filtered.size:
            rms = float(np.sqrt(np.mean(np.abs(filtered) ** 2)))
            if rms > 0:
                # Back off 12 dB from full scale to leave headroom for the
                # signal's peak-to-average ratio, as a real AGC does.
                filtered = filtered * (0.25 / rms)
        quantized = quantize_complex(filtered, ADC_BITS)
        self._advance(samples.size / SAMPLE_RATE_HZ, RadioState.RX)
        return quantized

    # -- power ---------------------------------------------------------------

    def state_power_w(self, state: RadioState) -> float:
        """DC power draw in a given state."""
        if state == RadioState.SLEEP:
            return SLEEP_POWER_W
        if state == RadioState.TRXOFF:
            return TRXOFF_POWER_W
        if state == RadioState.TXPREP:
            return TRXOFF_POWER_W
        if state == RadioState.RX:
            return RX_POWER_W
        return tx_power_draw_w(self.tx_power_dbm)

    def energy_consumed_j(self) -> float:
        """Integrate power over the logged state timeline."""
        energy = 0.0
        for previous, current in zip(self.transitions, self.transitions[1:]):
            duration = current.time_s - previous.time_s
            energy += self.state_power_w(previous.state) * duration
        return energy
