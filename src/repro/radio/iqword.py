"""The 32-bit I/Q word structure of the radio-FPGA interface (paper Fig. 4).

The AT86RF215 streams baseband samples over LVDS as 32-bit serial words at
4 Mwords/s: a 2-bit ``I_SYNC`` pattern, 13 bits of I data and a control
bit, then a 2-bit ``Q_SYNC`` pattern, 13 bits of Q data and a final
control bit.  The FPGA deserializer uses the sync patterns to find word
boundaries and loads the I and Q fields into 13-bit registers.

This module is the bit-exact codec for that format: samples -> words ->
bit stream and back, including the alignment search a cold-started
deserializer performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fixedpoint import from_codes, to_codes
from repro.errors import FramingError

WORD_BITS = 32
SAMPLE_BITS = 13
I_SYNC = 0b10
Q_SYNC = 0b01
SYNC_BITS = 2

WORD_RATE_HZ = 4_000_000
"""The radio outputs 32-bit words at 4 Mwords/s."""

BIT_RATE_BPS = WORD_BITS * WORD_RATE_HZ
"""128 Mbps serial rate, carried by a 64 MHz DDR clock."""


@dataclass(frozen=True)
class IqWord:
    """One decoded 32-bit I/Q word.

    Attributes:
        i_code: signed 13-bit I sample code.
        q_code: signed 13-bit Q sample code.
        i_control: the control bit following the I field.
        q_control: the control bit following the Q field.
    """

    i_code: int
    q_code: int
    i_control: int = 0
    q_control: int = 0


def _field_to_unsigned(code: int) -> int:
    """Two's-complement 13-bit encoding of a signed sample code."""
    if not -(1 << (SAMPLE_BITS - 1)) <= code < (1 << (SAMPLE_BITS - 1)):
        raise FramingError(
            f"sample code {code} does not fit in {SAMPLE_BITS} signed bits")
    return code & ((1 << SAMPLE_BITS) - 1)


def _field_to_signed(value: int) -> int:
    """Decode a 13-bit two's-complement field."""
    if value & (1 << (SAMPLE_BITS - 1)):
        return value - (1 << SAMPLE_BITS)
    return value


def pack_word(word: IqWord) -> int:
    """Pack one :class:`IqWord` into its 32-bit integer representation.

    Bit layout, MSB transmitted first:
    ``[I_SYNC:2][I:13][ctrl:1][Q_SYNC:2][Q:13][ctrl:1]``.
    """
    value = I_SYNC
    value = (value << SAMPLE_BITS) | _field_to_unsigned(word.i_code)
    value = (value << 1) | (word.i_control & 1)
    value = (value << SYNC_BITS) | Q_SYNC
    value = (value << SAMPLE_BITS) | _field_to_unsigned(word.q_code)
    value = (value << 1) | (word.q_control & 1)
    return value


def unpack_word(value: int) -> IqWord:
    """Decode a 32-bit integer into an :class:`IqWord`.

    Raises:
        FramingError: if either sync pattern is wrong (misaligned word).
    """
    if not 0 <= value < (1 << WORD_BITS):
        raise FramingError(f"word {value:#x} does not fit in 32 bits")
    q_control = value & 1
    q_field = (value >> 1) & ((1 << SAMPLE_BITS) - 1)
    q_sync = (value >> (1 + SAMPLE_BITS)) & 0b11
    i_control = (value >> (1 + SAMPLE_BITS + SYNC_BITS)) & 1
    i_field = (value >> (2 + SAMPLE_BITS + SYNC_BITS)) & ((1 << SAMPLE_BITS) - 1)
    i_sync = (value >> (2 + 2 * SAMPLE_BITS + SYNC_BITS)) & 0b11
    if i_sync != I_SYNC or q_sync != Q_SYNC:
        raise FramingError(
            f"sync patterns {i_sync:#04b}/{q_sync:#04b} do not match "
            f"{I_SYNC:#04b}/{Q_SYNC:#04b}")
    return IqWord(i_code=_field_to_signed(i_field),
                  q_code=_field_to_signed(q_field),
                  i_control=i_control, q_control=q_control)


def samples_to_words(samples: np.ndarray,
                     full_scale: float = 1.0) -> np.ndarray:
    """Quantize complex samples to 13 bits and pack them into 32-bit words."""
    samples = np.asarray(samples, dtype=np.complex128)
    i_codes = to_codes(samples.real, SAMPLE_BITS, full_scale)
    q_codes = to_codes(samples.imag, SAMPLE_BITS, full_scale)
    words = np.empty(samples.size, dtype=np.uint64)
    for index, (i_code, q_code) in enumerate(zip(i_codes, q_codes)):
        words[index] = pack_word(IqWord(int(i_code), int(q_code)))
    return words


def words_to_samples(words: np.ndarray,
                     full_scale: float = 1.0) -> np.ndarray:
    """Decode packed words back to complex samples.

    Raises:
        FramingError: on any word with corrupted sync patterns.
    """
    words = np.asarray(words, dtype=np.uint64)
    i_codes = np.empty(words.size, dtype=np.int64)
    q_codes = np.empty(words.size, dtype=np.int64)
    for index, value in enumerate(words):
        word = unpack_word(int(value))
        i_codes[index] = word.i_code
        q_codes[index] = word.q_code
    return (from_codes(i_codes, SAMPLE_BITS, full_scale)
            + 1j * from_codes(q_codes, SAMPLE_BITS, full_scale))


def words_to_bits(words: np.ndarray) -> np.ndarray:
    """Serialize packed words into the on-wire bit stream (MSB first)."""
    words = np.asarray(words, dtype=np.uint64)
    bits = np.empty(words.size * WORD_BITS, dtype=np.uint8)
    for index, value in enumerate(words):
        for bit in range(WORD_BITS):
            bits[index * WORD_BITS + bit] = (int(value) >> (WORD_BITS - 1 - bit)) & 1
    return bits


def bits_to_words(bits: np.ndarray, offset: int = 0) -> np.ndarray:
    """Pack an aligned bit stream back into 32-bit words from ``offset``."""
    bits = np.asarray(bits, dtype=np.uint8)
    usable = (bits.size - offset) // WORD_BITS
    if usable <= 0:
        raise FramingError("bit stream shorter than one word")
    words = np.empty(usable, dtype=np.uint64)
    for w in range(usable):
        value = 0
        base = offset + w * WORD_BITS
        for bit in range(WORD_BITS):
            value = (value << 1) | int(bits[base + bit])
        words[w] = value
    return words


def find_word_alignment(bits: np.ndarray, required_words: int = 4) -> int:
    """Locate the word boundary in an unaligned serial bit stream.

    Mirrors the FPGA deserializer's cold-start behaviour: slide a 32-bit
    window until ``required_words`` consecutive words decode with valid
    I_SYNC and Q_SYNC patterns.

    Returns:
        The bit offset of the first full word.

    Raises:
        FramingError: if no consistent alignment exists in the stream.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size < WORD_BITS * required_words:
        raise FramingError(
            f"need at least {WORD_BITS * required_words} bits to align, "
            f"got {bits.size}")
    for offset in range(min(WORD_BITS, bits.size - WORD_BITS * required_words + 1)):
        aligned = True
        for w in range(required_words):
            base = offset + w * WORD_BITS
            value = 0
            for bit in range(WORD_BITS):
                value = (value << 1) | int(bits[base + bit])
            try:
                unpack_word(value)
            except FramingError:
                aligned = False
                break
        if aligned:
            return offset
    raise FramingError("no valid word alignment found in bit stream")
