"""The 32-bit I/Q word structure of the radio-FPGA interface (paper Fig. 4).

The AT86RF215 streams baseband samples over LVDS as 32-bit serial words at
4 Mwords/s: a 2-bit ``I_SYNC`` pattern, 13 bits of I data and a control
bit, then a 2-bit ``Q_SYNC`` pattern, 13 bits of Q data and a final
control bit.  The FPGA deserializer uses the sync patterns to find word
boundaries and loads the I and Q fields into 13-bit registers.

This module is the bit-exact codec for that format: samples -> words ->
bit stream and back, including the alignment search a cold-started
deserializer performs.

Two implementations coexist.  The public entry points are vectorized
(whole-array shift-and-mask bit-plane operations, ``np.packbits`` /
``np.unpackbits`` for serialization); the original per-word, per-bit
scalar code is retained as ``*_reference`` functions, and the property
tests assert the fast paths are bit-exact against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fixedpoint import from_codes, to_codes
from repro.errors import FramingError

WORD_BITS = 32  # paper: Fig. 4 (32-bit LVDS I/Q word)
SAMPLE_BITS = 13  # paper: Fig. 4 (13-bit I and Q fields)
I_SYNC = 0b10  # datasheet: AT86RF215, I/Q IF sync pattern
Q_SYNC = 0b01  # datasheet: AT86RF215, I/Q IF sync pattern
SYNC_BITS = 2  # paper: Fig. 4 (2-bit sync prefix per field)

WORD_RATE_HZ = 4_000_000  # paper: section 3.1.1 (4 Mwords/s)
"""The radio outputs 32-bit words at 4 Mwords/s."""

BIT_RATE_BPS = WORD_BITS * WORD_RATE_HZ
"""128 Mbps serial rate, carried by a 64 MHz DDR clock."""

_FIELD_MASK = (1 << SAMPLE_BITS) - 1
_CODE_MIN = -(1 << (SAMPLE_BITS - 1))
_CODE_MAX = (1 << (SAMPLE_BITS - 1)) - 1

# Bit positions (LSB-based shifts) of each field in the 32-bit word,
# MSB transmitted first: [I_SYNC:2][I:13][ctrl:1][Q_SYNC:2][Q:13][ctrl:1].
_Q_CONTROL_SHIFT = 0
_Q_FIELD_SHIFT = 1
_Q_SYNC_SHIFT = 1 + SAMPLE_BITS
_I_CONTROL_SHIFT = 1 + SAMPLE_BITS + SYNC_BITS
_I_FIELD_SHIFT = 2 + SAMPLE_BITS + SYNC_BITS
_I_SYNC_SHIFT = 2 + 2 * SAMPLE_BITS + SYNC_BITS


@dataclass(frozen=True)
class IqWord:
    """One decoded 32-bit I/Q word.

    Attributes:
        i_code: signed 13-bit I sample code.
        q_code: signed 13-bit Q sample code.
        i_control: the control bit following the I field.
        q_control: the control bit following the Q field.
    """

    i_code: int
    q_code: int
    i_control: int = 0
    q_control: int = 0


def _field_to_unsigned(code: int) -> int:
    """Two's-complement 13-bit encoding of a signed sample code."""
    if not _CODE_MIN <= code <= _CODE_MAX:
        raise FramingError(
            f"sample code {code} does not fit in {SAMPLE_BITS} signed bits")
    return code & _FIELD_MASK


def _field_to_signed(value: int) -> int:
    """Decode a 13-bit two's-complement field."""
    if value & (1 << (SAMPLE_BITS - 1)):
        return value - (1 << SAMPLE_BITS)
    return value


def pack_word(word: IqWord) -> int:
    """Pack one :class:`IqWord` into its 32-bit integer representation.

    Bit layout, MSB transmitted first:
    ``[I_SYNC:2][I:13][ctrl:1][Q_SYNC:2][Q:13][ctrl:1]``.
    """
    value = I_SYNC
    value = (value << SAMPLE_BITS) | _field_to_unsigned(word.i_code)
    value = (value << 1) | (word.i_control & 1)
    value = (value << SYNC_BITS) | Q_SYNC
    value = (value << SAMPLE_BITS) | _field_to_unsigned(word.q_code)
    value = (value << 1) | (word.q_control & 1)
    return value


def unpack_word(value: int) -> IqWord:
    """Decode a 32-bit integer into an :class:`IqWord`.

    Raises:
        FramingError: if either sync pattern is wrong (misaligned word).
    """
    if not 0 <= value < (1 << WORD_BITS):
        raise FramingError(f"word {value:#x} does not fit in 32 bits")
    q_control = value & 1
    q_field = (value >> _Q_FIELD_SHIFT) & _FIELD_MASK
    q_sync = (value >> _Q_SYNC_SHIFT) & 0b11
    i_control = (value >> _I_CONTROL_SHIFT) & 1
    i_field = (value >> _I_FIELD_SHIFT) & _FIELD_MASK
    i_sync = (value >> _I_SYNC_SHIFT) & 0b11
    if i_sync != I_SYNC or q_sync != Q_SYNC:
        raise FramingError(
            f"sync patterns {i_sync:#04b}/{q_sync:#04b} do not match "
            f"{I_SYNC:#04b}/{Q_SYNC:#04b}")
    return IqWord(i_code=_field_to_signed(i_field),
                  q_code=_field_to_signed(q_field),
                  i_control=i_control, q_control=q_control)


# -- vectorized word codec ----------------------------------------------------

def pack_codes(i_codes: np.ndarray, q_codes: np.ndarray,
               i_controls: np.ndarray | int = 0,
               q_controls: np.ndarray | int = 0) -> np.ndarray:
    """Pack arrays of signed 13-bit codes into 32-bit words (vectorized).

    Raises:
        FramingError: if any code does not fit in 13 signed bits.
    """
    i_codes = np.asarray(i_codes, dtype=np.int64)
    q_codes = np.asarray(q_codes, dtype=np.int64)
    for name, codes in (("I", i_codes), ("Q", q_codes)):
        bad = (codes < _CODE_MIN) | (codes > _CODE_MAX)
        if bad.any():
            offender = int(codes[np.argmax(bad)])
            raise FramingError(
                f"{name} sample code {offender} does not fit in "
                f"{SAMPLE_BITS} signed bits")
    i_controls = np.asarray(i_controls, dtype=np.int64) & 1
    q_controls = np.asarray(q_controls, dtype=np.int64) & 1
    words = np.full(i_codes.shape, I_SYNC << _I_SYNC_SHIFT, dtype=np.uint64)
    words |= ((i_codes & _FIELD_MASK) << _I_FIELD_SHIFT).astype(np.uint64)
    words |= (i_controls << _I_CONTROL_SHIFT).astype(np.uint64)
    words |= np.uint64(Q_SYNC << _Q_SYNC_SHIFT)
    words |= ((q_codes & _FIELD_MASK) << _Q_FIELD_SHIFT).astype(np.uint64)
    words |= q_controls.astype(np.uint64)
    return words


def unpack_codes(words: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unpack 32-bit words into code/control arrays (vectorized).

    Returns:
        ``(i_codes, q_codes, i_controls, q_controls)`` as ``int64``.

    Raises:
        FramingError: if any word exceeds 32 bits or has corrupted sync
            patterns.
    """
    words = np.asarray(words, dtype=np.uint64)
    oversize = words >> np.uint64(WORD_BITS)
    if oversize.any():
        offender = int(words[np.argmax(oversize != 0)])
        raise FramingError(f"word {offender:#x} does not fit in 32 bits")
    i_sync = (words >> np.uint64(_I_SYNC_SHIFT)) & np.uint64(0b11)
    q_sync = (words >> np.uint64(_Q_SYNC_SHIFT)) & np.uint64(0b11)
    bad = (i_sync != I_SYNC) | (q_sync != Q_SYNC)
    if bad.any():
        index = int(np.argmax(bad))
        raise FramingError(
            f"sync patterns {int(i_sync[index]):#04b}/"
            f"{int(q_sync[index]):#04b} do not match "
            f"{I_SYNC:#04b}/{Q_SYNC:#04b}")
    i_fields = ((words >> np.uint64(_I_FIELD_SHIFT))
                & np.uint64(_FIELD_MASK)).astype(np.int64)
    q_fields = ((words >> np.uint64(_Q_FIELD_SHIFT))
                & np.uint64(_FIELD_MASK)).astype(np.int64)
    sign = 1 << (SAMPLE_BITS - 1)
    i_codes = np.where(i_fields >= sign, i_fields - (1 << SAMPLE_BITS),
                       i_fields)
    q_codes = np.where(q_fields >= sign, q_fields - (1 << SAMPLE_BITS),
                       q_fields)
    i_controls = ((words >> np.uint64(_I_CONTROL_SHIFT))
                  & np.uint64(1)).astype(np.int64)
    q_controls = (words & np.uint64(1)).astype(np.int64)
    return i_codes, q_codes, i_controls, q_controls


def samples_to_words(samples: np.ndarray,
                     full_scale: float = 1.0) -> np.ndarray:
    """Quantize complex samples to 13 bits and pack them into 32-bit words."""
    samples = np.asarray(samples, dtype=np.complex128)
    i_codes = to_codes(samples.real, SAMPLE_BITS, full_scale)
    q_codes = to_codes(samples.imag, SAMPLE_BITS, full_scale)
    return pack_codes(i_codes, q_codes)


def samples_to_words_reference(samples: np.ndarray,
                               full_scale: float = 1.0) -> np.ndarray:
    """Scalar per-word reference implementation of :func:`samples_to_words`."""
    samples = np.asarray(samples, dtype=np.complex128)
    i_codes = to_codes(samples.real, SAMPLE_BITS, full_scale)
    q_codes = to_codes(samples.imag, SAMPLE_BITS, full_scale)
    words = np.empty(samples.size, dtype=np.uint64)
    for index, (i_code, q_code) in enumerate(zip(i_codes, q_codes)):
        words[index] = pack_word(IqWord(int(i_code), int(q_code)))
    return words


def words_to_samples(words: np.ndarray,
                     full_scale: float = 1.0) -> np.ndarray:
    """Decode packed words back to complex samples.

    Raises:
        FramingError: on any word with corrupted sync patterns.
    """
    i_codes, q_codes, _, _ = unpack_codes(words)
    return (from_codes(i_codes, SAMPLE_BITS, full_scale)
            + 1j * from_codes(q_codes, SAMPLE_BITS, full_scale))


def words_to_samples_reference(words: np.ndarray,
                               full_scale: float = 1.0) -> np.ndarray:
    """Scalar per-word reference implementation of :func:`words_to_samples`."""
    words = np.asarray(words, dtype=np.uint64)
    i_codes = np.empty(words.size, dtype=np.int64)
    q_codes = np.empty(words.size, dtype=np.int64)
    for index, value in enumerate(words):
        word = unpack_word(int(value))
        i_codes[index] = word.i_code
        q_codes[index] = word.q_code
    return (from_codes(i_codes, SAMPLE_BITS, full_scale)
            + 1j * from_codes(q_codes, SAMPLE_BITS, full_scale))


# -- vectorized bit-stream serialization -------------------------------------

def words_to_bits(words: np.ndarray) -> np.ndarray:
    """Serialize packed words into the on-wire bit stream (MSB first).

    Vectorized: each word is viewed as four big-endian bytes and expanded
    with ``np.unpackbits``, which yields exactly the MSB-first order the
    LVDS lane transmits.
    """
    words = np.asarray(words, dtype=np.uint64)
    big_endian = words.astype(">u4")
    return np.unpackbits(big_endian.view(np.uint8))


def words_to_bits_reference(words: np.ndarray) -> np.ndarray:
    """Scalar per-bit reference implementation of :func:`words_to_bits`."""
    words = np.asarray(words, dtype=np.uint64)
    bits = np.empty(words.size * WORD_BITS, dtype=np.uint8)
    for index, value in enumerate(words):
        for bit in range(WORD_BITS):
            bits[index * WORD_BITS + bit] = (int(value) >> (WORD_BITS - 1 - bit)) & 1
    return bits


def bits_to_words(bits: np.ndarray, offset: int = 0) -> np.ndarray:
    """Pack an aligned bit stream back into 32-bit words from ``offset``.

    Vectorized: the usable bits are packed into bytes with
    ``np.packbits`` and re-viewed as big-endian 32-bit words.

    Raises:
        FramingError: if fewer than one whole word remains after
            ``offset``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    usable = (bits.size - offset) // WORD_BITS
    if usable <= 0:
        raise FramingError("bit stream shorter than one word")
    trimmed = bits[offset:offset + usable * WORD_BITS]
    packed = np.packbits(trimmed)
    return packed.view(">u4").astype(np.uint64)


def bits_to_words_reference(bits: np.ndarray, offset: int = 0) -> np.ndarray:
    """Scalar per-bit reference implementation of :func:`bits_to_words`."""
    bits = np.asarray(bits, dtype=np.uint8)
    usable = (bits.size - offset) // WORD_BITS
    if usable <= 0:
        raise FramingError("bit stream shorter than one word")
    words = np.empty(usable, dtype=np.uint64)
    for w in range(usable):
        value = 0
        base = offset + w * WORD_BITS
        for bit in range(WORD_BITS):
            value = (value << 1) | int(bits[base + bit])
        words[w] = value
    return words


# -- alignment search ---------------------------------------------------------

def _sync_valid(values: np.ndarray) -> np.ndarray:
    """Boolean mask of words whose I_SYNC and Q_SYNC patterns are intact."""
    i_sync = (values >> np.uint64(_I_SYNC_SHIFT)) & np.uint64(0b11)
    q_sync = (values >> np.uint64(_Q_SYNC_SHIFT)) & np.uint64(0b11)
    return (i_sync == I_SYNC) & (q_sync == Q_SYNC)


def find_word_alignment(bits: np.ndarray, required_words: int = 4) -> int:
    """Locate the word boundary in an unaligned serial bit stream.

    Mirrors the FPGA deserializer's cold-start behaviour: slide a 32-bit
    window until ``required_words`` consecutive words decode with valid
    I_SYNC and Q_SYNC patterns.

    Vectorized: the candidate word value at every bit position is built
    from a sliding bit-plane view in one pass, sync validity is checked
    for all positions at once, and each candidate offset's score is the
    AND of its ``required_words`` word positions.

    Returns:
        The bit offset of the first full word.

    Raises:
        FramingError: if no consistent alignment exists in the stream.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size < WORD_BITS * required_words:
        raise FramingError(
            f"need at least {WORD_BITS * required_words} bits to align, "
            f"got {bits.size}")
    num_offsets = min(WORD_BITS, bits.size - WORD_BITS * required_words + 1)
    span = num_offsets - 1 + WORD_BITS * required_words
    windows = np.lib.stride_tricks.sliding_window_view(
        bits[:span], WORD_BITS).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(WORD_BITS - 1, -1, -1,
                                         dtype=np.uint64))
    values = windows @ weights
    valid = _sync_valid(values)
    positions = (np.arange(num_offsets)[:, None]
                 + WORD_BITS * np.arange(required_words)[None, :])
    aligned = valid[positions].all(axis=1)
    hits = np.flatnonzero(aligned)
    if hits.size:
        return int(hits[0])
    raise FramingError("no valid word alignment found in bit stream")


def find_word_alignment_reference(bits: np.ndarray,
                                  required_words: int = 4) -> int:
    """Scalar nested-loop reference for :func:`find_word_alignment`."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size < WORD_BITS * required_words:
        raise FramingError(
            f"need at least {WORD_BITS * required_words} bits to align, "
            f"got {bits.size}")
    for offset in range(min(WORD_BITS, bits.size - WORD_BITS * required_words + 1)):
        aligned = True
        for w in range(required_words):
            base = offset + w * WORD_BITS
            value = 0
            for bit in range(WORD_BITS):
                value = (value << 1) | int(bits[base + bit])
            try:
                unpack_word(value)
            except FramingError:
                aligned = False
                break
        if aligned:
            return offset
    raise FramingError("no valid word alignment found in bit stream")
