"""AT86RF215 SPI register interface.

"The MCU communicates with the I/Q radio, backbone radio, FPGA and Flash
memory through SPI which it uses to send commands for changing the
frequency, selecting the outputs, etc." (paper section 3.2.3).  This
module models that control path at the register level: a register map
with named fields, the two-byte-address SPI transaction format the chip
uses, and a driver that performs the multi-register sequences (channel
programming, state commands) the datasheet prescribes.

The behavioural radio model (:class:`repro.radio.at86rf215.At86Rf215`)
stays the source of truth for signal-path behaviour; the register layer
drives it, so firmware-style control code can be written and tested
against the same sequences real firmware issues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, RadioError
from repro.radio.at86rf215 import At86Rf215, RadioState

# Register addresses (sub-GHz radio block, RF09_*).
REG_STATE = 0x0102       # datasheet: AT86RF215 register map, RF09_STATE
REG_CMD = 0x0103         # datasheet: AT86RF215 register map, RF09_CMD
REG_CS = 0x0104          # datasheet: AT86RF215, RF09_CS (channel spacing)
REG_CCF0L = 0x0105       # datasheet: AT86RF215, RF09_CCF0L (center freq low)
REG_CCF0H = 0x0106       # datasheet: AT86RF215, RF09_CCF0H
REG_CNL = 0x0107         # datasheet: AT86RF215, RF09_CNL (channel num low)
REG_CNM = 0x0108         # datasheet: AT86RF215, RF09_CNM (chan high + mode)
REG_PAC = 0x0114         # datasheet: AT86RF215, RF09_PAC (PA control)

# RF_CMD command codes.
CMD_NOP = 0x0     # datasheet: AT86RF215, table 4-3
CMD_SLEEP = 0x1   # datasheet: AT86RF215, table 4-3
CMD_TRXOFF = 0x2  # datasheet: AT86RF215, table 4-3
CMD_TXPREP = 0x3  # datasheet: AT86RF215, table 4-3
CMD_TX = 0x4      # datasheet: AT86RF215, table 4-3
CMD_RX = 0x5      # datasheet: AT86RF215, table 4-3

# RF_STATE codes (datasheet: AT86RF215, RF09_STATE field values).
STATE_CODES = {  # datasheet: AT86RF215, RF09_STATE
    RadioState.SLEEP: 0x1,
    RadioState.TRXOFF: 0x2,
    RadioState.TXPREP: 0x3,
    RadioState.RX: 0x5,
    RadioState.TX: 0x4,
}

CHANNEL_STEP_HZ = 25_000  # datasheet: AT86RF215, fine-mode channel scheme
"""Fine-mode channel scheme: CCF0 counts 25 kHz steps."""

PAC_TXPWR_MASK = 0x1F  # datasheet: AT86RF215, RF09_PAC.TXPWR (5 bits)
"""5-bit TX power field: 0 = max (14 dBm), 31 = max attenuation."""


@dataclass
class SpiTransaction:
    """One SPI access: 2 address bytes (MSB = write flag) + data."""

    address: int
    value: int
    is_write: bool

    def to_wire(self) -> bytes:
        """Encode as the 3-byte on-wire transaction."""
        if not 0 <= self.address <= 0x3FFF:
            raise ConfigurationError(
                f"register address must be 14-bit, got {self.address:#x}")
        if not 0 <= self.value <= 0xFF:
            raise ConfigurationError(
                f"register value must be 8-bit, got {self.value:#x}")
        high = (self.address >> 8) & 0x3F
        if self.is_write:
            high |= 0x80
        return bytes((high, self.address & 0xFF,
                      self.value if self.is_write else 0x00))

    @classmethod
    def from_wire(cls, wire: bytes) -> "SpiTransaction":
        """Decode a 3-byte transaction.

        Raises:
            ConfigurationError: for the wrong length.
        """
        if len(wire) != 3:
            raise ConfigurationError(
                f"SPI transaction is 3 bytes, got {len(wire)}")
        is_write = bool(wire[0] & 0x80)
        address = ((wire[0] & 0x3F) << 8) | wire[1]
        return cls(address=address, value=wire[2], is_write=is_write)


class RegisterFile:
    """The radio's register array plus the side effects of writes."""

    def __init__(self, radio: At86Rf215) -> None:
        self.radio = radio
        self._registers: dict[int, int] = {
            REG_STATE: STATE_CODES[radio.state],
            REG_CMD: CMD_NOP,
            REG_CS: 0x08,
            REG_CCF0L: 0x00, REG_CCF0H: 0x00,
            REG_CNL: 0x00, REG_CNM: 0x00,
            REG_PAC: 0x00,
        }
        self.log: list[SpiTransaction] = []

    def read(self, address: int) -> int:
        """SPI register read.

        Raises:
            RadioError: for unmapped addresses.
        """
        if address == REG_STATE:
            value = STATE_CODES[self.radio.state]
        elif address in self._registers:
            value = self._registers[address]
        else:
            raise RadioError(f"read of unmapped register {address:#06x}")
        self.log.append(SpiTransaction(address, value, is_write=False))
        return value

    def write(self, address: int, value: int) -> None:
        """SPI register write, applying command side effects.

        Raises:
            RadioError: for unmapped addresses or invalid commands.
        """
        if address not in self._registers:
            raise RadioError(f"write to unmapped register {address:#06x}")
        if not 0 <= value <= 0xFF:
            raise ConfigurationError(
                f"register value must be 8-bit, got {value:#x}")
        self.log.append(SpiTransaction(address, value, is_write=True))
        self._registers[address] = value
        if address == REG_CMD:
            self._execute_command(value)

    def _execute_command(self, command: int) -> None:
        if command == CMD_NOP:
            return
        if command == CMD_SLEEP:
            self.radio.sleep()
        elif command == CMD_TRXOFF:
            if self.radio.state == RadioState.SLEEP:
                self.radio.wake()
        elif command == CMD_RX:
            self.radio.enter_rx()
        elif command == CMD_TX:
            self.radio.enter_tx()
        elif command == CMD_TXPREP:
            if self.radio.state == RadioState.SLEEP:
                self.radio.wake()
        else:
            raise RadioError(f"unknown RF_CMD {command:#x}")


class At86Rf215Driver:
    """Firmware-style driver issuing the datasheet register sequences."""

    def __init__(self, radio: At86Rf215 | None = None) -> None:
        self.radio = radio or At86Rf215()
        self.registers = RegisterFile(self.radio)

    def set_channel(self, frequency_hz: float) -> None:
        """Program CCF0/CN for a carrier in fine-channel mode.

        The datasheet sequence: write CCF0L/CCF0H/CNL/CNM while in
        TRXOFF/TXPREP; the frequency latches on the CNM write.

        Raises:
            RadioError: when asleep or out of band.
        """
        steps = round(frequency_hz / CHANNEL_STEP_HZ)
        ccf0 = steps >> 8
        channel = steps & 0xFF
        self.registers.write(REG_CCF0L, ccf0 & 0xFF)
        self.registers.write(REG_CCF0H, (ccf0 >> 8) & 0xFF)
        self.registers.write(REG_CNL, channel)
        self.registers.write(REG_CNM, 0xC0)  # fine mode, latch
        self.radio.set_frequency(steps * CHANNEL_STEP_HZ)

    def set_tx_power(self, power_dbm: float) -> None:
        """Program the PAC register for a target output power."""
        from repro.radio.at86rf215 import MAX_TX_POWER_DBM
        attenuation = round(MAX_TX_POWER_DBM - power_dbm)
        if not 0 <= attenuation <= PAC_TXPWR_MASK:
            raise ConfigurationError(
                f"power {power_dbm!r} dBm outside the PAC range")
        self.registers.write(REG_PAC, attenuation & PAC_TXPWR_MASK)
        self.radio.set_tx_power(MAX_TX_POWER_DBM - attenuation)

    def command(self, code: int) -> None:
        """Issue an RF_CMD."""
        self.registers.write(REG_CMD, code)

    def state(self) -> RadioState:
        """Read back the radio state via RF_STATE."""
        code = self.registers.read(REG_STATE)
        for state, value in STATE_CODES.items():
            if value == code:
                return state
        raise RadioError(f"unknown state code {code:#x}")

    def wire_log(self) -> list[bytes]:
        """The raw SPI byte stream of every transaction so far."""
        return [t.to_wire() for t in self.registers.log]
