"""SX1276 LoRa transceiver model - the backbone radio and reference chip.

The SX1276 plays two roles in the paper: it is the comparison baseline for
the LoRa modulator/demodulator case study (Figs. 10-11, "we achieve a
comparable sensitivity ... which is similar to an SX1276 LoRa chip with
the same configuration"), and it is tinySDR's OTA backbone radio
(section 3.1.2, chosen at $4.50 for its range and rate flexibility).

The model is a *packet-level* transceiver: it modulates/demodulates ideal
(unquantized) chirps through the same PHY pipeline the tinySDR model uses,
and exposes the datasheet sensitivity table so the OTA link simulator can
compute packet error rates without running sample-level DSP for every one
of the thousands of OTA packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.lora.demodulator import LoRaDemodulator
from repro.phy.lora.modulator import LoRaModulator
from repro.phy.lora.params import LoRaParams
from repro.units import noise_floor_dbm

NOISE_FIGURE_DB = 6.0  # datasheet: SX1276, implied by sensitivity table
"""Effective SX1276 receiver noise figure implied by its sensitivity table."""

MAX_TX_POWER_DBM = 14.0  # datasheet: SX1276, RFO pin output range
MIN_TX_POWER_DBM = -4.0  # datasheet: SX1276, RFO pin output range

RX_POWER_W = 0.0396  # datasheet: SX1276, ~12 mA RX at 3.3 V
"""RX supply current ~12 mA at 3.3 V."""

SLEEP_POWER_W = 0.2e-6 * 3.3  # datasheet: SX1276, 0.2 uA sleep current

UNIT_COST_USD = 4.5  # paper: section 3.1.2 ($4.50 backbone radio)

# Demodulation SNR thresholds per spreading factor (datasheet: SX1276,
# table "LoRa modem sensitivity"): the SNR at which PER hits ~1 %.
SNR_THRESHOLD_DB = {  # datasheet: SX1276, LoRa modem sensitivity table
    6: -5.0, 7: -7.5, 8: -10.0, 9: -12.5, 10: -15.0, 11: -17.5, 12: -20.0,
}


def sensitivity_dbm(params: LoRaParams) -> float:
    """Datasheet sensitivity for a LoRa configuration.

    ``S = noise_floor(BW, NF) + SNR_threshold(SF)``; for SF8/BW125 this
    gives -127 dBm ~ the -126 dBm the paper quotes.
    """
    threshold = SNR_THRESHOLD_DB.get(params.spreading_factor)
    if threshold is None:
        raise ConfigurationError(
            f"no SNR threshold for SF{params.spreading_factor}")
    return noise_floor_dbm(params.bandwidth_hz, NOISE_FIGURE_DB) + threshold


def packet_error_probability(params: LoRaParams, rssi_dbm: float,
                             payload_bytes: int,
                             preamble_symbols: int = 8) -> float:
    """Analytic PER for the packet-level OTA simulation.

    Chirp symbol error probability is modelled with the standard
    noncoherent orthogonal-signaling union bound evaluated at the
    post-despreading SNR, then expanded to the packet's symbol count.
    This matches the measured waterfall of the sample-level demodulator
    within a fraction of a dB while being ~10^4 times faster - which is
    what makes simulating 20-node OTA campaigns (Fig. 14) tractable.
    """
    snr_db = rssi_dbm - noise_floor_dbm(params.bandwidth_hz, NOISE_FIGURE_DB)
    ser = symbol_error_probability(params.spreading_factor, snr_db)
    symbols = (preamble_symbols + 4.25
               + params.airtime_s(payload_bytes, preamble_symbols)
               / params.symbol_duration_s)
    # FEC corrects scattered single errors; approximate its benefit by
    # discounting the symbol count by the coding rate.
    effective_symbols = symbols * 4.0 / params.coding_rate_denominator
    per = 1.0 - (1.0 - ser) ** max(effective_symbols, 1.0)
    return min(max(per, 0.0), 1.0)


def symbol_error_probability(spreading_factor: int, snr_db: float) -> float:
    """Union-bound SER of noncoherent 2**SF-ary orthogonal signaling.

    After dechirping, a LoRa symbol decision is a noncoherent maximum
    selection over ``N = 2**SF`` bins with per-bin SNR ``N * snr``.
    ``P_s <= (N-1)/2 * exp(-N*snr/2)`` (clamped to [0, 1]).
    """
    if not 6 <= spreading_factor <= 12:
        raise ConfigurationError(
            f"spreading factor must be 6..12, got {spreading_factor}")
    n = 2 ** spreading_factor
    snr = 10.0 ** (snr_db / 10.0)
    exponent = -n * snr / 2.0
    if exponent < -700.0:
        return 0.0
    return min(1.0, (n - 1) / 2.0 * math.exp(exponent))


@dataclass
class Sx1276:
    """Packet/sample-level SX1276 model for one LoRa configuration.

    Attributes:
        params: LoRa PHY configuration (SF, BW, CR).
        tx_power_dbm: programmed transmit power.
    """

    params: LoRaParams
    tx_power_dbm: float = 14.0

    def __post_init__(self) -> None:
        if not MIN_TX_POWER_DBM <= self.tx_power_dbm <= MAX_TX_POWER_DBM:
            raise ConfigurationError(
                f"SX1276 TX power must be {MIN_TX_POWER_DBM}.."
                f"{MAX_TX_POWER_DBM} dBm, got {self.tx_power_dbm!r}")
        # Ideal (unquantized) chirps: a hardwired ASIC has no NCO LUTs.
        self._modulator = LoRaModulator(self.params, quantized=False)
        self._demodulator = LoRaDemodulator(self.params)

    @property
    def sensitivity_dbm(self) -> float:
        """Datasheet sensitivity for the configured SF/BW."""
        return sensitivity_dbm(self.params)

    def modulate(self, payload: bytes,
                 preamble_symbols: int = 8) -> np.ndarray:
        """Generate a unit-power packet waveform."""
        return self._modulator.modulate(payload, preamble_symbols)

    def demodulate(self, samples: np.ndarray):
        """Receive the first packet in a stream (sample-level)."""
        return self._demodulator.receive(samples)

    def packet_error_probability(self, rssi_dbm: float,
                                 payload_bytes: int,
                                 preamble_symbols: int = 8) -> float:
        """Analytic link-level PER at a given RSSI."""
        return packet_error_probability(self.params, rssi_dbm,
                                        payload_bytes, preamble_symbols)

    def tx_power_draw_w(self) -> float:
        """DC draw while transmitting (datasheet current at 3.3 V)."""
        # 20 mA floor plus PA current rising to ~120 mA at +14 dBm (PA_BOOST).
        rf_watts = 10.0 ** (self.tx_power_dbm / 10.0) / 1e3
        return 3.3 * (0.020 + rf_watts / 0.22 / 3.3)
