"""Ultra-narrowband DBPSK, Sigfox-style.

Sigfox appears throughout the paper as the extreme point of IoT
bandwidth: "LoRa, Sigfox, NB-IoT, LTE-M, Bluetooth and ZigBee use only
500 kHz, 200 Hz, 180 kHz, 1.4 MHz, 2 MHz and 2 MHz respectively".  A
100 bit/s differential-BPSK uplink occupies ~200 Hz, which is why UNB
networks reach such low sensitivities (the noise floor over 200 Hz is
-151 dBm).

This module implements the PHY: differential encoding (data in the
phase *change* between bits, so no carrier-phase recovery is needed),
rectangular-pulse BPSK at 100 bit/s, and the delay-conjugate-multiply
demodulator a minimal receiver uses.  It exercises the platform claim
that tinySDR's I/Q interface handles arbitrarily narrow signals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DemodulationError

SIGFOX_BIT_RATE_BPS = 100.0
SIGFOX_BANDWIDTH_HZ = 200.0


@dataclass(frozen=True)
class UnbConfig:
    """Ultra-narrowband waveform parameters.

    Attributes:
        bit_rate_bps: symbol rate (100 b/s for a Sigfox-class uplink).
        samples_per_bit: oversampling of the rectangular pulse.
    """

    bit_rate_bps: float = SIGFOX_BIT_RATE_BPS
    samples_per_bit: int = 8

    def __post_init__(self) -> None:
        if self.bit_rate_bps <= 0:
            raise ConfigurationError(
                f"bit rate must be positive, got {self.bit_rate_bps!r}")
        if self.samples_per_bit < 2:
            raise ConfigurationError(
                "need at least 2 samples per bit, got "
                f"{self.samples_per_bit}")

    @property
    def sample_rate_hz(self) -> float:
        """Baseband sample rate."""
        return self.bit_rate_bps * self.samples_per_bit

    @property
    def occupied_bandwidth_hz(self) -> float:
        """Main-lobe bandwidth of the rectangular-pulse BPSK (~2/T)."""
        return 2.0 * self.bit_rate_bps


def differential_encode(bits: np.ndarray) -> np.ndarray:
    """Map data bits to absolute phases: a 1 flips phase, a 0 holds it.

    Returns the +-1 symbol for each bit, starting from +1.
    """
    bits = np.asarray(bits, dtype=np.int64)
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ConfigurationError("bit array must contain only 0s and 1s")
    symbols = np.empty(bits.size, dtype=np.float64)
    state = 1.0
    for index, bit in enumerate(bits):
        if bit:
            state = -state
        symbols[index] = state
    return symbols


class UnbModulator:
    """Rectangular-pulse DBPSK modulator."""

    def __init__(self, config: UnbConfig | None = None) -> None:
        self.config = config or UnbConfig()

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Modulate data bits into complex baseband (unit amplitude)."""
        symbols = differential_encode(bits)
        if symbols.size == 0:
            return np.zeros(0, dtype=np.complex128)
        # Prepend the reference symbol the differential receiver needs.
        with_reference = np.concatenate([[1.0], symbols])
        return np.repeat(with_reference, self.config.samples_per_bit) \
            .astype(np.complex128)


class UnbDemodulator:
    """Delay-conjugate-multiply DBPSK receiver.

    Integrates each bit period, multiplies by the conjugate of the
    previous period, and reads the data bit off the sign - insensitive
    to the absolute carrier phase, which an UNB link cannot track.
    """

    def __init__(self, config: UnbConfig | None = None) -> None:
        self.config = config or UnbConfig()

    def demodulate(self, samples: np.ndarray, num_bits: int,
                   start_sample: int = 0) -> np.ndarray:
        """Recover ``num_bits`` data bits from an aligned capture.

        Raises:
            DemodulationError: if the capture is too short.
        """
        spb = self.config.samples_per_bit
        needed = start_sample + (num_bits + 1) * spb
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size < needed:
            raise DemodulationError(
                f"capture of {samples.size} samples cannot supply "
                f"{num_bits} bits from offset {start_sample}")
        integrals = np.empty(num_bits + 1, dtype=np.complex128)
        for index in range(num_bits + 1):
            begin = start_sample + index * spb
            integrals[index] = np.sum(samples[begin:begin + spb])
        decisions = integrals[1:] * np.conj(integrals[:-1])
        return (decisions.real < 0.0).astype(np.int64)


@dataclass(frozen=True)
class UnbFrame:
    """A minimal Sigfox-style uplink frame.

    Attributes:
        device_id: 32-bit device identifier.
        payload: up to 12 bytes (the Sigfox uplink limit).
        sequence: rolling counter.
    """

    device_id: int
    payload: bytes
    sequence: int = 0

    PREAMBLE_BITS = 19
    MAX_PAYLOAD_BYTES = 12

    def __post_init__(self) -> None:
        if not 0 <= self.device_id <= 0xFFFFFFFF:
            raise ConfigurationError("device id must be 32-bit")
        if len(self.payload) > self.MAX_PAYLOAD_BYTES:
            raise ConfigurationError(
                f"UNB payload limited to {self.MAX_PAYLOAD_BYTES} bytes, "
                f"got {len(self.payload)}")
        if not 0 <= self.sequence <= 0xFFF:
            raise ConfigurationError("sequence must be 12-bit")

    def to_bits(self) -> np.ndarray:
        """Frame bits: preamble (1010..1), sync, id, seq, payload, CRC."""
        from repro.phy.lora.codec import crc16_ccitt
        preamble = np.tile([1, 0], self.PREAMBLE_BITS)[:self.PREAMBLE_BITS]
        sync = np.array([1, 0, 0, 1, 0, 1, 1, 0], dtype=np.int64)
        body = (self.device_id.to_bytes(4, "big")
                + self.sequence.to_bytes(2, "big")
                + bytes((len(self.payload),)) + self.payload)
        crc = crc16_ccitt(body)
        body += bytes((crc >> 8, crc & 0xFF))
        body_bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8))
        return np.concatenate([preamble, sync,
                               body_bits.astype(np.int64)])

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "UnbFrame":
        """Parse frame bits back (alignment assumed).

        Raises:
            DemodulationError: on sync or CRC failure.
        """
        from repro.phy.lora.codec import crc16_ccitt
        bits = np.asarray(bits, dtype=np.int64)
        header = cls.PREAMBLE_BITS + 8
        sync = bits[cls.PREAMBLE_BITS:header]
        if not np.array_equal(sync, [1, 0, 0, 1, 0, 1, 1, 0]):
            raise DemodulationError("UNB sync word not found")
        body_bits = bits[header:]
        usable = (body_bits.size // 8) * 8
        body = np.packbits(body_bits[:usable].astype(np.uint8)).tobytes()
        if len(body) < 9:
            raise DemodulationError("UNB frame truncated")
        device_id = int.from_bytes(body[0:4], "big")
        sequence = int.from_bytes(body[4:6], "big")
        length = body[6]
        if 7 + length + 2 > len(body):
            raise DemodulationError("UNB length field exceeds capture")
        payload = body[7:7 + length]
        received_crc = int.from_bytes(body[7 + length:9 + length], "big")
        if crc16_ccitt(body[:7 + length]) != received_crc:
            raise DemodulationError("UNB frame CRC mismatch")
        return cls(device_id=device_id, payload=payload, sequence=sequence)
