"""Ultra-narrowband (Sigfox-class) DBPSK PHY."""

from repro.phy.unb.dbpsk import (
    SIGFOX_BANDWIDTH_HZ,
    SIGFOX_BIT_RATE_BPS,
    UnbConfig,
    UnbDemodulator,
    UnbFrame,
    UnbModulator,
    differential_encode,
)

__all__ = [
    "SIGFOX_BANDWIDTH_HZ",
    "SIGFOX_BIT_RATE_BPS",
    "UnbConfig",
    "UnbDemodulator",
    "UnbFrame",
    "UnbModulator",
    "differential_encode",
]
