"""BLE beacon PHY: advertising packets, GFSK waveforms, channel hopping."""

from repro.phy.ble.channels import (
    ADVERTISING_CHANNELS,
    ADVERTISING_FREQUENCIES_HZ,
    IPHONE8_HOP_DELAY_S,
    TINYSDR_HOP_DELAY_S,
    BeaconTransmission,
    advertising_event,
    beacon_airtime_s,
    channel_frequency_hz,
)
from repro.phy.ble.gfsk import (
    BLE_BIT_RATE_BPS,
    BLE_BT_PRODUCT,
    BLE_MODULATION_INDEX,
    GfskConfig,
    GfskDemodulator,
    GfskModulator,
)
from repro.phy.ble.packet import (
    ACCESS_ADDRESS,
    ADV_NONCONN_IND,
    AdvPacket,
    ParsedAdvPacket,
    bits_to_bytes_lsb_first,
    bytes_to_bits_lsb_first,
    crc24,
    parse_air_bytes,
    whiten_pdu_and_crc,
    whitening_bits,
)

__all__ = [
    "ACCESS_ADDRESS",
    "ADVERTISING_CHANNELS",
    "ADVERTISING_FREQUENCIES_HZ",
    "ADV_NONCONN_IND",
    "AdvPacket",
    "BLE_BIT_RATE_BPS",
    "BLE_BT_PRODUCT",
    "BLE_MODULATION_INDEX",
    "BeaconTransmission",
    "GfskConfig",
    "GfskDemodulator",
    "GfskModulator",
    "IPHONE8_HOP_DELAY_S",
    "ParsedAdvPacket",
    "TINYSDR_HOP_DELAY_S",
    "advertising_event",
    "beacon_airtime_s",
    "bits_to_bytes_lsb_first",
    "bytes_to_bits_lsb_first",
    "channel_frequency_hz",
    "crc24",
    "parse_air_bytes",
    "whiten_pdu_and_crc",
    "whitening_bits",
]
