"""GFSK modulation and demodulation for BLE beacons.

Paper section 4.2: "we upsample and apply a Gaussian filter to the
bitstream.  This gives us the desired changes in frequency which we
integrate to get the phase.  We then feed the phase to sine and cosine
functions to get the final I and Q samples."  :class:`GfskModulator`
follows exactly that pipeline, optionally through the same quantized
sin/cos LUTs the FPGA uses.

The receiver is the classic noncoherent quadrature discriminator a BLE
chip like the CC2650 implements: low-pass filter, per-sample phase
difference, integrate over each symbol, decide on the sign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import design_lowpass, filter_block
from repro.dsp.nco import Nco, NcoConfig
from repro.dsp.pulse import frequency_to_phase, shape_bits
from repro.errors import ConfigurationError, DemodulationError
from repro.phy.backend.registry import get_backend

BLE_BIT_RATE_BPS = 1_000_000
BLE_MODULATION_INDEX = 0.5
"""Nominal h; the spec allows 0.45..0.55."""

BLE_BT_PRODUCT = 0.5


@dataclass(frozen=True)
class GfskConfig:
    """GFSK waveform parameters.

    Attributes:
        bit_rate_bps: symbol rate (1 Mb/s for BLE 4.x advertising).
        samples_per_symbol: oversampling (4 matches the AT86RF215's 4 MHz
            I/Q rate against BLE's 1 Mb/s).
        modulation_index: h; peak-to-peak frequency deviation is
            ``h * bit_rate``.
        bt_product: Gaussian filter bandwidth-time product.
    """

    bit_rate_bps: float = BLE_BIT_RATE_BPS
    samples_per_symbol: int = 4
    modulation_index: float = BLE_MODULATION_INDEX
    bt_product: float = BLE_BT_PRODUCT

    def __post_init__(self) -> None:
        if self.bit_rate_bps <= 0:
            raise ConfigurationError(
                f"bit rate must be positive, got {self.bit_rate_bps!r}")
        if self.samples_per_symbol < 2:
            raise ConfigurationError(
                "need at least 2 samples per symbol for the discriminator, "
                f"got {self.samples_per_symbol}")
        if not 0.1 <= self.modulation_index <= 2.0:
            raise ConfigurationError(
                f"modulation index {self.modulation_index!r} out of range")
        if self.bt_product <= 0:
            raise ConfigurationError(
                f"BT product must be positive, got {self.bt_product!r}")

    @property
    def sample_rate_hz(self) -> float:
        """Baseband sample rate."""
        return self.bit_rate_bps * self.samples_per_symbol

    @property
    def deviation_hz(self) -> float:
        """Single-sided peak frequency deviation ``h * Rb / 2``."""
        return self.modulation_index * self.bit_rate_bps / 2.0


class GfskModulator:
    """Gaussian-shaped FSK modulator, optionally LUT-quantized."""

    def __init__(self, config: GfskConfig | None = None,
                 quantized: bool = True,
                 nco_config: NcoConfig | None = None) -> None:
        self.config = config or GfskConfig()
        self.quantized = quantized
        self._nco = Nco(nco_config or NcoConfig(
            phase_bits=32, table_address_bits=10, amplitude_bits=13)) \
            if quantized else None

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Modulate a bit array into complex baseband samples.

        Raises:
            ConfigurationError: for non-binary input.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size == 0:
            return np.zeros(0, dtype=np.complex128)
        frequency = shape_bits(bits, self.config.bt_product,
                               self.config.samples_per_symbol)
        phase = frequency_to_phase(frequency, self.config.deviation_hz,
                                   self.config.sample_rate_hz)
        if self._nco is None:
            return np.exp(1j * phase)
        modulus = 1 << self._nco.config.phase_bits
        integer_phase = np.round(
            np.mod(phase / (2.0 * np.pi), 1.0) * modulus).astype(np.int64)
        return self._nco.from_phase_sequence(integer_phase)


class GfskDemodulator:
    """Noncoherent discriminator receiver.

    Pipeline: channel-select FIR -> phase-difference discriminator ->
    integrate-and-dump over each symbol -> sign decision.

    The discriminator and integrate-and-dump kernels are dispatched
    through the DSP backend registry (:mod:`repro.phy.backend`); every
    backend is bit-identical, so bit decisions never depend on the
    backend choice.
    """

    def __init__(self, config: GfskConfig | None = None,
                 filter_taps: int = 24,
                 backend: str | None = None) -> None:
        self.config = config or GfskConfig()
        cutoff = 0.6 * self.config.bit_rate_bps
        nyquist = self.config.sample_rate_hz / 2.0
        self._taps = None
        if cutoff < nyquist * 0.95:
            self._taps = design_lowpass(filter_taps, cutoff,
                                        self.config.sample_rate_hz)
        self._backend_request = backend
        self._backend = get_backend(backend)

    @property
    def backend_name(self) -> str:
        """Name of the DSP backend executing the hot kernels."""
        return self._backend.name

    def instantaneous_frequency(self, samples: np.ndarray) -> np.ndarray:
        """Per-sample phase increments (radians/sample) after filtering."""
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size < 2:
            raise DemodulationError("need at least 2 samples to discriminate")
        if self._taps is not None:
            samples = filter_block(self._taps, samples,
                                   backend=self._backend_request)
        return self._backend.discriminate(samples)

    def demodulate(self, samples: np.ndarray, num_bits: int,
                   start_sample: int = 0) -> np.ndarray:
        """Recover ``num_bits`` symbol decisions from an aligned stream.

        Bit-exact with :meth:`demodulate_reference` (sequential
        in-symbol accumulation on every backend).

        Args:
            samples: complex baseband stream.
            num_bits: symbols to decide.
            start_sample: index of the first sample of the first symbol.

        Raises:
            DemodulationError: if the stream is too short.
        """
        sps = self.config.samples_per_symbol
        needed = start_sample + num_bits * sps
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size < needed:
            raise DemodulationError(
                f"stream of {samples.size} samples cannot supply {num_bits} "
                f"bits from offset {start_sample}")
        freq = self.instantaneous_frequency(samples)
        metrics = self._backend.integrate_bits(freq, start_sample,
                                               num_bits, sps)
        return (metrics > 0.0).astype(np.int64)

    def demodulate_reference(self, samples: np.ndarray, num_bits: int,
                             start_sample: int = 0) -> np.ndarray:
        """One-bit-per-iteration scalar twin of :meth:`demodulate`."""
        sps = self.config.samples_per_symbol
        needed = start_sample + num_bits * sps
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.size < needed:
            raise DemodulationError(
                f"stream of {samples.size} samples cannot supply {num_bits} "
                f"bits from offset {start_sample}")
        freq = self.instantaneous_frequency(samples)
        bits = np.empty(num_bits, dtype=np.int64)
        for i in range(num_bits):
            begin = start_sample + i * sps
            # The discriminator output is one sample shorter than the
            # stream, so the final window may be truncated.
            window = freq[begin:begin + sps]
            metric = float(window[0]) if window.size else 0.0
            for j in range(1, window.size):
                metric = metric + window[j]
            bits[i] = 1 if metric > 0.0 else 0
        return bits

    def correlate_bits(self, samples: np.ndarray,
                       pattern_bits: np.ndarray,
                       max_offset: int | None = None) -> int:
        """Find the sample offset where a known bit pattern best matches.

        Used to locate the preamble + access address in a capture (the
        BLE receiver's syncword correlator).

        Returns:
            The best-matching start sample of the pattern.

        Raises:
            DemodulationError: if the stream is shorter than the pattern.
        """
        sps = self.config.samples_per_symbol
        pattern = np.asarray(pattern_bits, dtype=np.float64) * 2.0 - 1.0
        template = np.repeat(pattern, sps)
        freq = self.instantaneous_frequency(samples)
        if freq.size < template.size:
            raise DemodulationError(
                "stream shorter than the correlation pattern")
        limit = freq.size - template.size
        if max_offset is not None:
            limit = min(limit, max_offset)
        correlation = np.correlate(freq[:limit + template.size], template,
                                   mode="valid")
        return int(np.argmax(correlation))
