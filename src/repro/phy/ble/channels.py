"""BLE advertising channel plan and beacon hopping schedule.

BLE divides the 2.4 GHz band into 40 channels spaced 2 MHz apart; beacons
are broadcast on the three advertising channels (37, 38, 39 at 2402, 2426
and 2480 MHz) in sequence, separated by a few hundred microseconds, and
the triple repeats every advertising interval (paper section 4.2 and
Fig. 13).  The 220 us figure the paper measures is tinySDR's frequency-
switch latency (Table 4); an iPhone 8 needs ~350 us.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

ADVERTISING_CHANNELS = (37, 38, 39)
ADVERTISING_FREQUENCIES_HZ = (2_402_000_000, 2_426_000_000, 2_480_000_000)

# spec: Bluetooth Core 5.0 vol 6 part B section 1.4 (channel grid).
BLE_CHANNEL_SPACING_HZ = 2_000_000
BLE_DATA_LOW_BASE_HZ = 2_404_000_000
BLE_DATA_HIGH_BASE_HZ = 2_428_000_000

TINYSDR_HOP_DELAY_S = 220e-6
"""Frequency switch delay measured on tinySDR (paper Table 4 / Fig. 13)."""

IPHONE8_HOP_DELAY_S = 350e-6
"""The corresponding gap measured from an iPhone 8 (paper section 5.2)."""


def channel_frequency_hz(channel: int) -> int:
    """Center frequency of a BLE channel index (0..39).

    BLE channel indices interleave data and advertising channels across
    2402..2480 MHz; the three advertising channels sit at the band edges
    and center.
    """
    if not 0 <= channel <= 39:
        raise ConfigurationError(f"BLE channel must be 0..39, got {channel}")
    if channel in ADVERTISING_CHANNELS:
        return ADVERTISING_FREQUENCIES_HZ[ADVERTISING_CHANNELS.index(channel)]
    if channel <= 10:
        return BLE_DATA_LOW_BASE_HZ + channel * BLE_CHANNEL_SPACING_HZ
    return BLE_DATA_HIGH_BASE_HZ + (channel - 11) * BLE_CHANNEL_SPACING_HZ


@dataclass(frozen=True)
class BeaconTransmission:
    """One beacon burst within an advertising event.

    Attributes:
        channel: advertising channel index.
        frequency_hz: RF center frequency.
        start_time_s: transmission start relative to the event start.
        duration_s: packet airtime.
    """

    channel: int
    frequency_hz: int
    start_time_s: float
    duration_s: float


def advertising_event(packet_airtime_s: float,
                      hop_delay_s: float = TINYSDR_HOP_DELAY_S,
                      channels: tuple[int, ...] = ADVERTISING_CHANNELS
                      ) -> list[BeaconTransmission]:
    """Schedule one advertising event across the advertising channels.

    Args:
        packet_airtime_s: duration of the beacon packet.
        hop_delay_s: dead time between channels (frequency switch).
        channels: the channels to cycle, in order.

    Raises:
        ConfigurationError: for non-positive airtime or negative delay.
    """
    if packet_airtime_s <= 0.0:
        raise ConfigurationError(
            f"packet airtime must be positive, got {packet_airtime_s!r}")
    if hop_delay_s < 0.0:
        raise ConfigurationError(
            f"hop delay must be >= 0, got {hop_delay_s!r}")
    schedule = []
    time = 0.0
    for channel in channels:
        schedule.append(BeaconTransmission(
            channel=channel,
            frequency_hz=channel_frequency_hz(channel),
            start_time_s=time,
            duration_s=packet_airtime_s))
        time += packet_airtime_s + hop_delay_s
    return schedule


def beacon_airtime_s(pdu_bytes: int, bit_rate_bps: float = 1e6) -> float:
    """Airtime of an advertising packet: preamble + AA + PDU + CRC.

    Raises:
        ConfigurationError: for out-of-range PDU sizes.
    """
    if not 2 <= pdu_bytes <= 39:
        raise ConfigurationError(
            f"advertising PDU must be 2..39 bytes, got {pdu_bytes}")
    total_bytes = 1 + 4 + pdu_bytes + 3
    return total_bytes * 8 / bit_rate_bps
