"""BLE advertising packet construction (paper section 4.2).

Non-connectable advertisements (``ADV_NONCONN_IND``) are broadcast packets:
a fixed preamble (0xAA) and access address (0x8E89BED6), a PDU beginning
with a 2-byte header (type + length) followed by the advertiser address
and data, and a 3-byte CRC.  The CRC is a 24-bit LFSR with polynomial
``x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1`` seeded with 0x555555, fed
the PDU LSB first.  Whitening covers PDU and CRC using a 7-bit LFSR with
polynomial ``x^7 + x^4 + 1`` seeded from the channel number.  All of this
is implemented exactly as the Bluetooth core specification (and the paper)
describes - the tinySDR FPGA runs the same two LFSRs in Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DemodulationError

PREAMBLE_BYTE = 0xAA
ACCESS_ADDRESS = 0x8E89BED6
CRC_INIT = 0x555555
CRC_POLY_TAPS = (10, 9, 6, 4, 3, 1, 0)
"""Feedback taps of the CRC-24 polynomial (exponents below 24)."""

ADV_NONCONN_IND = 0x2
ADV_IND = 0x0
ADV_SCAN_IND = 0x6

MAX_ADV_DATA_BYTES = 31
ADV_ADDRESS_BYTES = 6


def bytes_to_bits_lsb_first(data: bytes) -> np.ndarray:
    """Expand bytes into a bit array, least-significant bit first."""
    if not data:
        return np.zeros(0, dtype=np.int64)
    array = np.frombuffer(bytes(data), dtype=np.uint8)
    bits = np.unpackbits(array, bitorder="little")
    return bits.astype(np.int64)


def bits_to_bytes_lsb_first(bits: np.ndarray) -> bytes:
    """Pack a bit array (LSB first) into bytes; length must be a multiple of 8."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8:
        raise ConfigurationError(
            f"bit count must be a multiple of 8, got {bits.size}")
    return np.packbits(bits, bitorder="little").tobytes()


def crc24(pdu: bytes, initial: int = CRC_INIT) -> bytes:
    """Compute the BLE CRC-24 over a PDU.

    The LFSR is seeded with ``initial`` (0x555555 for advertising
    channels), the PDU is shifted in LSB first, and the final register
    state is the CRC, transmitted LSB first.

    Returns:
        Three CRC bytes in transmission order.
    """
    if not 0 <= initial < (1 << 24):
        raise ConfigurationError(f"CRC init must be 24 bits, got {initial:#x}")
    state = initial
    for bit in bytes_to_bits_lsb_first(pdu):
        feedback = ((state >> 23) & 1) ^ int(bit)
        state = (state << 1) & 0xFFFFFF
        if feedback:
            for tap in CRC_POLY_TAPS:
                state ^= 1 << tap
    # Transmit the register MSB-first per the spec's bit ordering, which
    # after byte packing (LSB-first bits) yields these three bytes.
    reversed_bits = [(state >> (23 - i)) & 1 for i in range(24)]
    return bits_to_bytes_lsb_first(np.asarray(reversed_bits))


def whitening_bits(num_bits: int, channel: int) -> np.ndarray:
    """Whitening sequence for a data/advertising channel.

    The 7-bit LFSR (``x^7 + x^4 + 1``) is initialized with bit 6 set to 1
    and bits 5..0 holding the channel index, then clocked once per bit.

    Raises:
        ConfigurationError: for a channel outside 0..39.
    """
    if not 0 <= channel <= 39:
        raise ConfigurationError(f"BLE channel must be 0..39, got {channel}")
    if num_bits < 0:
        raise ConfigurationError(f"bit count must be >= 0, got {num_bits}")
    state = 0x40 | channel
    out = np.empty(num_bits, dtype=np.int64)
    for i in range(num_bits):
        bit = (state >> 6) & 1
        out[i] = bit
        state = ((state << 1) & 0x7F)
        if bit:
            state ^= 0x11  # x^4 and x^0 taps
    return out


def whiten_pdu_and_crc(data: bytes, channel: int) -> bytes:
    """Apply (or remove - XOR is involutive) channel whitening."""
    bits = bytes_to_bits_lsb_first(data)
    sequence = whitening_bits(bits.size, channel)
    return bits_to_bytes_lsb_first(bits ^ sequence)


@dataclass(frozen=True)
class AdvPacket:
    """One BLE advertising packet.

    Attributes:
        advertiser_address: the 6-byte AdvA field (little-endian on air).
        adv_data: 0..31 bytes of advertisement payload.
        pdu_type: 4-bit advertising PDU type.
    """

    advertiser_address: bytes
    adv_data: bytes
    pdu_type: int = ADV_NONCONN_IND

    def __post_init__(self) -> None:
        if len(self.advertiser_address) != ADV_ADDRESS_BYTES:
            raise ConfigurationError(
                f"advertiser address must be {ADV_ADDRESS_BYTES} bytes, "
                f"got {len(self.advertiser_address)}")
        if len(self.adv_data) > MAX_ADV_DATA_BYTES:
            raise ConfigurationError(
                f"advertising data limited to {MAX_ADV_DATA_BYTES} bytes, "
                f"got {len(self.adv_data)}")
        if not 0 <= self.pdu_type <= 0xF:
            raise ConfigurationError(
                f"PDU type must be a 4-bit value, got {self.pdu_type}")

    def pdu(self) -> bytes:
        """Header + AdvA + AdvData."""
        length = ADV_ADDRESS_BYTES + len(self.adv_data)
        header = bytes((self.pdu_type & 0xF, length))
        return header + self.advertiser_address + self.adv_data

    def air_bytes(self, channel: int) -> bytes:
        """Full over-the-air byte sequence for a given advertising channel.

        Preamble and access address are never whitened; the PDU and CRC
        are whitened with the channel-seeded LFSR.
        """
        pdu = self.pdu()
        body = whiten_pdu_and_crc(pdu + crc24(pdu), channel)
        access = ACCESS_ADDRESS.to_bytes(4, "little")
        return bytes((PREAMBLE_BYTE,)) + access + body

    def air_bits(self, channel: int) -> np.ndarray:
        """On-air bit sequence, LSB first, ready for the GFSK modulator."""
        return bytes_to_bits_lsb_first(self.air_bytes(channel))


@dataclass(frozen=True)
class ParsedAdvPacket:
    """A received advertising packet with its integrity status."""

    packet: AdvPacket
    crc_ok: bool
    channel: int


def parse_air_bytes(air: bytes, channel: int) -> ParsedAdvPacket:
    """Parse an over-the-air byte sequence back into an advertisement.

    Raises:
        DemodulationError: if the stream is too short or the access
            address does not match.
    """
    if len(air) < 1 + 4 + 2 + 3:
        raise DemodulationError(f"air stream of {len(air)} bytes is too short")
    access = int.from_bytes(air[1:5], "little")
    if access != ACCESS_ADDRESS:
        raise DemodulationError(
            f"access address {access:#010x} does not match advertising "
            f"channel value {ACCESS_ADDRESS:#010x}")
    body = whiten_pdu_and_crc(air[5:], channel)
    header, length = body[0], body[1]
    pdu_type = header & 0xF
    pdu_end = 2 + length
    if pdu_end + 3 > len(body):
        raise DemodulationError(
            f"PDU length {length} exceeds the captured stream")
    pdu = body[:pdu_end]
    received_crc = body[pdu_end:pdu_end + 3]
    crc_ok = crc24(pdu) == received_crc
    if length < ADV_ADDRESS_BYTES:
        raise DemodulationError(
            f"PDU length {length} cannot hold an advertiser address")
    packet = AdvPacket(
        advertiser_address=pdu[2:2 + ADV_ADDRESS_BYTES],
        adv_data=pdu[2 + ADV_ADDRESS_BYTES:pdu_end],
        pdu_type=pdu_type)
    return ParsedAdvPacket(packet=packet, crc_ok=crc_ok, channel=channel)
